#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace comptx::service {

namespace {

/// Splits the payload into its command line and the remaining body.
void SplitPayload(const std::string& payload, std::string& head,
                  std::string& body) {
  const size_t newline = payload.find('\n');
  if (newline == std::string::npos) {
    head = payload;
    body.clear();
  } else {
    head = payload.substr(0, newline);
    body = payload.substr(newline + 1);
  }
}

StatusOr<uint64_t> ParseSessionIdToken(const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long id = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || token.empty()) {
    return Status::InvalidArgument(StrCat("bad session id '", token, "'"));
  }
  return static_cast<uint64_t>(id);
}

StatusOr<uint64_t> ParseSessionId(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return Status::InvalidArgument(
        StrCat(tokens[0], " needs exactly one session id"));
  }
  return ParseSessionIdToken(tokens[1]);
}

}  // namespace

const char* CommandKindToString(CommandKind kind) {
  switch (kind) {
    case CommandKind::kOpen:
      return "OPEN";
    case CommandKind::kAppend:
      return "APPEND";
    case CommandKind::kQuery:
      return "QUERY";
    case CommandKind::kClose:
      return "CLOSE";
    case CommandKind::kStats:
      return "STATS";
    case CommandKind::kPing:
      return "PING";
    case CommandKind::kShutdown:
      return "SHUTDOWN";
    case CommandKind::kSubscribe:
      return "SUBSCRIBE";
    case CommandKind::kStream:
      return "STREAM";
    case CommandKind::kAttach:
      return "ATTACH";
    case CommandKind::kDetach:
      return "DETACH";
    case CommandKind::kPrepare:
      return "PREPARE";
    case CommandKind::kDecide:
      return "DECIDE";
  }
  return "?";
}

std::string Response::Field(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return "";
}

uint64_t Response::FieldInt(const std::string& key, uint64_t fallback) const {
  const std::string value = Field(key);
  if (value.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return fallback;
  return static_cast<uint64_t>(parsed);
}

std::string FormatRequest(const Request& request) {
  std::string payload = CommandKindToString(request.kind);
  switch (request.kind) {
    case CommandKind::kOpen:
      if (!request.options.empty()) payload += StrCat(" ", request.options);
      break;
    case CommandKind::kAppend:
      payload += StrCat(" ", request.session);
      for (const workload::TraceEvent& event : request.events) {
        payload += StrCat("\n", workload::FormatTraceEvent(event));
      }
      break;
    case CommandKind::kQuery:
    case CommandKind::kClose:
      payload += StrCat(" ", request.session);
      break;
    case CommandKind::kStats:
      if (!request.options.empty()) payload += StrCat(" ", request.options);
      break;
    case CommandKind::kPing:
    case CommandKind::kShutdown:
      break;
    case CommandKind::kSubscribe:
    case CommandKind::kStream:
    case CommandKind::kAttach:
    case CommandKind::kDetach:
    case CommandKind::kPrepare:
    case CommandKind::kDecide:
      payload += StrCat(" ", request.session);
      if (!request.options.empty()) payload += StrCat(" ", request.options);
      break;
  }
  return payload;
}

StatusOr<Request> ParseRequest(const std::string& payload) {
  std::string head;
  std::string body;
  SplitPayload(payload, head, body);
  std::vector<std::string> tokens;
  for (const std::string& token : StrSplit(head, ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  if (tokens.empty()) return Status::InvalidArgument("empty command line");

  Request request;
  const std::string& command = tokens[0];
  if (command == "OPEN") {
    request.kind = CommandKind::kOpen;
    const size_t space = head.find(' ');
    if (space != std::string::npos) request.options = head.substr(space + 1);
    return request;
  }
  if (command == "QUERY" || command == "CLOSE") {
    request.kind =
        command == "QUERY" ? CommandKind::kQuery : CommandKind::kClose;
    COMPTX_ASSIGN_OR_RETURN(request.session, ParseSessionId(tokens));
    return request;
  }
  if (command == "APPEND") {
    request.kind = CommandKind::kAppend;
    COMPTX_ASSIGN_OR_RETURN(request.session, ParseSessionId(tokens));
    size_t line_number = 1;
    size_t start = 0;
    while (start <= body.size() && !body.empty()) {
      size_t end = body.find('\n', start);
      if (end == std::string::npos) end = body.size();
      ++line_number;
      if (end > start) {
        auto event =
            workload::ParseTraceEventLine(body.substr(start, end - start));
        if (!event.ok()) {
          return Status::InvalidArgument(StrCat("APPEND body line ",
                                                line_number, ": ",
                                                event.status().message()));
        }
        request.events.push_back(std::move(*event));
      }
      if (end >= body.size()) break;
      start = end + 1;
    }
    return request;
  }
  if (command == "STATS") {
    request.kind = CommandKind::kStats;
    const size_t space = head.find(' ');
    if (space != std::string::npos) request.options = head.substr(space + 1);
    return request;
  }
  if (command == "SUBSCRIBE" || command == "STREAM" || command == "ATTACH" ||
      command == "DETACH" || command == "PREPARE" || command == "DECIDE") {
    request.kind = command == "SUBSCRIBE" ? CommandKind::kSubscribe
                   : command == "STREAM"  ? CommandKind::kStream
                   : command == "ATTACH"  ? CommandKind::kAttach
                   : command == "DETACH"  ? CommandKind::kDetach
                   : command == "PREPARE" ? CommandKind::kPrepare
                                          : CommandKind::kDecide;
    if (tokens.size() < 2) {
      return Status::InvalidArgument(StrCat(command, " needs a session id"));
    }
    COMPTX_ASSIGN_OR_RETURN(request.session, ParseSessionIdToken(tokens[1]));
    // Everything past the session id is the options text, verbatim.
    size_t pos = head.find(' ');                       // before the id
    if (pos != std::string::npos) pos = head.find(' ', pos + 1);  // after it
    if (pos != std::string::npos) request.options = head.substr(pos + 1);
    return request;
  }
  if (command == "PING") {
    request.kind = CommandKind::kPing;
    return request;
  }
  if (command == "SHUTDOWN") {
    request.kind = CommandKind::kShutdown;
    return request;
  }
  return Status::InvalidArgument(StrCat("unknown command '", command, "'"));
}

std::string FormatResponse(const Response& response) {
  if (!response.ok) {
    return StrCat("ERR ", response.error_code, " ", response.error_message);
  }
  std::string payload = "OK";
  for (const auto& [key, value] : response.fields) {
    payload += StrCat(" ", key, "=", value);
  }
  if (!response.body.empty()) payload += StrCat("\n", response.body);
  return payload;
}

StatusOr<Response> ParseResponse(const std::string& payload) {
  std::string head;
  std::string body;
  SplitPayload(payload, head, body);
  Response response;
  if (StartsWith(head, "ERR ")) {
    response.ok = false;
    const std::string rest = head.substr(4);
    const size_t space = rest.find(' ');
    if (space == std::string::npos) {
      response.error_code = rest;
    } else {
      response.error_code = rest.substr(0, space);
      response.error_message = rest.substr(space + 1);
    }
    return response;
  }
  if (head != "OK" && !StartsWith(head, "OK ")) {
    return Status::InvalidArgument(StrCat("malformed response '", head, "'"));
  }
  response.ok = true;
  for (const std::string& token : StrSplit(head, ' ')) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    response.fields.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  response.body = body;
  return response;
}

Response OkResponse() {
  Response response;
  response.ok = true;
  return response;
}

Response ErrorResponse(const std::string& code, const std::string& message) {
  Response response;
  response.ok = false;
  response.error_code = code;
  response.error_message = message;
  return response;
}

namespace {

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    // MSG_NOSIGNAL: a peer that hung up (or a socket shut down under us
    // during server teardown) yields EPIPE instead of a fatal SIGPIPE.
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("write: ", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes.  `at_start` distinguishes clean EOF (peer
/// closed between frames → NotFound) from truncation mid-frame.
Status ReadAll(int fd, char* data, size_t size, bool at_start) {
  size_t received = 0;
  while (received < size) {
    const ssize_t n = ::read(fd, data + received, size - received);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("read: ", std::strerror(errno)));
    }
    if (n == 0) {
      if (at_start && received == 0) {
        return Status::NotFound("connection closed");
      }
      return Status::Internal("connection closed mid-frame");
    }
    received += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  std::string frame = StrCat(payload.size(), "\n");
  frame += payload;
  return WriteAll(fd, frame.data(), frame.size());
}

// ---- varint + packed-event codec (v2 payload layer) ------------------

void AppendVarint(std::string& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

Status ReadVarint(const std::string& data, size_t& pos, uint64_t& value) {
  value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= data.size()) {
      return Status::InvalidArgument("truncated varint");
    }
    const uint8_t byte = static_cast<uint8_t>(data[pos++]);
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 63 && (byte & 0x7e) != 0) break;  // overflowed 64 bits
      return Status::OK();
    }
  }
  return Status::InvalidArgument("varint exceeds 64 bits");
}

namespace {

constexpr uint8_t kMaxEventKind =
    static_cast<uint8_t>(workload::TraceEventKind::kTag);

void AppendString(std::string& out, const std::string& value) {
  AppendVarint(out, value.size());
  out += value;
}

Status ReadString(const std::string& data, size_t& pos, std::string& value) {
  uint64_t size = 0;
  COMPTX_RETURN_IF_ERROR(ReadVarint(data, pos, size));
  if (size > data.size() - pos) {
    return Status::InvalidArgument("truncated string");
  }
  value.assign(data, pos, static_cast<size_t>(size));
  pos += static_cast<size_t>(size);
  return Status::OK();
}

Status ReadIndex(const std::string& data, size_t& pos, uint32_t& value) {
  uint64_t parsed = 0;
  COMPTX_RETURN_IF_ERROR(ReadVarint(data, pos, parsed));
  if (parsed > UINT32_MAX) {
    return Status::InvalidArgument("index exceeds 32 bits");
  }
  value = static_cast<uint32_t>(parsed);
  return Status::OK();
}

}  // namespace

void AppendEventBinary(std::string& out, const workload::TraceEvent& event) {
  using workload::TraceEventKind;
  out.push_back(static_cast<char>(event.kind));
  // Field presence mirrors the text grammar (workload/trace.h): unused
  // fields are not shipped, so a single-reference event costs a kind
  // byte plus one or two varints.
  switch (event.kind) {
    case TraceEventKind::kSchedule:
      AppendString(out, event.name);
      break;
    case TraceEventKind::kRoot:
      AppendVarint(out, event.schedule);
      AppendString(out, event.name);
      break;
    case TraceEventKind::kSub:
      AppendVarint(out, event.parent);
      AppendVarint(out, event.schedule);
      AppendString(out, event.name);
      break;
    case TraceEventKind::kLeaf:
      AppendVarint(out, event.parent);
      AppendString(out, event.name);
      break;
    case TraceEventKind::kConflict:
    case TraceEventKind::kWeakOutput:
    case TraceEventKind::kStrongOutput:
      AppendVarint(out, event.a);
      AppendVarint(out, event.b);
      break;
    case TraceEventKind::kWeakInput:
    case TraceEventKind::kStrongInput:
      AppendVarint(out, event.schedule);
      AppendVarint(out, event.a);
      AppendVarint(out, event.b);
      break;
    case TraceEventKind::kIntraWeak:
    case TraceEventKind::kIntraStrong:
      AppendVarint(out, event.parent);
      AppendVarint(out, event.a);
      AppendVarint(out, event.b);
      break;
    case TraceEventKind::kCommit:
      AppendVarint(out, event.parent);
      break;
    case TraceEventKind::kCommitThrough:
      AppendVarint(out, event.a);
      break;
    case TraceEventKind::kAdtDecl:
      AppendString(out, event.name);
      break;
    case TraceEventKind::kAdtOp:
      AppendVarint(out, event.a);
      AppendString(out, event.name);
      break;
    case TraceEventKind::kCommute:
    case TraceEventKind::kClash:
      AppendVarint(out, event.a);
      AppendVarint(out, event.b);
      break;
    case TraceEventKind::kTag:
      AppendVarint(out, event.parent);
      AppendVarint(out, event.a);
      AppendVarint(out, event.b);
      break;
  }
}

Status ReadEventBinary(const std::string& data, size_t& pos,
                       workload::TraceEvent& event) {
  using workload::TraceEventKind;
  if (pos >= data.size()) return Status::InvalidArgument("truncated event");
  const uint8_t kind = static_cast<uint8_t>(data[pos++]);
  if (kind > kMaxEventKind) {
    return Status::InvalidArgument(StrCat("unknown event kind ", kind));
  }
  event = workload::TraceEvent{};
  event.kind = static_cast<TraceEventKind>(kind);
  switch (event.kind) {
    case TraceEventKind::kSchedule:
      return ReadString(data, pos, event.name);
    case TraceEventKind::kRoot:
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.schedule));
      return ReadString(data, pos, event.name);
    case TraceEventKind::kSub:
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.parent));
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.schedule));
      return ReadString(data, pos, event.name);
    case TraceEventKind::kLeaf:
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.parent));
      return ReadString(data, pos, event.name);
    case TraceEventKind::kConflict:
    case TraceEventKind::kWeakOutput:
    case TraceEventKind::kStrongOutput:
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.a));
      return ReadIndex(data, pos, event.b);
    case TraceEventKind::kWeakInput:
    case TraceEventKind::kStrongInput:
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.schedule));
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.a));
      return ReadIndex(data, pos, event.b);
    case TraceEventKind::kIntraWeak:
    case TraceEventKind::kIntraStrong:
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.parent));
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.a));
      return ReadIndex(data, pos, event.b);
    case TraceEventKind::kCommit:
      return ReadIndex(data, pos, event.parent);
    case TraceEventKind::kCommitThrough:
      return ReadIndex(data, pos, event.a);
    case TraceEventKind::kAdtDecl:
      return ReadString(data, pos, event.name);
    case TraceEventKind::kAdtOp:
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.a));
      return ReadString(data, pos, event.name);
    case TraceEventKind::kCommute:
    case TraceEventKind::kClash:
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.a));
      return ReadIndex(data, pos, event.b);
    case TraceEventKind::kTag:
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.parent));
      COMPTX_RETURN_IF_ERROR(ReadIndex(data, pos, event.a));
      return ReadIndex(data, pos, event.b);
  }
  return Status::InvalidArgument("unreachable event kind");
}

// ---- frame layer ------------------------------------------------------

namespace {

void PutU16(std::string& out, uint16_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>(value >> 8));
}

void PutU32(std::string& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const char* data) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(data);
  return static_cast<uint16_t>(bytes[0] | (bytes[1] << 8));
}

uint32_t GetU32(const char* data) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(data);
  return static_cast<uint32_t>(bytes[0]) |
         (static_cast<uint32_t>(bytes[1]) << 8) |
         (static_cast<uint32_t>(bytes[2]) << 16) |
         (static_cast<uint32_t>(bytes[3]) << 24);
}

uint64_t GetU64(const char* data) {
  return static_cast<uint64_t>(GetU32(data)) |
         (static_cast<uint64_t>(GetU32(data + 4)) << 32);
}

bool ValidOpcode(uint8_t opcode) {
  return (opcode >= static_cast<uint8_t>(Opcode::kOpen) &&
          opcode <= static_cast<uint8_t>(Opcode::kDecide)) ||
         opcode == static_cast<uint8_t>(Opcode::kReply);
}

std::string WireHeader(Opcode opcode, uint64_t session, size_t payload_size) {
  std::string out;
  out.reserve(kWireHeaderBytes + payload_size);
  PutU32(out, kWireMagicV2);
  out.push_back(static_cast<char>(kWireVersion2));
  out.push_back(static_cast<char>(opcode));
  PutU16(out, 0);  // flags, reserved
  PutU64(out, session);
  PutU32(out, static_cast<uint32_t>(payload_size));
  return out;
}

}  // namespace

void FrameParser::Feed(const char* data, size_t size) {
  buffer_.append(data, size);
}

void FrameParser::Compact() {
  // Amortized O(1): only shift once the dead prefix dominates.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
}

StatusOr<bool> FrameParser::Next(WireFrame& frame) {
  Compact();
  const size_t available = buffer_.size() - pos_;
  if (available == 0) return false;
  const char first = buffer_[pos_];

  if (first >= '0' && first <= '9') {
    // v1: decimal length prefix, '\n', payload.
    size_t digits = 0;
    while (pos_ + digits < buffer_.size()) {
      const char c = buffer_[pos_ + digits];
      if (c == '\n') break;
      if (c < '0' || c > '9' || digits > 12) {
        return Status::InvalidArgument("malformed frame length prefix");
      }
      ++digits;
    }
    if (pos_ + digits >= buffer_.size()) return false;  // prefix incomplete
    const uint64_t size =
        std::strtoull(buffer_.substr(pos_, digits).c_str(), nullptr, 10);
    if (size > max_bytes_) {
      return Status::OutOfRange(StrCat("frame of ", size, " bytes exceeds the ",
                                       max_bytes_, "-byte limit"));
    }
    const size_t frame_end = pos_ + digits + 1 + static_cast<size_t>(size);
    if (frame_end > buffer_.size()) return false;  // payload incomplete
    frame.protocol = WireProtocol::kV1;
    frame.opcode = Opcode::kPing;
    frame.session = 0;
    frame.payload.assign(buffer_, pos_ + digits + 1, static_cast<size_t>(size));
    pos_ = frame_end;
    return true;
  }

  // v2: anything non-digit must open a valid header.  Validate the fixed
  // fields as soon as their bytes arrive, so a garbage first byte fails
  // fast instead of waiting for 20 bytes that may never come.
  if (available >= 4) {
    if (GetU32(buffer_.data() + pos_) != kWireMagicV2) {
      return Status::InvalidArgument("bad frame magic");
    }
  } else {
    const char* magic = "CTX2";
    for (size_t i = 0; i < available; ++i) {
      if (buffer_[pos_ + i] != magic[i]) {
        return Status::InvalidArgument("bad frame magic");
      }
    }
    return false;
  }
  if (available < kWireHeaderBytes) return false;
  const char* header = buffer_.data() + pos_;
  if (static_cast<uint8_t>(header[4]) != kWireVersion2) {
    return Status::InvalidArgument(
        StrCat("unsupported protocol version ",
               static_cast<unsigned>(static_cast<uint8_t>(header[4]))));
  }
  const uint8_t opcode = static_cast<uint8_t>(header[5]);
  if (!ValidOpcode(opcode)) {
    return Status::InvalidArgument(
        StrCat("unknown opcode ", static_cast<unsigned>(opcode)));
  }
  if (GetU16(header + 6) != 0) {
    return Status::InvalidArgument("reserved flags must be zero");
  }
  const uint32_t size = GetU32(header + 16);
  if (size > max_bytes_) {
    return Status::OutOfRange(StrCat("frame of ", size, " bytes exceeds the ",
                                     max_bytes_, "-byte limit"));
  }
  if (available < kWireHeaderBytes + size) return false;
  frame.protocol = WireProtocol::kV2;
  frame.opcode = static_cast<Opcode>(opcode);
  frame.session = GetU64(header + 8);
  frame.payload.assign(buffer_, pos_ + kWireHeaderBytes, size);
  pos_ += kWireHeaderBytes + size;
  return true;
}

std::string EncodeRequestFrame(WireProtocol protocol, const Request& request) {
  if (protocol == WireProtocol::kV1) {
    const std::string payload = FormatRequest(request);
    std::string frame = StrCat(payload.size(), "\n");
    frame += payload;
    return frame;
  }
  std::string payload;
  Opcode opcode = Opcode::kPing;
  uint64_t session = 0;
  switch (request.kind) {
    case CommandKind::kOpen:
      opcode = Opcode::kOpen;
      payload = request.options;
      break;
    case CommandKind::kAppend:
      session = request.session;
      if (request.events.size() == 1) {
        opcode = Opcode::kAppend;
        AppendEventBinary(payload, request.events.front());
      } else {
        opcode = Opcode::kBatchAppend;
        AppendVarint(payload, request.events.size());
        for (const workload::TraceEvent& event : request.events) {
          AppendEventBinary(payload, event);
        }
      }
      break;
    case CommandKind::kQuery:
      opcode = Opcode::kQuery;
      session = request.session;
      break;
    case CommandKind::kClose:
      opcode = Opcode::kClose;
      session = request.session;
      break;
    case CommandKind::kStats:
      opcode = Opcode::kStats;
      payload = request.options;
      break;
    case CommandKind::kPing:
      opcode = Opcode::kPing;
      break;
    case CommandKind::kShutdown:
      opcode = Opcode::kShutdown;
      break;
    case CommandKind::kSubscribe:
    case CommandKind::kStream:
    case CommandKind::kAttach:
    case CommandKind::kDetach:
    case CommandKind::kPrepare:
    case CommandKind::kDecide:
      // The ORDER_STREAM family carries its options text as payload,
      // mirroring OPEN: the fields are small and cold next to the event
      // bodies flowing the other way.
      opcode = request.kind == CommandKind::kSubscribe ? Opcode::kSubscribe
               : request.kind == CommandKind::kStream  ? Opcode::kStream
               : request.kind == CommandKind::kAttach  ? Opcode::kAttach
               : request.kind == CommandKind::kDetach  ? Opcode::kDetach
               : request.kind == CommandKind::kPrepare ? Opcode::kPrepare
                                                       : Opcode::kDecide;
      session = request.session;
      payload = request.options;
      break;
  }
  std::string frame = WireHeader(opcode, session, payload.size());
  frame += payload;
  return frame;
}

std::string EncodeResponseFrame(WireProtocol protocol,
                                const Response& response, uint64_t session) {
  const std::string payload = FormatResponse(response);
  if (protocol == WireProtocol::kV1) {
    std::string frame = StrCat(payload.size(), "\n");
    frame += payload;
    return frame;
  }
  std::string frame = WireHeader(Opcode::kReply, session, payload.size());
  frame += payload;
  return frame;
}

StatusOr<Request> DecodeRequestFrame(const WireFrame& frame) {
  if (frame.protocol == WireProtocol::kV1) {
    return ParseRequest(frame.payload);
  }
  Request request;
  request.session = frame.session;
  size_t pos = 0;
  switch (frame.opcode) {
    case Opcode::kOpen:
      request.kind = CommandKind::kOpen;
      request.options = frame.payload;
      return request;
    case Opcode::kAppend: {
      request.kind = CommandKind::kAppend;
      workload::TraceEvent event;
      COMPTX_RETURN_IF_ERROR(ReadEventBinary(frame.payload, pos, event));
      if (pos != frame.payload.size()) {
        return Status::InvalidArgument("trailing bytes after APPEND event");
      }
      request.events.push_back(std::move(event));
      return request;
    }
    case Opcode::kBatchAppend: {
      request.kind = CommandKind::kAppend;
      uint64_t count = 0;
      COMPTX_RETURN_IF_ERROR(ReadVarint(frame.payload, pos, count));
      // Each packed event costs >= 2 bytes, so a hostile count cannot
      // reserve more than the frame itself justifies.
      if (count > frame.payload.size()) {
        return Status::InvalidArgument(
            StrCat("BATCH_APPEND count ", count, " exceeds the payload"));
      }
      request.events.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        workload::TraceEvent event;
        COMPTX_RETURN_IF_ERROR(ReadEventBinary(frame.payload, pos, event));
        request.events.push_back(std::move(event));
      }
      if (pos != frame.payload.size()) {
        return Status::InvalidArgument(
            "trailing bytes after BATCH_APPEND events");
      }
      return request;
    }
    case Opcode::kQuery:
      request.kind = CommandKind::kQuery;
      return request;
    case Opcode::kClose:
      request.kind = CommandKind::kClose;
      return request;
    case Opcode::kStats:
      request.kind = CommandKind::kStats;
      request.options = frame.payload;
      return request;
    case Opcode::kPing:
      request.kind = CommandKind::kPing;
      return request;
    case Opcode::kShutdown:
      request.kind = CommandKind::kShutdown;
      return request;
    case Opcode::kSubscribe:
      request.kind = CommandKind::kSubscribe;
      request.options = frame.payload;
      return request;
    case Opcode::kStream:
      request.kind = CommandKind::kStream;
      request.options = frame.payload;
      return request;
    case Opcode::kAttach:
      request.kind = CommandKind::kAttach;
      request.options = frame.payload;
      return request;
    case Opcode::kDetach:
      request.kind = CommandKind::kDetach;
      request.options = frame.payload;
      return request;
    case Opcode::kPrepare:
      request.kind = CommandKind::kPrepare;
      request.options = frame.payload;
      return request;
    case Opcode::kDecide:
      request.kind = CommandKind::kDecide;
      request.options = frame.payload;
      return request;
    case Opcode::kReply:
      break;
  }
  return Status::InvalidArgument("REPLY is not a request opcode");
}

StatusOr<Response> DecodeResponseFrame(const WireFrame& frame) {
  if (frame.protocol == WireProtocol::kV2 && frame.opcode != Opcode::kReply) {
    return Status::InvalidArgument("response frame is not a REPLY");
  }
  return ParseResponse(frame.payload);
}

Status WriteWireBytes(int fd, const std::string& bytes) {
  return WriteAll(fd, bytes.data(), bytes.size());
}

StatusOr<WireFrame> ReadWireFrame(int fd, FrameParser& parser) {
  WireFrame frame;
  for (;;) {
    auto ready = parser.Next(frame);
    if (!ready.ok()) return ready.status();
    if (*ready) return frame;
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("read: ", std::strerror(errno)));
    }
    if (n == 0) {
      if (parser.buffered() == 0) {
        return Status::NotFound("connection closed");
      }
      return Status::Internal("connection closed mid-frame");
    }
    parser.Feed(chunk, static_cast<size_t>(n));
  }
}

const char* WireProtocolToString(WireProtocol protocol) {
  return protocol == WireProtocol::kV2 ? "v2" : "v1";
}

StatusOr<WireProtocol> ParseWireProtocol(const std::string& name) {
  if (name == "v1" || name == "1") return WireProtocol::kV1;
  if (name == "v2" || name == "2") return WireProtocol::kV2;
  return Status::InvalidArgument(
      StrCat("unknown protocol '", name, "' (want v1 or v2)"));
}

StatusOr<std::string> ReadFrame(int fd, size_t max_bytes) {
  // Prefix: decimal digits then '\n', read byte by byte (the prefix is
  // tiny; the payload below is read in one gulp).
  std::string prefix;
  bool at_start = true;
  for (;;) {
    char c = 0;
    Status status = ReadAll(fd, &c, 1, at_start);
    if (!status.ok()) return status;
    at_start = false;
    if (c == '\n') break;
    if (c < '0' || c > '9' || prefix.size() > 12) {
      return Status::InvalidArgument("malformed frame length prefix");
    }
    prefix += c;
  }
  if (prefix.empty()) {
    return Status::InvalidArgument("malformed frame length prefix");
  }
  const uint64_t size = std::strtoull(prefix.c_str(), nullptr, 10);
  if (size > max_bytes) {
    return Status::OutOfRange(
        StrCat("frame of ", size, " bytes exceeds the ", max_bytes,
               "-byte limit"));
  }
  std::string payload(size, '\0');
  if (size > 0) {
    Status status = ReadAll(fd, payload.data(), payload.size(), false);
    if (!status.ok()) return status;
  }
  return payload;
}

}  // namespace comptx::service
