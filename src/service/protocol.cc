#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace comptx::service {

namespace {

/// Splits the payload into its command line and the remaining body.
void SplitPayload(const std::string& payload, std::string& head,
                  std::string& body) {
  const size_t newline = payload.find('\n');
  if (newline == std::string::npos) {
    head = payload;
    body.clear();
  } else {
    head = payload.substr(0, newline);
    body = payload.substr(newline + 1);
  }
}

StatusOr<uint64_t> ParseSessionId(const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    return Status::InvalidArgument(
        StrCat(tokens[0], " needs exactly one session id"));
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long id = std::strtoull(tokens[1].c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || tokens[1].empty()) {
    return Status::InvalidArgument(StrCat("bad session id '", tokens[1], "'"));
  }
  return static_cast<uint64_t>(id);
}

}  // namespace

const char* CommandKindToString(CommandKind kind) {
  switch (kind) {
    case CommandKind::kOpen:
      return "OPEN";
    case CommandKind::kAppend:
      return "APPEND";
    case CommandKind::kQuery:
      return "QUERY";
    case CommandKind::kClose:
      return "CLOSE";
    case CommandKind::kStats:
      return "STATS";
    case CommandKind::kPing:
      return "PING";
    case CommandKind::kShutdown:
      return "SHUTDOWN";
  }
  return "?";
}

std::string Response::Field(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return "";
}

uint64_t Response::FieldInt(const std::string& key, uint64_t fallback) const {
  const std::string value = Field(key);
  if (value.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return fallback;
  return static_cast<uint64_t>(parsed);
}

std::string FormatRequest(const Request& request) {
  std::string payload = CommandKindToString(request.kind);
  switch (request.kind) {
    case CommandKind::kOpen:
      if (!request.options.empty()) payload += StrCat(" ", request.options);
      break;
    case CommandKind::kAppend:
      payload += StrCat(" ", request.session);
      for (const workload::TraceEvent& event : request.events) {
        payload += StrCat("\n", workload::FormatTraceEvent(event));
      }
      break;
    case CommandKind::kQuery:
    case CommandKind::kClose:
      payload += StrCat(" ", request.session);
      break;
    case CommandKind::kStats:
    case CommandKind::kPing:
    case CommandKind::kShutdown:
      break;
  }
  return payload;
}

StatusOr<Request> ParseRequest(const std::string& payload) {
  std::string head;
  std::string body;
  SplitPayload(payload, head, body);
  std::vector<std::string> tokens;
  for (const std::string& token : StrSplit(head, ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  if (tokens.empty()) return Status::InvalidArgument("empty command line");

  Request request;
  const std::string& command = tokens[0];
  if (command == "OPEN") {
    request.kind = CommandKind::kOpen;
    const size_t space = head.find(' ');
    if (space != std::string::npos) request.options = head.substr(space + 1);
    return request;
  }
  if (command == "QUERY" || command == "CLOSE") {
    request.kind =
        command == "QUERY" ? CommandKind::kQuery : CommandKind::kClose;
    COMPTX_ASSIGN_OR_RETURN(request.session, ParseSessionId(tokens));
    return request;
  }
  if (command == "APPEND") {
    request.kind = CommandKind::kAppend;
    COMPTX_ASSIGN_OR_RETURN(request.session, ParseSessionId(tokens));
    size_t line_number = 1;
    size_t start = 0;
    while (start <= body.size() && !body.empty()) {
      size_t end = body.find('\n', start);
      if (end == std::string::npos) end = body.size();
      ++line_number;
      if (end > start) {
        auto event =
            workload::ParseTraceEventLine(body.substr(start, end - start));
        if (!event.ok()) {
          return Status::InvalidArgument(StrCat("APPEND body line ",
                                                line_number, ": ",
                                                event.status().message()));
        }
        request.events.push_back(std::move(*event));
      }
      if (end >= body.size()) break;
      start = end + 1;
    }
    return request;
  }
  if (command == "STATS") {
    request.kind = CommandKind::kStats;
    return request;
  }
  if (command == "PING") {
    request.kind = CommandKind::kPing;
    return request;
  }
  if (command == "SHUTDOWN") {
    request.kind = CommandKind::kShutdown;
    return request;
  }
  return Status::InvalidArgument(StrCat("unknown command '", command, "'"));
}

std::string FormatResponse(const Response& response) {
  if (!response.ok) {
    return StrCat("ERR ", response.error_code, " ", response.error_message);
  }
  std::string payload = "OK";
  for (const auto& [key, value] : response.fields) {
    payload += StrCat(" ", key, "=", value);
  }
  if (!response.body.empty()) payload += StrCat("\n", response.body);
  return payload;
}

StatusOr<Response> ParseResponse(const std::string& payload) {
  std::string head;
  std::string body;
  SplitPayload(payload, head, body);
  Response response;
  if (StartsWith(head, "ERR ")) {
    response.ok = false;
    const std::string rest = head.substr(4);
    const size_t space = rest.find(' ');
    if (space == std::string::npos) {
      response.error_code = rest;
    } else {
      response.error_code = rest.substr(0, space);
      response.error_message = rest.substr(space + 1);
    }
    return response;
  }
  if (head != "OK" && !StartsWith(head, "OK ")) {
    return Status::InvalidArgument(StrCat("malformed response '", head, "'"));
  }
  response.ok = true;
  for (const std::string& token : StrSplit(head, ' ')) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    response.fields.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  response.body = body;
  return response;
}

Response OkResponse() {
  Response response;
  response.ok = true;
  return response;
}

Response ErrorResponse(const std::string& code, const std::string& message) {
  Response response;
  response.ok = false;
  response.error_code = code;
  response.error_message = message;
  return response;
}

namespace {

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    // MSG_NOSIGNAL: a peer that hung up (or a socket shut down under us
    // during server teardown) yields EPIPE instead of a fatal SIGPIPE.
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("write: ", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes.  `at_start` distinguishes clean EOF (peer
/// closed between frames → NotFound) from truncation mid-frame.
Status ReadAll(int fd, char* data, size_t size, bool at_start) {
  size_t received = 0;
  while (received < size) {
    const ssize_t n = ::read(fd, data + received, size - received);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrCat("read: ", std::strerror(errno)));
    }
    if (n == 0) {
      if (at_start && received == 0) {
        return Status::NotFound("connection closed");
      }
      return Status::Internal("connection closed mid-frame");
    }
    received += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  std::string frame = StrCat(payload.size(), "\n");
  frame += payload;
  return WriteAll(fd, frame.data(), frame.size());
}

StatusOr<std::string> ReadFrame(int fd, size_t max_bytes) {
  // Prefix: decimal digits then '\n', read byte by byte (the prefix is
  // tiny; the payload below is read in one gulp).
  std::string prefix;
  bool at_start = true;
  for (;;) {
    char c = 0;
    Status status = ReadAll(fd, &c, 1, at_start);
    if (!status.ok()) return status;
    at_start = false;
    if (c == '\n') break;
    if (c < '0' || c > '9' || prefix.size() > 12) {
      return Status::InvalidArgument("malformed frame length prefix");
    }
    prefix += c;
  }
  if (prefix.empty()) {
    return Status::InvalidArgument("malformed frame length prefix");
  }
  const uint64_t size = std::strtoull(prefix.c_str(), nullptr, 10);
  if (size > max_bytes) {
    return Status::OutOfRange(
        StrCat("frame of ", size, " bytes exceeds the ", max_bytes,
               "-byte limit"));
  }
  std::string payload(size, '\0');
  if (size > 0) {
    Status status = ReadAll(fd, payload.data(), payload.size(), false);
    if (!status.ok()) return status;
  }
  return payload;
}

}  // namespace comptx::service
