#ifndef COMPTX_SERVICE_EVENT_LOOP_H_
#define COMPTX_SERVICE_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/metrics.h"
#include "service/protocol.h"
#include "service/socket.h"

namespace comptx::service {

/// Front-end knobs (DESIGN.md §12).
struct EventLoopOptions {
  /// epoll threads.  Each owns one epoll instance and a share of the
  /// connections; the listener lives on thread 0, accepted connections
  /// are dealt round-robin.
  size_t io_threads = 2;

  /// Request-handler threads.  The service Handle() blocks (backpressure
  /// waits, drain barriers, fsync-before-ack), so it must never run on an
  /// I/O thread; parsed requests are handed to this pool instead.  Each
  /// connection is processed by at most one handler at a time, so
  /// pipelined responses keep request order.
  size_t handler_threads = 4;

  size_t max_frame_bytes = kMaxFrameBytes;

  /// Flow control: pause reading a connection once this many decoded
  /// frames are queued for handling (TCP backpressure does the rest), and
  /// hang up on a peer that lets this many response bytes pile up without
  /// reading them (a slow or absent consumer must not grow the buffer
  /// forever).
  size_t max_pending_frames = 1024;
  size_t max_buffered_write_bytes = 8u << 20;
};

/// The epoll front end: non-blocking sockets, per-connection read/write
/// buffers, request pipelining, both wire protocols auto-detected per
/// frame (service/protocol.h).
///
/// Threading: `io_threads` epoll loops own the sockets — only a
/// connection's owner thread reads it or closes its fd, so descriptor
/// reuse can never hand one connection's bytes to another.  Decoded
/// frames queue per connection and a handler pool runs the (blocking)
/// request callback, writing each response directly; a response that
/// would block is buffered and finished by the owner thread on EPOLLOUT.
/// Frames on one connection are handled strictly in arrival order
/// (at-most-one handler per connection), frames on different connections
/// in parallel — the pipelining contract the protocol documents.
///
/// Stop() is graceful: stop accepting and reading, let the handlers
/// drain every queued request, flush buffered responses (bounded), then
/// tear down.  A SHUTDOWN reply therefore always reaches the client
/// before its connection closes.
class EventLoop {
 public:
  /// The request callback (CertificationServer::Handle).  Called from
  /// handler threads, possibly concurrently for different connections.
  using Handler = std::function<Response(const Request&)>;

  EventLoop(const EventLoopOptions& options, Handler handler,
            ServiceMetrics* metrics);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Takes ownership of the bound listener and starts the threads.
  Status Start(Socket listener);

  /// Graceful teardown; idempotent, safe from any non-loop thread.
  void Stop();

 private:
  struct Conn;
  struct IoThread;

  void IoLoop(size_t index);
  void HandlerLoop();

  /// Drains one connection's pending frames (decode, handle, respond),
  /// then detaches.  At most one handler runs this per connection.
  void ProcessConn(const std::shared_ptr<Conn>& conn);

  void AcceptReady();
  void ReadReady(const std::shared_ptr<Conn>& conn);
  void WriteReady(const std::shared_ptr<Conn>& conn);

  /// Sends as much of the write buffer as the socket takes, arming
  /// EPOLLOUT for the rest and dooming the connection on a hard write
  /// error.  Requires conn->mu.
  void FlushLocked(const std::shared_ptr<Conn>& conn);

  /// Extracts complete frames from the connection's parser into its
  /// pending queue and schedules a handler if none is attached.  Owner
  /// thread only.
  void ExtractFrames(const std::shared_ptr<Conn>& conn);

  /// Appends response bytes and flushes as far as the socket allows,
  /// arming EPOLLOUT for the rest.  Requires conn->mu.
  void QueueWriteLocked(const std::shared_ptr<Conn>& conn,
                        const std::string& bytes);

  /// Re-registers the connection's epoll interest from its want_read /
  /// want_write flags.  Requires conn->mu.
  void UpdateInterestLocked(const std::shared_ptr<Conn>& conn);

  /// Asks the owner thread to close the connection (any thread).
  void RequestClose(const std::shared_ptr<Conn>& conn);

  /// Deregisters, closes and forgets the connection.  Owner thread (or
  /// teardown, after the owner was joined).
  void CloseConn(const std::shared_ptr<Conn>& conn);

  void ScheduleHandlerLocked(const std::shared_ptr<Conn>& conn);
  void Wake(size_t index);

  const EventLoopOptions options_;
  const Handler handler_;
  ServiceMetrics* const metrics_;

  Socket listener_;
  std::vector<std::unique_ptr<IoThread>> io_;
  std::atomic<uint64_t> next_conn_id_{2};  // 0 = listener, 1 = wakeup
  std::atomic<uint64_t> next_owner_{0};

  std::mutex handler_mu_;
  std::condition_variable handler_cv_;
  std::deque<std::shared_ptr<Conn>> handler_queue_;
  bool stop_handlers_ = false;
  std::vector<std::thread> handler_threads_;

  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace comptx::service

#endif  // COMPTX_SERVICE_EVENT_LOOP_H_
