#include "service/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>

#include "util/logging.h"
#include "util/string_util.h"

namespace comptx::service {

namespace {

// epoll_event.data.u64 tags.  Connection ids start at 2 (next_conn_id_).
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

}  // namespace

/// A frame queued for handling.  `error` non-OK marks a framing violation
/// (FrameParser::Next failed): the handler answers with a diagnostic in
/// the connection's last-seen protocol and the connection is doomed.  The
/// poison frame is always last — the owner thread stops reading when it
/// queues one.
struct QueuedFrame {
  WireFrame frame;
  Status error;
};

/// One connection.  The socket, parser and last_protocol belong to the
/// owner I/O thread; everything else is shared with the handler pool
/// under `mu`.  Flag lifecycle: `closing` dooms the connection (finish
/// pending work, flush, then close), `closed` means the fd is gone —
/// set under `mu` before the close, so a handler holding `mu` for a
/// send() can never race the descriptor's reuse.
struct EventLoop::Conn {
  explicit Conn(size_t max_frame_bytes) : parser(max_frame_bytes) {}

  uint64_t id = 0;
  size_t owner = 0;
  Socket socket;
  FrameParser parser;
  WireProtocol last_protocol = WireProtocol::kV1;

  std::mutex mu;
  std::deque<QueuedFrame> pending;
  bool handling = false;     // a handler thread is attached
  bool want_read = true;     // EPOLLIN interest
  bool want_write = false;   // EPOLLOUT interest (buffered response bytes)
  bool read_paused = false;  // flow control: pending hit the high watermark
  bool closing = false;
  bool closed = false;
  std::string write_buf;
  size_t write_pos = 0;
};

struct EventLoop::IoThread {
  ~IoThread() {
    if (epfd >= 0) ::close(epfd);
    if (wakefd >= 0) ::close(wakefd);
  }

  int epfd = -1;
  int wakefd = -1;
  std::thread thread;

  std::mutex mu;
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns;
  std::vector<uint64_t> close_queue;
};

EventLoop::EventLoop(const EventLoopOptions& options, Handler handler,
                     ServiceMetrics* metrics)
    : options_(options), handler_(std::move(handler)), metrics_(metrics) {}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start(Socket listener) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  listener_ = std::move(listener);
  COMPTX_RETURN_IF_ERROR(SetNonBlocking(listener_.fd()));

  const size_t io_threads = std::max<size_t>(1, options_.io_threads);
  for (size_t i = 0; i < io_threads; ++i) {
    auto io = std::make_unique<IoThread>();
    io->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (io->epfd < 0) {
      return Status::Internal(StrCat("epoll_create1: ", std::strerror(errno)));
    }
    io->wakefd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (io->wakefd < 0) {
      return Status::Internal(StrCat("eventfd: ", std::strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(io->epfd, EPOLL_CTL_ADD, io->wakefd, &ev) < 0) {
      return Status::Internal(StrCat("epoll_ctl: ", std::strerror(errno)));
    }
    io_.push_back(std::move(io));
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(io_[0]->epfd, EPOLL_CTL_ADD, listener_.fd(), &ev) < 0) {
    return Status::Internal(StrCat("epoll_ctl: ", std::strerror(errno)));
  }

  const size_t handlers = std::max<size_t>(1, options_.handler_threads);
  handler_threads_.reserve(handlers);
  for (size_t i = 0; i < handlers; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  for (size_t i = 0; i < io_.size(); ++i) {
    io_[i]->thread = std::thread([this, i] { IoLoop(i); });
  }
  started_ = true;
  return Status::OK();
}

void EventLoop::Wake(size_t index) {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(io_[index]->wakefd, &one, sizeof(one));
}

// ---- I/O threads ------------------------------------------------------

void EventLoop::IoLoop(size_t index) {
  IoThread& io = *io_[index];
  epoll_event events[128];
  for (;;) {
    const int n = ::epoll_wait(io.epfd, events,
                               static_cast<int>(std::size(events)), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      COMPTX_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        if (!stopping_.load(std::memory_order_relaxed)) AcceptReady();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(io.wakefd, &drained, sizeof(drained));
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::unique_lock<std::mutex> lock(io.mu);
        auto it = io.conns.find(tag);
        if (it != io.conns.end()) conn = it->second;
      }
      if (conn == nullptr) continue;  // closed while the event was in flight
      if ((events[i].events & EPOLLOUT) != 0) WriteReady(conn);
      if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        ReadReady(conn);
      }
    }
    // Closes requested by handler threads land here, on the fd's owner.
    std::vector<uint64_t> to_close;
    {
      std::unique_lock<std::mutex> lock(io.mu);
      to_close.swap(io.close_queue);
    }
    for (const uint64_t id : to_close) {
      std::shared_ptr<Conn> conn;
      {
        std::unique_lock<std::mutex> lock(io.mu);
        auto it = io.conns.find(id);
        if (it != io.conns.end()) conn = it->second;
      }
      if (conn != nullptr) CloseConn(conn);
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
  }
}

void EventLoop::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listener is closing
    }
    SetNoDelay(fd);
    auto conn = std::make_shared<Conn>(options_.max_frame_bytes);
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->owner = static_cast<size_t>(next_owner_.fetch_add(
                      1, std::memory_order_relaxed)) %
                  io_.size();
    conn->socket = Socket(fd);
    IoThread& owner = *io_[conn->owner];
    {
      std::unique_lock<std::mutex> lock(owner.mu);
      owner.conns.emplace(conn->id, conn);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(owner.epfd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      std::unique_lock<std::mutex> lock(owner.mu);
      owner.conns.erase(conn->id);
      continue;  // conn's destructor closes the fd
    }
    metrics_->connections_accepted.Increment();
    metrics_->active_connections.fetch_add(1, std::memory_order_relaxed);
  }
}

void EventLoop::ReadReady(const std::shared_ptr<Conn>& conn) {
  // Cap the bytes pulled per readiness round so one fast connection
  // cannot monopolize its I/O thread; level-triggered epoll re-reports
  // the rest.
  constexpr size_t kMaxReadPerRound = 256u << 10;
  char buf[64 << 10];
  size_t total = 0;
  bool peer_done = false;
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    if (conn->closed || !conn->want_read) return;
    while (total < kMaxReadPerRound) {
      const ssize_t n = ::recv(conn->socket.fd(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn->parser.Feed(buf, static_cast<size_t>(n));
        total += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      peer_done = true;  // clean EOF or a read error: no more requests
      break;
    }
  }
  if (total > 0) ExtractFrames(conn);
  if (!peer_done) return;
  bool close_now = false;
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closing = true;
    if (conn->want_read) {
      conn->want_read = false;
      UpdateInterestLocked(conn);
    }
    close_now = !conn->handling && conn->pending.empty() &&
                conn->write_pos == conn->write_buf.size();
  }
  // Pending frames or buffered responses: the handler pool / EPOLLOUT
  // path finishes them and closes — a pipelining client that half-closes
  // after its last request still gets every response.
  if (close_now) CloseConn(conn);
}

void EventLoop::ExtractFrames(const std::shared_ptr<Conn>& conn) {
  bool schedule = false;
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    if (conn->closed || conn->closing) return;
    while (true) {
      if (conn->pending.size() >= options_.max_pending_frames) {
        // High watermark: stop reading until the handler drains the
        // queue; the kernel buffer fills and TCP pushes back.
        if (!conn->read_paused) {
          conn->read_paused = true;
          conn->want_read = false;
          UpdateInterestLocked(conn);
        }
        break;
      }
      WireFrame frame;
      auto got = conn->parser.Next(frame);
      if (!got.ok()) {
        // Framing violation: queue a poison frame (answered in order,
        // after the good requests ahead of it) and stop reading.
        QueuedFrame poison;
        poison.frame.protocol = conn->last_protocol;
        poison.error = got.status();
        conn->pending.push_back(std::move(poison));
        conn->want_read = false;
        UpdateInterestLocked(conn);
        break;
      }
      if (!*got) break;
      conn->last_protocol = frame.protocol;
      conn->pending.push_back(QueuedFrame{std::move(frame), Status::OK()});
    }
    if (!conn->handling && !conn->pending.empty()) {
      conn->handling = true;
      schedule = true;
    }
  }
  if (schedule) {
    std::unique_lock<std::mutex> lock(handler_mu_);
    handler_queue_.push_back(conn);
    handler_cv_.notify_one();
  }
}

void EventLoop::WriteReady(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    FlushLocked(conn);
    close_now = conn->closing && !conn->handling && conn->pending.empty() &&
                conn->write_pos == conn->write_buf.size();
  }
  if (close_now) CloseConn(conn);
}

void EventLoop::FlushLocked(const std::shared_ptr<Conn>& conn) {
  while (conn->write_pos < conn->write_buf.size()) {
    const ssize_t n =
        ::send(conn->socket.fd(), conn->write_buf.data() + conn->write_pos,
               conn->write_buf.size() - conn->write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->write_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        UpdateInterestLocked(conn);
      }
      return;
    }
    // Peer gone mid-response: nothing left to deliver.
    conn->write_buf.clear();
    conn->write_pos = 0;
    conn->closing = true;
    if (conn->want_read || conn->want_write) {
      conn->want_read = false;
      conn->want_write = false;
      UpdateInterestLocked(conn);
    }
    return;
  }
  conn->write_buf.clear();
  conn->write_pos = 0;
  if (conn->want_write) {
    conn->want_write = false;
    UpdateInterestLocked(conn);
  }
}

void EventLoop::QueueWriteLocked(const std::shared_ptr<Conn>& conn,
                                 const std::string& bytes) {
  if (conn->closed) return;
  conn->write_buf += bytes;
  FlushLocked(conn);
  if (conn->write_buf.size() - conn->write_pos >
      options_.max_buffered_write_bytes) {
    // The peer pipelines requests but does not read responses; refusing
    // to buffer unboundedly, we stop reading and close once (if ever)
    // the backlog flushes.
    conn->closing = true;
    if (conn->want_read) {
      conn->want_read = false;
      UpdateInterestLocked(conn);
    }
  }
}

void EventLoop::UpdateInterestLocked(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  epoll_event ev{};
  ev.events = (conn->want_read ? EPOLLIN : 0u) |
              (conn->want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(io_[conn->owner]->epfd, EPOLL_CTL_MOD, conn->socket.fd(), &ev);
}

void EventLoop::RequestClose(const std::shared_ptr<Conn>& conn) {
  IoThread& owner = *io_[conn->owner];
  {
    std::unique_lock<std::mutex> lock(owner.mu);
    owner.close_queue.push_back(conn->id);
  }
  Wake(conn->owner);
}

void EventLoop::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
  }
  // No handler can touch the fd past this point (they check `closed`
  // under conn->mu before every send), so closing it cannot leak a write
  // into a reused descriptor.
  IoThread& owner = *io_[conn->owner];
  ::epoll_ctl(owner.epfd, EPOLL_CTL_DEL, conn->socket.fd(), nullptr);
  conn->socket.Close();
  {
    std::unique_lock<std::mutex> lock(owner.mu);
    owner.conns.erase(conn->id);
  }
  metrics_->active_connections.fetch_sub(1, std::memory_order_relaxed);
}

// ---- handler pool -----------------------------------------------------

void EventLoop::HandlerLoop() {
  for (;;) {
    std::shared_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lock(handler_mu_);
      handler_cv_.wait(lock, [this] {
        return stop_handlers_ || !handler_queue_.empty();
      });
      if (handler_queue_.empty()) return;  // stop, and nothing left
      conn = std::move(handler_queue_.front());
      handler_queue_.pop_front();
    }
    ProcessConn(conn);
  }
}

void EventLoop::ProcessConn(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    QueuedFrame work;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      if (conn->pending.empty() || conn->closed) {
        conn->handling = false;
        const bool close_now = conn->closing && !conn->closed &&
                               conn->write_pos == conn->write_buf.size();
        if (!close_now && conn->read_paused && !conn->closing) {
          conn->read_paused = false;
          conn->want_read = true;
          UpdateInterestLocked(conn);
        }
        lock.unlock();
        if (close_now) RequestClose(conn);
        return;
      }
      work = std::move(conn->pending.front());
      conn->pending.pop_front();
      // Low watermark: resume reading once the backlog halves.
      if (conn->read_paused && !conn->closing &&
          conn->pending.size() <= options_.max_pending_frames / 2) {
        conn->read_paused = false;
        conn->want_read = true;
        UpdateInterestLocked(conn);
      }
    }

    // Decode and handle outside conn->mu: the owner thread keeps
    // reading and other connections keep flowing while Handle blocks
    // on backpressure, drain barriers or fsync.
    Response response;
    bool terminal = false;
    if (!work.error.ok()) {
      metrics_->protocol_errors.Increment();
      response = ErrorResponse("bad_request", work.error.message());
      terminal = true;  // framing is unrecoverable: answer, then hang up
    } else {
      auto request = DecodeRequestFrame(work.frame);
      if (!request.ok()) {
        // A malformed payload in a well-framed request: answer and keep
        // the connection, matching the v1 front end.
        metrics_->protocol_errors.Increment();
        response =
            ErrorResponse("bad_request", request.status().message());
      } else {
        response = handler_(*request);
      }
    }
    const std::string bytes = EncodeResponseFrame(
        work.frame.protocol, response, work.frame.session);
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      QueueWriteLocked(conn, bytes);
      if (terminal && !conn->closed) {
        conn->closing = true;
        if (conn->want_read) {
          conn->want_read = false;
          UpdateInterestLocked(conn);
        }
      }
    }
  }
}

// ---- teardown ---------------------------------------------------------

void EventLoop::Stop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  if (!started_ || stopped_) return;
  stopped_ = true;

  // 1. Stop accepting and reading: the I/O threads observe stopping_ on
  //    the wakeup and exit.  From here the set of queued requests is
  //    frozen.
  stopping_.store(true, std::memory_order_relaxed);
  for (size_t i = 0; i < io_.size(); ++i) Wake(i);
  for (const auto& io : io_) {
    if (io->thread.joinable()) io->thread.join();
  }

  // 2. Drain the handler pool: stop_handlers_ lets each thread exit only
  //    once the queue is empty, so every accepted request is answered
  //    (in particular the SHUTDOWN OK that triggered this teardown).
  {
    std::unique_lock<std::mutex> hlock(handler_mu_);
    stop_handlers_ = true;
    handler_cv_.notify_all();
  }
  for (std::thread& thread : handler_threads_) thread.join();
  handler_threads_.clear();

  // 3. Flush buffered responses, bounded: a peer that stopped reading
  //    must not wedge shutdown.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::vector<std::shared_ptr<Conn>> conns;
  for (const auto& io : io_) {
    std::unique_lock<std::mutex> ilock(io->mu);
    for (const auto& [id, conn] : io->conns) conns.push_back(conn);
  }
  for (const std::shared_ptr<Conn>& conn : conns) {
    std::unique_lock<std::mutex> clock_(conn->mu);
    while (!conn->closed && conn->write_pos < conn->write_buf.size() &&
           std::chrono::steady_clock::now() < deadline) {
      const size_t before = conn->write_pos;
      FlushLocked(conn);
      if (conn->write_pos == before &&
          conn->write_pos < conn->write_buf.size()) {
        // EAGAIN with no progress: give the peer a moment to read.
        clock_.unlock();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        clock_.lock();
      }
    }
  }

  // 4. Close everything.  Single-threaded now, so owner-thread closing
  //    rules are moot.
  for (const std::shared_ptr<Conn>& conn : conns) CloseConn(conn);
  listener_.Close();
  io_.clear();  // closes the epoll and event fds
}

}  // namespace comptx::service
