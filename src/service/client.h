#ifndef COMPTX_SERVICE_CLIENT_H_
#define COMPTX_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "service/session_manager.h"
#include "service/socket.h"
#include "util/status_or.h"

namespace comptx::service {

/// Blocking client for the comptx-serve wire protocol.  One connection,
/// one outstanding request at a time; not thread-safe (give each client
/// thread its own instance — comptx_load does).  Any transport or ERR
/// response surfaces as a non-OK Status whose message carries the wire
/// error code.
///
/// The protocol chosen at Dial frames every request: v1 is the textual
/// protocol, v2 the binary one (protocol.h) — under v2, a multi-event
/// Append travels as one BATCH_APPEND frame.  Both interoperate with the
/// same server, which answers in the protocol each request arrived in.
class ServiceClient {
 public:
  static StatusOr<ServiceClient> Dial(
      const Endpoint& endpoint, WireProtocol protocol = WireProtocol::kV1);

  ServiceClient(ServiceClient&&) = default;
  ServiceClient& operator=(ServiceClient&&) = default;

  /// OPEN with "key=value ..." options; returns the session id.
  StatusOr<uint64_t> Open(const std::string& options = "");

  /// APPEND; returns the number of events the server queued.
  StatusOr<uint64_t> Append(uint64_t session,
                            const std::vector<workload::TraceEvent>& events);

  /// QUERY / CLOSE: drain barrier + verdict.
  StatusOr<SessionVerdict> Query(uint64_t session);
  StatusOr<SessionVerdict> Close(uint64_t session);

  /// STATS body ("key value" lines; `json` asks for the JSON rendering).
  StatusOr<std::string> Stats(bool json = false);

  /// Generic round trip for the ORDER_STREAM command family
  /// (SUBSCRIBE/STREAM/ATTACH/DETACH/PREPARE/DECIDE) and other
  /// options-only commands.  Unlike the typed wrappers, ERR replies come
  /// back as a Response with ok=false rather than as a Status, so callers
  /// can branch on the wire error code (e.g. "gap" → resubscribe from the
  /// durable cursor).  Transport failures are still a non-OK Status.
  StatusOr<Response> Command(CommandKind kind, uint64_t session,
                             const std::string& options = "");

  Status Ping();

  /// Asks the server to drain and exit.
  Status Shutdown();

  WireProtocol protocol() const { return protocol_; }

 private:
  ServiceClient(Socket socket, WireProtocol protocol)
      : socket_(std::move(socket)), protocol_(protocol) {}

  StatusOr<Response> RoundTrip(const Request& request);
  StatusOr<Response> Transport(const Request& request);
  static SessionVerdict VerdictFrom(const Response& response);

  Socket socket_;
  WireProtocol protocol_ = WireProtocol::kV1;
  FrameParser parser_;
};

}  // namespace comptx::service

#endif  // COMPTX_SERVICE_CLIENT_H_
