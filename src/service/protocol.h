#ifndef COMPTX_SERVICE_PROTOCOL_H_
#define COMPTX_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::service {

/// comptx-serve wire protocol v1.
///
/// Transport: a stream socket (TCP or Unix).  Every message — request or
/// response — is one length-prefixed frame:
///
///     <payload-byte-count as decimal ASCII> '\n' <payload>
///
/// The prefix makes the stream self-delimiting without escaping (payload
/// bodies contain newlines), and keeping both the prefix and the payload
/// textual keeps the protocol debuggable with netcat.  Frames above
/// kMaxFrameBytes are rejected before the body is read (a malformed or
/// hostile prefix cannot make the server allocate unboundedly).
///
/// Request payloads: a command line, then an optional body.
///
///     OPEN [key=value ...]        options: forgetting, epoch_interval,
///                                 auto_prune, queue_capacity, resume
///     APPEND <session-id>         body: one trace event line per line
///     QUERY <session-id>          drain barrier + verdict
///     CLOSE <session-id>          drain + final verdict + free the slot
///     STATS                       metrics snapshot
///     PING                        liveness probe
///     SHUTDOWN                    graceful drain, then the server exits
///
/// Response payloads:
///
///     OK [key=value ...]          first line; body lines follow for STATS
///     ERR <code> <message>        codes: bad_request, not_found,
///                                 session_limit, shutting_down, internal
///
/// APPEND acknowledges *enqueueing* (the events are certified
/// asynchronously by the worker pool); QUERY and CLOSE wait for the
/// session's queue to drain, so their accepted/rejected/certifiable
/// fields describe every event appended before them.
///
/// Durability (server started with --data-dir, DESIGN.md §11): an acked
/// APPEND is also *durable* under the server's fsync policy, OPEN with
/// resume=<id> re-opens a persisted (evicted or pre-restart) session —
/// the OK carries resumed_events, the count of durably logged events, so
/// the client continues the stream from there — and the STATS body gains
/// the durability counters (wal_appends, wal_bytes, fsyncs,
/// snapshots_written, sessions_recovered, records_truncated,
/// recovered_events, recovery_mismatches).  The frame grammar is
/// unchanged: v1 clients interoperate untouched.
constexpr size_t kMaxFrameBytes = 4u << 20;

enum class CommandKind : uint8_t {
  kOpen,
  kAppend,
  kQuery,
  kClose,
  kStats,
  kPing,
  kShutdown,
};

const char* CommandKindToString(CommandKind kind);

struct Request {
  CommandKind kind = CommandKind::kPing;
  uint64_t session = 0;               // APPEND / QUERY / CLOSE
  std::string options;                // OPEN: "key=value ..." verbatim
  std::vector<workload::TraceEvent> events;  // APPEND body
};

/// A parsed response.  `ok` distinguishes OK from ERR; `fields` holds the
/// OK key=values, `body` the remaining lines (STATS), and error_code /
/// error_message the ERR parts.
struct Response {
  bool ok = false;
  std::vector<std::pair<std::string, std::string>> fields;
  std::string body;
  std::string error_code;
  std::string error_message;

  /// The value of `key` in fields, or empty.
  std::string Field(const std::string& key) const;
  /// Field parsed as uint64; `fallback` when absent or malformed.
  uint64_t FieldInt(const std::string& key, uint64_t fallback = 0) const;
};

std::string FormatRequest(const Request& request);
StatusOr<Request> ParseRequest(const std::string& payload);

std::string FormatResponse(const Response& response);
StatusOr<Response> ParseResponse(const std::string& payload);

/// Convenience builders.
Response OkResponse();
Response ErrorResponse(const std::string& code, const std::string& message);

/// Blocking frame I/O on a connected socket.  WriteFrame sends prefix and
/// payload; ReadFrame returns the payload, NotFound on clean EOF at a
/// frame boundary, and an error for truncation, oversize or a malformed
/// prefix.
Status WriteFrame(int fd, const std::string& payload);
StatusOr<std::string> ReadFrame(int fd, size_t max_bytes = kMaxFrameBytes);

}  // namespace comptx::service

#endif  // COMPTX_SERVICE_PROTOCOL_H_
