#ifndef COMPTX_SERVICE_PROTOCOL_H_
#define COMPTX_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status_or.h"
#include "workload/trace.h"

namespace comptx::service {

/// comptx-serve wire protocols.
///
/// Two framings share every port.  The server auto-detects per frame on
/// the first byte: ASCII digits open a textual v1 frame, the v2 magic
/// byte 'C' (never a digit) opens a binary v2 frame — so old clients,
/// netcat debugging and new batch clients interoperate on one listener,
/// and the server answers each request in the protocol it arrived in.
///
/// v1 (textual, kept for debugging and old clients).  Every message —
/// request or response — is one length-prefixed frame:
///
///     <payload-byte-count as decimal ASCII> '\n' <payload>
///
/// The prefix makes the stream self-delimiting without escaping (payload
/// bodies contain newlines), and keeping both the prefix and the payload
/// textual keeps the protocol debuggable with netcat.  Frames above
/// kMaxFrameBytes are rejected before the body is read (a malformed or
/// hostile prefix cannot make the server allocate unboundedly).
///
/// Request payloads: a command line, then an optional body.
///
///     OPEN [key=value ...]        options: forgetting, epoch_interval,
///                                 auto_prune, queue_capacity, resume
///     APPEND <session-id>         body: one trace event line per line
///     QUERY <session-id>          drain barrier + verdict
///     CLOSE <session-id>          drain + final verdict + free the slot
///     STATS [json=1]              metrics snapshot (json=1: JSON body)
///     PING                        liveness probe
///     SHUTDOWN                    graceful drain, then the server exits
///     SUBSCRIBE <id> [k=v ...]    ORDER_STREAM handshake: from=<seq>
///     STREAM <id> [k=v ...]       long-poll fetch: from, max, wait_ms,
///                                 ack, sub; reply body = event lines
///     ATTACH <id> [k=v ...]       wire an upstream edge: edge, host,
///                                 port, remote, prefix
///     DETACH <id> [k=v ...]       tear an edge down: edge=<id>
///     PREPARE <id> [k=v ...]      2PC phase 1: k=<watermark>
///     DECIDE <id> [k=v ...]       2PC phase 2: k=<watermark>
///
/// Response payloads:
///
///     OK [key=value ...]          first line; body lines follow for STATS
///     ERR <code> <message>        codes: bad_request, not_found,
///                                 session_limit, shutting_down, internal
///
/// APPEND acknowledges *enqueueing* (the events are certified
/// asynchronously by the worker pool); QUERY and CLOSE wait for the
/// session's queue to drain, so their accepted/rejected/certifiable
/// fields describe every event appended before them.
///
/// Durability (server started with --data-dir, DESIGN.md §11): an acked
/// APPEND is also *durable* under the server's fsync policy, OPEN with
/// resume=<id> re-opens a persisted (evicted or pre-restart) session —
/// the OK carries resumed_events, the count of durably logged events, so
/// the client continues the stream from there — and the STATS body gains
/// the durability counters (wal_appends, wal_append_events, wal_bytes,
/// fsyncs, snapshots_written, sessions_recovered, records_truncated,
/// recovered_events, recovery_mismatches; wal_append_events /
/// wal_appends is the group-commit amortization ratio).  The frame grammar is
/// unchanged: v1 clients interoperate untouched.
///
/// v2 (binary, DESIGN.md §12).  A fixed little-endian 20-byte header,
/// then the payload:
///
///     offset 0   u32  magic      0x32585443 ("CTX2"; first byte 'C')
///     offset 4   u8   version    2
///     offset 5   u8   opcode     Opcode below
///     offset 6   u16  flags      0 (reserved; non-zero is rejected)
///     offset 8   u64  session    id, or 0 when the opcode takes none
///     offset 16  u32  length     payload byte count (<= kMaxFrameBytes)
///
/// Request payloads: OPEN carries the raw "key=value ..." options text;
/// APPEND carries exactly one varint-packed event; BATCH_APPEND carries
/// a varint event count then that many packed events (one frame, one
/// enqueue, one certifier hand-off and one WAL group commit for the
/// whole batch — the amortization the protocol exists for); QUERY /
/// CLOSE / STATS / PING / SHUTDOWN have empty payloads.  Events pack as
/// a kind byte followed by the kind's fields: node/schedule references
/// as LEB128 varints, names as varint-length-prefixed bytes.
///
/// Response frames use opcode REPLY with the request's session id echoed
/// and the textual v1 response rendering ("OK key=value ..." / "ERR code
/// message" + body) as payload: responses are tiny and cold next to
/// APPEND bodies, so they keep the debuggable text form while the hot
/// request path gets the compact framing.
///
/// Semantics are protocol-independent: a BATCH_APPEND ack means every
/// event in the frame was enqueued (and is durable under --data-dir's
/// fsync policy), verdict barriers drain exactly like v1, and pipelined
/// requests on one connection are answered strictly in request order.
constexpr size_t kMaxFrameBytes = 4u << 20;

/// v2 constants.
constexpr uint32_t kWireMagicV2 = 0x32585443u;  // "CTX2" little-endian
constexpr uint8_t kWireVersion2 = 2;
constexpr size_t kWireHeaderBytes = 20;

enum class WireProtocol : uint8_t { kV1 = 1, kV2 = 2 };

enum class Opcode : uint8_t {
  kOpen = 1,
  kAppend = 2,
  kBatchAppend = 3,
  kQuery = 4,
  kClose = 5,
  kStats = 6,
  kPing = 7,
  kShutdown = 8,
  // ORDER_STREAM family (DESIGN.md §15): distributed composite
  // certification.  All five carry a "key=value ..." options text as
  // payload, exactly like OPEN, so the family can grow fields without
  // another frame format.
  kSubscribe = 9,    // validate a stream cursor against a session
  kStream = 10,      // long-poll fetch of accepted events past a cursor
  kAttach = 11,      // wire an upstream edge into a local session
  kDetach = 12,      // tear one edge down
  kPrepare = 13,     // 2PC phase 1: seal the subtree through watermark k
  kDecide = 14,      // 2PC phase 2: broadcast the commit decision
  kReply = 0x80,
};

enum class CommandKind : uint8_t {
  kOpen,
  kAppend,
  kQuery,
  kClose,
  kStats,
  kPing,
  kShutdown,
  kSubscribe,
  kStream,
  kAttach,
  kDetach,
  kPrepare,
  kDecide,
};

const char* CommandKindToString(CommandKind kind);

struct Request {
  CommandKind kind = CommandKind::kPing;
  uint64_t session = 0;  // APPEND / QUERY / CLOSE / ORDER_STREAM family
  std::string options;   // OPEN + ORDER_STREAM family + STATS: "key=value
                         // ..." verbatim (STATS accepts "json=1")
  std::vector<workload::TraceEvent> events;  // APPEND body
};

/// A parsed response.  `ok` distinguishes OK from ERR; `fields` holds the
/// OK key=values, `body` the remaining lines (STATS), and error_code /
/// error_message the ERR parts.
struct Response {
  bool ok = false;
  std::vector<std::pair<std::string, std::string>> fields;
  std::string body;
  std::string error_code;
  std::string error_message;

  /// The value of `key` in fields, or empty.
  std::string Field(const std::string& key) const;
  /// Field parsed as uint64; `fallback` when absent or malformed.
  uint64_t FieldInt(const std::string& key, uint64_t fallback = 0) const;
};

std::string FormatRequest(const Request& request);
StatusOr<Request> ParseRequest(const std::string& payload);

std::string FormatResponse(const Response& response);
StatusOr<Response> ParseResponse(const std::string& payload);

/// Convenience builders.
Response OkResponse();
Response ErrorResponse(const std::string& code, const std::string& message);

/// Blocking frame I/O on a connected socket.  WriteFrame sends prefix and
/// payload; ReadFrame returns the payload, NotFound on clean EOF at a
/// frame boundary, and an error for truncation, oversize or a malformed
/// prefix.
Status WriteFrame(int fd, const std::string& payload);
StatusOr<std::string> ReadFrame(int fd, size_t max_bytes = kMaxFrameBytes);

// ---- varint + packed-event codec (v2 payload layer) ------------------

/// LEB128.  AppendVarint writes `value`; ReadVarint advances `pos` and
/// fails on truncation or a >64-bit encoding.
void AppendVarint(std::string& out, uint64_t value);
Status ReadVarint(const std::string& data, size_t& pos, uint64_t& value);

/// One trace event as kind byte + the kind's fields (varint references,
/// varint-length-prefixed names).  ReadEventBinary advances `pos`.
void AppendEventBinary(std::string& out, const workload::TraceEvent& event);
Status ReadEventBinary(const std::string& data, size_t& pos,
                       workload::TraceEvent& event);

// ---- frame layer ------------------------------------------------------

/// One decoded frame, protocol-tagged.  For v1 the payload is the whole
/// textual payload and opcode/session are unused; for v2 the header
/// fields are filled and payload is the binary body.
struct WireFrame {
  WireProtocol protocol = WireProtocol::kV1;
  Opcode opcode = Opcode::kPing;
  uint64_t session = 0;
  std::string payload;
};

/// Incremental frame extraction for the event loop: Feed() appends raw
/// bytes from a socket, Next() peels complete frames off the front,
/// auto-detecting v1 vs v2 per frame from the first byte.  Partial
/// frames stay buffered (Next returns false); a malformed prefix/header
/// or an oversized declared length is a terminal error — the connection
/// owner answers with a best-effort diagnostic and hangs up.
class FrameParser {
 public:
  explicit FrameParser(size_t max_bytes = kMaxFrameBytes)
      : max_bytes_(max_bytes) {}

  void Feed(const char* data, size_t size);

  /// True: `frame` holds the next complete frame.  False: need more
  /// bytes.  Error: framing violation (terminal for the connection).
  StatusOr<bool> Next(WireFrame& frame);

  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  /// Drops consumed bytes once the prefix grows past a threshold, so a
  /// long-lived pipelined connection does not grow the buffer forever.
  void Compact();

  std::string buffer_;
  size_t pos_ = 0;
  size_t max_bytes_;  // not const: FrameParser members must stay movable
};

/// Encodes a request as complete wire bytes (prefix + payload for v1,
/// header + payload for v2).  In v2, APPEND with more than one event
/// becomes a BATCH_APPEND frame.
std::string EncodeRequestFrame(WireProtocol protocol, const Request& request);

/// Encodes a response as complete wire bytes in `protocol`, echoing
/// `session` in the v2 header.
std::string EncodeResponseFrame(WireProtocol protocol,
                                const Response& response, uint64_t session);

/// Decodes a parsed frame into a Request (v1: ParseRequest on the text;
/// v2: opcode switch over the binary payload).
StatusOr<Request> DecodeRequestFrame(const WireFrame& frame);

/// Decodes a parsed frame into a Response (both protocols carry the
/// textual response rendering; v2 checks the REPLY opcode).
StatusOr<Response> DecodeResponseFrame(const WireFrame& frame);

/// Blocking write of already-encoded wire bytes (EncodeRequestFrame /
/// EncodeResponseFrame output).
Status WriteWireBytes(int fd, const std::string& bytes);

/// Blocking read of one frame in either protocol: reads from `fd` into
/// `parser` until a frame completes.  NotFound on clean EOF at a frame
/// boundary.  The client side of the protocol (the server side runs the
/// non-blocking event loop over the same parser).
StatusOr<WireFrame> ReadWireFrame(int fd, FrameParser& parser);

const char* WireProtocolToString(WireProtocol protocol);
StatusOr<WireProtocol> ParseWireProtocol(const std::string& name);

}  // namespace comptx::service

#endif  // COMPTX_SERVICE_PROTOCOL_H_
