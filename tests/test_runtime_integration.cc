// Cross-layer property suite: executions produced by the runtime, once
// recorded into the formal model, must satisfy the theory end-to-end —
// validity, criteria consistency, and oracle soundness.

#include <gtest/gtest.h>

#include "core/correctness.h"
#include "criteria/compare.h"
#include "criteria/oracle.h"
#include "runtime/system_executor.h"
#include "workload/program_gen.h"
#include "workload/trace.h"

namespace comptx::runtime {
namespace {

struct Case {
  Protocol protocol;
  uint64_t seed;
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << ProtocolToString(c.protocol) << "_seed" << c.seed;
}

class RuntimeIntegrationTest : public ::testing::TestWithParam<Case> {};

TEST_P(RuntimeIntegrationTest, RecordedExecutionsSatisfyTheTheory) {
  workload::RuntimeWorkloadSpec spec;
  spec.layers = 3;
  spec.components_per_layer = 2;
  spec.items_per_component = 6;
  spec.services_per_component = 2;
  spec.steps_per_service = 3;
  spec.invoke_fraction = 0.6;
  spec.num_roots = 6;
  RuntimeSystem system =
      workload::GenerateRuntimeWorkload(spec, GetParam().seed);

  ExecutorOptions options;
  options.protocol = GetParam().protocol;
  options.seed = GetParam().seed * 131 + 17;
  auto result = ExecuteSystem(system, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CompositeSystem& recorded = result->recorded;

  // 1. The bridge is lossless w.r.t. the model rules.
  ASSERT_TRUE(recorded.Validate().ok()) << recorded.Validate().ToString();

  // 2. All criteria run without errors on recorded executions.
  auto verdicts = criteria::EvaluateAllCriteria(recorded);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();

  // 3. Comp-C soundness against the independent oracle.
  auto oracle = criteria::HierarchicalSerializabilityOracle(recorded);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  if (verdicts->comp_c) EXPECT_TRUE(*oracle);

  // 4. Safe protocols only produce Comp-C executions.
  if (GetParam().protocol != Protocol::kOpenTwoPhase) {
    EXPECT_TRUE(verdicts->comp_c);
  }

  // 5. Recorded executions survive a trace round trip with identical
  //    verdicts.
  auto text = workload::SaveTrace(recorded);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto reloaded = workload::LoadTrace(*text);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(IsCompC(*reloaded), verdicts->comp_c);
}

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  for (Protocol protocol :
       {Protocol::kGlobalSerial, Protocol::kClosedTwoPhase,
        Protocol::kOpenTwoPhase, Protocol::kOpenValidated,
          Protocol::kConservativeTimestamp}) {
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      cases.push_back(Case{protocol, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RuntimeIntegrationTest,
                         ::testing::ValuesIn(MakeCases()));

}  // namespace
}  // namespace comptx::runtime
