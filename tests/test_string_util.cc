#include "util/string_util.h"

#include <gtest/gtest.h>

namespace comptx {
namespace {

TEST(StrJoinTest, JoinsWithSeparator) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(parts, ", "), "a, b, c");
}

TEST(StrJoinTest, EmptyAndSingleton) {
  EXPECT_EQ(StrJoin(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(StrJoin(std::vector<std::string>{"only"}, ","), "only");
}

TEST(StrJoinTest, StreamsNonStrings) {
  std::vector<int> numbers = {1, 2, 3};
  EXPECT_EQ(StrJoin(numbers, "-"), "1-2-3");
}

TEST(StrSplitTest, SplitsOnSeparator) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrSplitTest, KeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrSplitTest, EmptyInputYieldsNothing) {
  EXPECT_TRUE(StrSplit("", ',').empty());
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("schedule", "sched"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_FALSE(StartsWith("sched", "schedule"));
}

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("level ", 3, " of ", 4.5), "level 3 of 4.5");
  EXPECT_EQ(StrCat(), "");
}

}  // namespace
}  // namespace comptx
