#include <gtest/gtest.h>

#include "analysis/builder.h"
#include "criteria/compare.h"
#include "criteria/conflict_consistency.h"
#include "criteria/csr.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/llsr.h"
#include "criteria/opsr.h"
#include "criteria/scc.h"
#include "test_helpers.h"
#include "workload/topology_gen.h"

namespace comptx {
namespace {

using namespace comptx::criteria;  // NOLINT

TEST(ScheduleCCTest, SerializationOrderFromConflicts) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  Relation ser = ScheduleSerializationOrder(stack.cs, ScheduleId(1));
  EXPECT_TRUE(ser.Contains(stack.s1, stack.s2));
  EXPECT_FALSE(ser.Contains(stack.s2, stack.s1));
  EXPECT_TRUE(IsScheduleConflictConsistent(stack.cs, ScheduleId(1)));
  EXPECT_TRUE(IsScheduleConflictSerializable(stack.cs, ScheduleId(1)));
}

TEST(ScheduleCCTest, InputOrderViolationDetected) {
  // Leaves serialized x2 before x1 while the input order demands s1
  // before s2: CC fails even though the serialization graph is acyclic.
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/false, /*top_conflict=*/false);
  ASSERT_TRUE(
      stack.cs.AddWeakInput(ScheduleId(1), stack.s1, stack.s2).ok());
  EXPECT_TRUE(IsScheduleConflictSerializable(stack.cs, ScheduleId(1)));
  EXPECT_FALSE(IsScheduleConflictConsistent(stack.cs, ScheduleId(1)));
  auto violation = FindScheduleCCViolation(stack.cs, ScheduleId(1));
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->nodes.size(), 2u);
}

TEST(ShapeDetectionTest, StackForkJoin) {
  Rng rng(5);
  workload::TopologySpec spec;
  spec.kind = workload::TopologyKind::kStack;
  spec.depth = 3;
  CompositeSystem stack = workload::GenerateTopology(spec, rng);
  EXPECT_TRUE(IsStackSystem(stack));
  EXPECT_FALSE(IsForkSystem(stack));
  EXPECT_FALSE(IsJoinSystem(stack));

  spec.kind = workload::TopologyKind::kFork;
  CompositeSystem fork = workload::GenerateTopology(spec, rng);
  EXPECT_TRUE(IsForkSystem(fork));
  EXPECT_FALSE(IsStackSystem(fork));
  EXPECT_FALSE(IsJoinSystem(fork));

  spec.kind = workload::TopologyKind::kJoin;
  CompositeSystem join = workload::GenerateTopology(spec, rng);
  EXPECT_TRUE(IsJoinSystem(join));
  EXPECT_FALSE(IsStackSystem(join));
  EXPECT_FALSE(IsForkSystem(join));

  EXPECT_FALSE(IsStackConflictConsistent(fork).ok());
  EXPECT_FALSE(IsForkConflictConsistent(join).ok());
  EXPECT_FALSE(IsJoinConflictConsistent(stack).ok());
}

TEST(SccTest, TwoLevelStackVerdicts) {
  testing::TwoLevelStack good =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/true);
  ASSERT_TRUE(IsStackSystem(good.cs));
  auto verdict = IsStackConflictConsistent(good.cs);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);

  // Locally inconsistent bottom schedule: top says s1 < s2 (input order to
  // SB) while the leaves serialize x2 < x1.
  testing::TwoLevelStack bad =
      testing::MakeTwoLevelStack(/*t1_first=*/false, /*top_conflict=*/false);
  ASSERT_TRUE(bad.cs.AddConflict(bad.s1, bad.s2).ok());
  ASSERT_TRUE(bad.cs.AddWeakOutput(bad.s1, bad.s2).ok());
  ASSERT_TRUE(bad.cs.AddWeakInput(ScheduleId(1), bad.s1, bad.s2).ok());
  // This system is deliberately invalid (Def 3.1a at SB); SCC still
  // reports the inconsistency without requiring validity.
  auto bad_verdict = IsStackConflictConsistent(bad.cs);
  ASSERT_TRUE(bad_verdict.ok());
  EXPECT_FALSE(*bad_verdict);
}

TEST(JccTest, GhostGraphRelatesCrossScheduleRoots) {
  // Join: two top schedules, shared bottom.  The bottom serializes T1's
  // child before T2's child.
  analysis::CompositeSystemBuilder b;
  ScheduleId sa = b.Schedule("SA");
  ScheduleId sb = b.Schedule("SB");
  ScheduleId sj = b.Schedule("SJ");
  NodeId t1 = b.Root(sa, "T1");
  NodeId t2 = b.Root(sb, "T2");
  NodeId u1 = b.Sub(t1, sj, "u1");
  NodeId u2 = b.Sub(t2, sj, "u2");
  NodeId x1 = b.Leaf(u1, "x1");
  NodeId x2 = b.Leaf(u2, "x2");
  b.Conflict(x1, x2);
  b.WeakOut(x1, x2);
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(IsJoinSystem(cs));
  Relation ghost = JoinGhostGraph(cs);
  EXPECT_TRUE(ghost.Contains(t1, t2));
  EXPECT_FALSE(ghost.Contains(t2, t1));
  auto verdict = IsJoinConflictConsistent(cs);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
}

TEST(JccTest, GhostCycleRejected) {
  // Two joins in opposite directions through two shared bottom
  // subtransactions each: T1 before T2 via one pair, T2 before T1 via the
  // other.
  analysis::CompositeSystemBuilder b;
  ScheduleId sa = b.Schedule("SA");
  ScheduleId sb = b.Schedule("SB");
  ScheduleId sj = b.Schedule("SJ");
  NodeId t1 = b.Root(sa, "T1");
  NodeId t2 = b.Root(sb, "T2");
  NodeId u1a = b.Sub(t1, sj, "u1a");
  NodeId u1b = b.Sub(t1, sj, "u1b");
  NodeId u2a = b.Sub(t2, sj, "u2a");
  NodeId u2b = b.Sub(t2, sj, "u2b");
  NodeId x1a = b.Leaf(u1a, "x1a");
  NodeId x1b = b.Leaf(u1b, "x1b");
  NodeId x2a = b.Leaf(u2a, "x2a");
  NodeId x2b = b.Leaf(u2b, "x2b");
  b.Conflict(x1a, x2a);
  b.WeakOut(x1a, x2a);  // T1 -> T2
  b.Conflict(x2b, x1b);
  b.WeakOut(x2b, x1b);  // T2 -> T1
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(IsJoinSystem(cs));
  auto verdict = IsJoinConflictConsistent(cs);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(*verdict);
}

TEST(BaselinesTest, FlatCsrSeesOnlyLeafConflicts) {
  // Cross anomaly with a commuting top: Comp-C accepts (forgetting), flat
  // CSR rejects — the hierarchy gap of experiment E4.
  CompositeSystem cs = testing::MakeCrossAnomaly(/*top_conflicts=*/false);
  EXPECT_FALSE(IsFlatConflictSerializable(cs));
  EXPECT_FALSE(IsLevelByLevelSerializable(cs));
  EXPECT_FALSE(IsOrderPreservingSerializable(cs));
  auto verdicts = EvaluateAllCriteria(cs);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_TRUE(verdicts->comp_c);
  EXPECT_FALSE(verdicts->flat_csr);
  EXPECT_FALSE(verdicts->llsr);
  EXPECT_FALSE(verdicts->opsr);
}

TEST(BaselinesTest, AgreeOnCleanExecutions) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/true);
  auto verdicts = EvaluateAllCriteria(stack.cs);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_TRUE(verdicts->comp_c);
  EXPECT_TRUE(verdicts->flat_csr);
  EXPECT_TRUE(verdicts->llsr);
  EXPECT_TRUE(verdicts->opsr);
  ASSERT_TRUE(verdicts->scc.has_value());
  EXPECT_TRUE(*verdicts->scc);
  // A two-level stack is also the degenerate one-branch fork and one-top
  // join, so those criteria apply too and must agree (Theorems 2-4).
  ASSERT_TRUE(verdicts->fcc.has_value());
  EXPECT_TRUE(*verdicts->fcc);
  ASSERT_TRUE(verdicts->jcc.has_value());
  EXPECT_TRUE(*verdicts->jcc);
  EXPECT_NE(verdicts->ToString().find("comp_c=yes"), std::string::npos);
}

TEST(BaselinesTest, PulledUpOrderGraphLiftsToAncestors) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  Relation base;
  base.Add(stack.x1, stack.x2);
  graph::Digraph g = PulledUpOrderGraph(stack.cs, base);
  EXPECT_TRUE(g.HasEdge(stack.x1.index(), stack.x2.index()));
  EXPECT_TRUE(g.HasEdge(stack.s1.index(), stack.s2.index()));
  EXPECT_TRUE(g.HasEdge(stack.t1.index(), stack.t2.index()));
}

}  // namespace
}  // namespace comptx
