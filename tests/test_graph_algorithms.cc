#include <gtest/gtest.h>

#include <algorithm>

#include "graph/cycle_finder.h"
#include "graph/dot.h"
#include "graph/quotient.h"
#include "graph/tarjan_scc.h"
#include "graph/topological_sort.h"
#include "graph/transitive_closure.h"
#include "util/rng.h"

namespace comptx::graph {
namespace {

Digraph Chain(size_t n) {
  Digraph g(n);
  for (NodeIndex v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  return g;
}

TEST(CycleFinderTest, AcyclicChain) {
  EXPECT_TRUE(IsAcyclic(Chain(5)));
  EXPECT_FALSE(FindCycle(Chain(5)).has_value());
}

TEST(CycleFinderTest, FindsSimpleCycle) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  auto cycle = FindCycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 3u);
  // Consecutive members (cyclically) must be edges.
  for (size_t i = 0; i < cycle->size(); ++i) {
    EXPECT_TRUE(g.HasEdge((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]));
  }
}

TEST(CycleFinderTest, SelfLoopIsOneNodeCycle) {
  Digraph g(2);
  g.AddEdge(1, 1);
  auto cycle = FindCycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 1u);
  EXPECT_EQ(cycle->front(), 1u);
}

TEST(CycleFinderTest, CycleInLaterComponent) {
  Digraph g(5);
  g.AddEdge(0, 1);  // acyclic part
  g.AddEdge(3, 4);
  g.AddEdge(4, 3);  // 2-cycle
  auto cycle = FindCycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 2u);
}

TEST(TarjanTest, ChainHasTrivialComponents) {
  SccResult scc = TarjanScc(Chain(4));
  EXPECT_EQ(scc.ComponentCount(), 4u);
  EXPECT_TRUE(scc.AllTrivial(Chain(4)));
}

TEST(TarjanTest, DetectsComponents) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // {0,1}
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 2);  // {2,3}
  SccResult scc = TarjanScc(g);
  EXPECT_EQ(scc.ComponentCount(), 3u);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[2], scc.component_of[3]);
  EXPECT_NE(scc.component_of[0], scc.component_of[2]);
  // Components come out in reverse topological order: the sink component
  // {2,3} precedes {0,1}.
  EXPECT_LT(scc.component_of[2], scc.component_of[0]);
}

TEST(TopologicalSortTest, RespectsEdges) {
  Digraph g(4);
  g.AddEdge(3, 1);
  g.AddEdge(1, 0);
  g.AddEdge(3, 2);
  auto order = TopologicalSort(g);
  ASSERT_TRUE(order.ok());
  std::vector<size_t> pos(4);
  for (size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[3], pos[1]);
  EXPECT_LT(pos[1], pos[0]);
  EXPECT_LT(pos[3], pos[2]);
}

TEST(TopologicalSortTest, DeterministicTieBreak) {
  Digraph g(3);  // no edges: canonical order is 0,1,2.
  auto order = TopologicalSort(g);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<NodeIndex>{0, 1, 2}));
}

TEST(TopologicalSortTest, FailsOnCycle) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_FALSE(TopologicalSort(g).ok());
  EXPECT_FALSE(LongestPathLengths(g).ok());
}

TEST(LongestPathTest, ChainLengths) {
  auto longest = LongestPathLengths(Chain(4));
  ASSERT_TRUE(longest.ok());
  EXPECT_EQ(*longest, (std::vector<uint32_t>{3, 2, 1, 0}));
}

TEST(LongestPathTest, PicksLongerBranch) {
  Digraph g(4);
  g.AddEdge(0, 1);  // short branch
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);  // long branch
  auto longest = LongestPathLengths(g);
  ASSERT_TRUE(longest.ok());
  EXPECT_EQ((*longest)[0], 2u);
}

TEST(TransitiveClosureTest, ChainReachability) {
  TransitiveClosure tc(Chain(4));
  EXPECT_TRUE(tc.Reaches(0, 3));
  EXPECT_TRUE(tc.Reaches(1, 2));
  EXPECT_FALSE(tc.Reaches(3, 0));
  EXPECT_FALSE(tc.Reaches(0, 0));  // no self-path in an acyclic chain.
}

TEST(TransitiveClosureTest, CycleReachesItself) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  TransitiveClosure tc(g);
  EXPECT_TRUE(tc.Reaches(0, 0));
  EXPECT_TRUE(tc.Reaches(1, 1));
  EXPECT_TRUE(tc.Reaches(0, 2));
  EXPECT_FALSE(tc.Reaches(2, 2));
}

TEST(TransitiveClosureTest, MatchesDfsOnRandomGraphs) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.UniformInt(18);
    Digraph g(n);
    const size_t edges = rng.UniformInt(n * 2 + 1);
    for (size_t e = 0; e < edges; ++e) {
      g.AddEdge(NodeIndex(rng.UniformInt(n)), NodeIndex(rng.UniformInt(n)));
    }
    TransitiveClosure tc(g);
    // Reference: DFS from each node.
    for (NodeIndex s = 0; s < n; ++s) {
      std::vector<bool> reach(n, false);
      std::vector<NodeIndex> stack = {s};
      bool first = true;
      std::vector<bool> seen(n, false);
      while (!stack.empty()) {
        NodeIndex v = stack.back();
        stack.pop_back();
        for (NodeIndex w : g.OutNeighbors(v)) {
          reach[w] = true;
          if (!seen[w]) {
            seen[w] = true;
            stack.push_back(w);
          }
        }
        first = false;
      }
      (void)first;
      for (NodeIndex t = 0; t < n; ++t) {
        EXPECT_EQ(tc.Reaches(s, t), reach[t])
            << "trial " << trial << " " << s << "->" << t;
      }
    }
  }
}

TEST(QuotientTest, CollapsesBlocks) {
  Digraph g(4);
  g.AddEdge(0, 1);  // intra-block (dropped)
  g.AddEdge(1, 2);  // cross-block
  g.AddEdge(3, 0);  // cross-block
  std::vector<uint32_t> block = {0, 0, 1, 1};
  Digraph q = QuotientGraph(g, block, 2);
  EXPECT_EQ(q.NodeCount(), 2u);
  EXPECT_TRUE(q.HasEdge(0, 1));
  EXPECT_TRUE(q.HasEdge(1, 0));
  EXPECT_FALSE(q.HasEdge(0, 0));
}

TEST(InducedSubgraphTest, KeepsInternalEdges) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 3);
  g.AddEdge(0, 2);
  Digraph sub = InducedSubgraph(g, {0, 1, 3});
  EXPECT_EQ(sub.NodeCount(), 3u);
  EXPECT_TRUE(sub.HasEdge(0, 1));  // 0->1
  EXPECT_TRUE(sub.HasEdge(1, 2));  // 1->3 re-indexed
  EXPECT_EQ(sub.EdgeCount(), 2u);
}

TEST(DotTest, RendersNodesAndEdges) {
  Digraph g(2);
  g.AddEdge(0, 1);
  std::string dot = ToDot(g, {"alpha", "beta"});
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(DotTest, EscapesQuotes) {
  Digraph g(1);
  std::string dot = ToDot(g, {"say \"hi\""});
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

}  // namespace
}  // namespace comptx::graph
