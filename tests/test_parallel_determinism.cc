// Thread-count invariance of the reduction pipeline: every parallel stage
// must merge its shards so that verdicts, failure witnesses, serial
// witnesses, and every front relation come out bit-identical whether the
// global pool runs 1 thread or several.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/figures.h"
#include "analysis/sweep.h"
#include "core/correctness.h"
#include "core/reduction.h"
#include "util/thread_pool.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

/// Restores the global pool to 1 thread when a test scope ends, so test
/// order never leaks thread counts across cases.
class GlobalThreadsGuard {
 public:
  ~GlobalThreadsGuard() { ThreadPool::SetGlobalThreads(1); }
};

/// Everything observable about one reduction, flattened for comparison.
struct ReductionFingerprint {
  bool ok = false;
  std::string status_message;
  bool comp_c = false;
  uint32_t order = 0;
  std::vector<std::pair<NodeId, NodeId>> observed;
  std::vector<std::pair<NodeId, NodeId>> weak_input;
  std::vector<std::pair<NodeId, NodeId>> strong_input;
  std::vector<std::vector<NodeId>> front_nodes;
  uint32_t failure_level = 0;
  int failure_step = -1;
  std::vector<NodeId> witness_nodes;
  std::string witness_description;
  std::vector<NodeId> serial_order;

  bool operator==(const ReductionFingerprint&) const = default;
};

ReductionFingerprint Fingerprint(const CompositeSystem& cs) {
  ReductionFingerprint fp;
  ReductionOptions options;
  options.keep_fronts = true;
  auto result = CheckCompC(cs, options);
  fp.ok = result.ok();
  if (!result.ok()) {
    fp.status_message = result.status().ToString();
    return fp;
  }
  fp.comp_c = result->correct;
  fp.order = result->order;
  fp.serial_order = result->serial_order;
  for (const Front& front : result->reduction.fronts) {
    fp.front_nodes.push_back(front.nodes);
    for (const auto& [a, b] : front.observed.Pairs()) {
      fp.observed.emplace_back(a, b);
    }
    for (const auto& [a, b] : front.weak_input.Pairs()) {
      fp.weak_input.emplace_back(a, b);
    }
    for (const auto& [a, b] : front.strong_input.Pairs()) {
      fp.strong_input.emplace_back(a, b);
    }
  }
  if (result->failure.has_value()) {
    fp.failure_level = result->failure->level;
    fp.failure_step = static_cast<int>(result->failure->step);
    fp.witness_nodes = result->failure->witness.nodes;
    fp.witness_description = result->failure->witness.description;
  }
  return fp;
}

void ExpectThreadCountInvariant(const CompositeSystem& cs,
                                const std::string& label) {
  GlobalThreadsGuard guard;
  ThreadPool::SetGlobalThreads(1);
  const ReductionFingerprint serial = Fingerprint(cs);
  for (size_t threads : {2ul, 4ul, 7ul}) {
    ThreadPool::SetGlobalThreads(threads);
    const ReductionFingerprint parallel = Fingerprint(cs);
    ASSERT_EQ(serial, parallel) << label << " diverges at " << threads
                                << " threads";
  }
}

TEST(ParallelDeterminism, PaperFigures) {
  ExpectThreadCountInvariant(analysis::MakeFigure2().system, "figure 2");
  ExpectThreadCountInvariant(analysis::MakeFigure3().system, "figure 3");
  ExpectThreadCountInvariant(analysis::MakeFigure4().system, "figure 4");
}

TEST(ParallelDeterminism, RandomWorkloadsAcrossTopologies) {
  for (workload::TopologyKind kind :
       {workload::TopologyKind::kStack, workload::TopologyKind::kFork,
        workload::TopologyKind::kJoin, workload::TopologyKind::kLayeredDag}) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      workload::WorkloadSpec spec;
      spec.topology.kind = kind;
      spec.topology.depth = 3;
      spec.topology.branches = 2;
      spec.topology.roots = 4;
      spec.execution.conflict_prob = 0.25;
      spec.execution.disorder_prob = seed % 2 == 0 ? 0.1 : 0.0;
      auto cs = workload::GenerateSystem(spec, 9000 + seed);
      ASSERT_TRUE(cs.ok()) << cs.status().ToString();
      ExpectThreadCountInvariant(
          *cs, std::string(workload::TopologyKindToString(kind)) + " seed " +
                   std::to_string(seed));
    }
  }
}

TEST(ParallelDeterminism, SweepMatchesSerialLoop) {
  GlobalThreadsGuard guard;
  std::vector<CompositeSystem> systems;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::WorkloadSpec spec;
    spec.topology.kind = workload::TopologyKind::kLayeredDag;
    spec.topology.depth = 3;
    spec.topology.branches = 2;
    spec.topology.roots = 3;
    spec.execution.conflict_prob = 0.3;
    auto cs = workload::GenerateSystem(spec, 4200 + seed);
    ASSERT_TRUE(cs.ok());
    systems.push_back(*std::move(cs));
  }
  std::vector<const CompositeSystem*> pointers;
  for (const CompositeSystem& cs : systems) pointers.push_back(&cs);

  ThreadPool::SetGlobalThreads(1);
  const std::vector<analysis::SweepVerdict> serial =
      analysis::SweepCompC(pointers);
  ThreadPool::SetGlobalThreads(4);
  const std::vector<analysis::SweepVerdict> parallel =
      analysis::SweepCompC(pointers);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].ok, parallel[i].ok) << i;
    ASSERT_EQ(serial[i].comp_c, parallel[i].comp_c) << i;
    ASSERT_EQ(serial[i].order, parallel[i].order) << i;
    // And both match a direct CheckCompC call.
    auto direct = CheckCompC(*pointers[i]);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(serial[i].comp_c, direct->correct) << i;
  }
}

TEST(ParallelDeterminism, BatchPrefixVerdictsMatchPerPrefixChecks) {
  GlobalThreadsGuard guard;
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = 4;
  spec.execution.conflict_prob = 0.25;
  auto cs = workload::GenerateSystem(spec, 31337);
  ASSERT_TRUE(cs.ok());
  auto text = workload::SaveTrace(*cs);
  ASSERT_TRUE(text.ok());
  auto events = workload::ParseTraceEvents(*text);
  ASSERT_TRUE(events.ok());

  // Reference: rebuild and check every prefix serially.
  std::vector<bool> expected;
  {
    CompositeSystem mirror;
    ReductionOptions options;
    options.validate = false;
    options.keep_fronts = false;
    for (const workload::TraceEvent& event : *events) {
      ASSERT_TRUE(workload::ApplyTraceEvent(mirror, event).ok());
      auto result = CheckCompC(mirror, options);
      ASSERT_TRUE(result.ok());
      expected.push_back(result->correct);
    }
  }
  for (size_t threads : {1ul, 4ul}) {
    ThreadPool::SetGlobalThreads(threads);
    auto verdicts = analysis::BatchPrefixVerdicts(*events);
    ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();
    ASSERT_EQ(*verdicts, expected) << threads << " threads";
  }
}

}  // namespace
}  // namespace comptx
