#include "analysis/models.h"

#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/serial_front.h"
#include "criteria/csr.h"
#include "criteria/llsr.h"
#include "criteria/conflict_consistency.h"
#include "criteria/oracle.h"

namespace comptx {
namespace {

using analysis::MakeDistributedTransactionModel;
using analysis::MakeFederatedModel;
using analysis::MakeSagaModel;
using analysis::ModelSystem;

TEST(SagaModelTest, AllVariantsValidate) {
  for (bool interleaved : {false, true}) {
    ModelSystem model = MakeSagaModel(3, 3, interleaved);
    EXPECT_TRUE(model.system.Validate().ok())
        << model.title << ": " << model.system.Validate().ToString();
  }
}

TEST(SagaModelTest, BackToBackAcceptedByEveryone) {
  ModelSystem model = MakeSagaModel(2, 3, /*interleaved=*/false);
  EXPECT_TRUE(IsCompC(model.system));
  EXPECT_TRUE(criteria::IsFlatConflictSerializable(model.system));
}

TEST(SagaModelTest, InterleavingIsTheSagaRelaxation) {
  // The defining property: flat serializability rejects the overtaking
  // interleaving, Comp-C accepts it because the saga manager vouches the
  // steps commute (forgetting).
  ModelSystem model = MakeSagaModel(2, 3, /*interleaved=*/true);
  EXPECT_FALSE(criteria::IsFlatConflictSerializable(model.system));
  EXPECT_FALSE(criteria::IsLevelByLevelSerializable(model.system));
  EXPECT_TRUE(IsCompC(model.system));
  // The independent oracle agrees the interleaving is sound.
  auto oracle = criteria::HierarchicalSerializabilityOracle(model.system);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(*oracle);
}

TEST(SagaModelTest, WithoutForgettingTheRelaxationDisappears) {
  ModelSystem model = MakeSagaModel(2, 3, /*interleaved=*/true);
  ReductionOptions options;
  options.forgetting = false;
  auto result = CheckCompC(model.system, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->correct);
}

TEST(SagaModelTest, ScalesWithSagasAndSteps) {
  for (uint32_t sagas : {2u, 4u}) {
    for (uint32_t steps : {2u, 5u}) {
      ModelSystem model = MakeSagaModel(sagas, steps, /*interleaved=*/true);
      ASSERT_TRUE(model.system.Validate().ok()) << model.title;
      EXPECT_TRUE(IsCompC(model.system)) << model.title;
    }
  }
}

TEST(FederatedModelTest, ConsistentSitesAccepted) {
  ModelSystem model = MakeFederatedModel(3, /*consistent_sites=*/true);
  ASSERT_TRUE(model.system.Validate().ok())
      << model.system.Validate().ToString();
  auto result = CheckCompC(model.system);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->correct);
  // The serial witness interleaves the locals consistently: G1 first.
  ASSERT_FALSE(result->serial_order.empty());
  EXPECT_EQ(model.system.node(result->serial_order.front()).name, "G1");
}

TEST(FederatedModelTest, InconsistentSitesRejected) {
  ModelSystem model = MakeFederatedModel(3, /*consistent_sites=*/false);
  ASSERT_TRUE(model.system.Validate().ok());
  auto result = CheckCompC(model.system);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->correct);
  ASSERT_TRUE(result->failure.has_value());
  // Every site alone is perfectly serializable — the anomaly is indirect.
  for (uint32_t s = 0; s < model.system.ScheduleCount(); ++s) {
    EXPECT_TRUE(
        criteria::IsScheduleConflictSerializable(model.system, ScheduleId(s)));
  }
}

TEST(FederatedModelTest, TwoSitesSuffice) {
  EXPECT_TRUE(IsCompC(MakeFederatedModel(2, true).system));
  EXPECT_FALSE(IsCompC(MakeFederatedModel(2, false).system));
}

TEST(DistributedModelTest, AlwaysCompCWithLockStepWitness) {
  ModelSystem model = MakeDistributedTransactionModel(3, 2);
  ASSERT_TRUE(model.system.Validate().ok())
      << model.system.Validate().ToString();
  auto result = CheckCompC(model.system);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->correct);
  // The witness must be the lock-step order T1, T2, T3.
  ASSERT_EQ(result->serial_order.size(), 3u);
  EXPECT_EQ(model.system.node(result->serial_order[0]).name, "T1");
  EXPECT_EQ(model.system.node(result->serial_order[1]).name, "T2");
  EXPECT_EQ(model.system.node(result->serial_order[2]).name, "T3");
  // Strong orders make the final front itself serial (Def 17).
  EXPECT_TRUE(IsSerialFront(result->reduction.FinalFront()));
}

TEST(DistributedModelTest, VariousShapes) {
  for (uint32_t txns : {2u, 4u}) {
    for (uint32_t sites : {1u, 3u}) {
      ModelSystem model = MakeDistributedTransactionModel(txns, sites);
      ASSERT_TRUE(model.system.Validate().ok()) << model.title;
      EXPECT_TRUE(IsCompC(model.system)) << model.title;
    }
  }
}

}  // namespace
}  // namespace comptx
