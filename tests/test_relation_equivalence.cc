// Randomized equivalence suite for the dense relation engine: every
// operation of Relation / SymmetricPairSet is checked against a
// straightforward map<uint32_t, set<uint32_t>> reference model, including
// the iteration-order contract (sources ascending, targets ascending) that
// witness reproducibility depends on.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/relation.h"
#include "util/rng.h"

namespace comptx {
namespace {

/// The reference model: exactly the layout the engine replaced.
class MapRelation {
 public:
  bool Add(uint32_t a, uint32_t b) { return rows_[a].insert(b).second; }

  bool Contains(uint32_t a, uint32_t b) const {
    auto it = rows_.find(a);
    return it != rows_.end() && it->second.count(b) > 0;
  }

  size_t PairCount() const {
    size_t n = 0;
    for (const auto& [a, row] : rows_) n += row.size();
    return n;
  }

  std::vector<std::pair<uint32_t, uint32_t>> Pairs() const {
    std::vector<std::pair<uint32_t, uint32_t>> out;
    for (const auto& [a, row] : rows_) {
      for (uint32_t b : row) out.emplace_back(a, b);
    }
    return out;
  }

  std::vector<uint32_t> Successors(uint32_t a) const {
    auto it = rows_.find(a);
    if (it == rows_.end()) return {};
    return {it->second.begin(), it->second.end()};
  }

 private:
  std::map<uint32_t, std::set<uint32_t>> rows_;
};

std::vector<std::pair<uint32_t, uint32_t>> RawPairs(const Relation& rel) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  rel.ForEach(
      [&](NodeId a, NodeId b) { out.emplace_back(a.index(), b.index()); });
  return out;
}

TEST(RelationEquivalence, RandomOpsMatchReferenceModel) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(0xD15EA5E + seed);
    Relation dense;
    MapRelation reference;
    const uint32_t id_space =
        static_cast<uint32_t>(rng.UniformRange(5, 2000));
    const int ops = 800;
    for (int i = 0; i < ops; ++i) {
      const uint32_t a = static_cast<uint32_t>(rng.UniformInt(id_space));
      const uint32_t b = static_cast<uint32_t>(rng.UniformInt(id_space));
      switch (rng.UniformInt(3)) {
        case 0:
        case 1: {
          const bool added_dense = dense.Add(NodeId(a), NodeId(b));
          const bool added_ref = reference.Add(a, b);
          ASSERT_EQ(added_dense, added_ref) << "seed " << seed << " op " << i;
          break;
        }
        default:
          ASSERT_EQ(dense.Contains(NodeId(a), NodeId(b)),
                    reference.Contains(a, b))
              << "seed " << seed << " op " << i;
      }
    }
    ASSERT_EQ(dense.PairCount(), reference.PairCount()) << "seed " << seed;
    // The full iteration order must equal the reference's map/set order.
    ASSERT_EQ(RawPairs(dense), reference.Pairs()) << "seed " << seed;
    // Row accessors agree with the reference per source.
    for (uint32_t a = 0; a < id_space; ++a) {
      const std::vector<uint32_t> expect = reference.Successors(a);
      const std::span<const uint32_t> ids = dense.SuccessorIds(NodeId(a));
      ASSERT_EQ(std::vector<uint32_t>(ids.begin(), ids.end()), expect);
      std::vector<uint32_t> via_foreach;
      dense.ForEachSuccessor(
          NodeId(a), [&](NodeId b) { via_foreach.push_back(b.index()); });
      ASSERT_EQ(via_foreach, expect);
      const std::vector<NodeId> copies = dense.Successors(NodeId(a));
      ASSERT_EQ(copies.size(), expect.size());
      for (size_t k = 0; k < copies.size(); ++k) {
        ASSERT_EQ(copies[k].index(), expect[k]);
      }
    }
    // Row sharding accessors cover exactly the pairs, in the same order.
    std::vector<std::pair<uint32_t, uint32_t>> via_rows;
    for (size_t i = 0; i < dense.SourceCount(); ++i) {
      for (uint32_t to : dense.SuccessorsAt(i)) {
        via_rows.emplace_back(dense.SourceAt(i).index(), to);
      }
    }
    ASSERT_EQ(via_rows, reference.Pairs()) << "seed " << seed;
  }
}

TEST(RelationEquivalence, AddAllMatchesPerPairAdds) {
  Rng rng(77);
  for (int round = 0; round < 30; ++round) {
    Relation bulk;
    Relation single;
    for (int row = 0; row < 10; ++row) {
      const uint32_t src = static_cast<uint32_t>(rng.UniformInt(50));
      std::vector<uint32_t> targets;
      for (int k = 0; k < 20; ++k) {
        targets.push_back(static_cast<uint32_t>(rng.UniformInt(300)));
      }
      bulk.AddAll(NodeId(src), targets);
      for (uint32_t t : targets) single.Add(NodeId(src), NodeId(t));
    }
    ASSERT_TRUE(bulk == single);
    ASSERT_EQ(bulk.Pairs(), single.Pairs());
  }
}

TEST(RelationEquivalence, UnionRestrictEqualityAgree) {
  Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    Relation r1;
    Relation r2;
    MapRelation m1;
    MapRelation m2;
    for (int i = 0; i < 200; ++i) {
      const uint32_t a = static_cast<uint32_t>(rng.UniformInt(100));
      const uint32_t b = static_cast<uint32_t>(rng.UniformInt(100));
      if (rng.Bernoulli(0.5)) {
        r1.Add(NodeId(a), NodeId(b));
        m1.Add(a, b);
      } else {
        r2.Add(NodeId(a), NodeId(b));
        m2.Add(a, b);
      }
    }
    Relation merged = r1;
    merged.UnionWith(r2);
    MapRelation merged_ref = m1;
    for (const auto& [a, b] : m2.Pairs()) merged_ref.Add(a, b);
    ASSERT_EQ(RawPairs(merged), merged_ref.Pairs());
    ASSERT_TRUE(merged.ContainsAllOf(r1));
    ASSERT_TRUE(merged.ContainsAllOf(r2));
    ASSERT_EQ(r1.ContainsAllOf(merged), RawPairs(r1) == RawPairs(merged));

    const Relation even = merged.RestrictedTo(
        [](NodeId id) { return id.index() % 2 == 0; });
    std::vector<std::pair<uint32_t, uint32_t>> expect;
    for (const auto& [a, b] : merged_ref.Pairs()) {
      if (a % 2 == 0 && b % 2 == 0) expect.emplace_back(a, b);
    }
    ASSERT_EQ(RawPairs(even), expect);

    Relation copy = merged;
    ASSERT_TRUE(copy == merged);
    copy.Add(NodeId(3001), NodeId(7));
    ASSERT_FALSE(copy == merged);
  }
}

TEST(SymmetricPairSetEquivalence, RandomOpsMatchReferenceModel) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(0xBEEF + seed);
    SymmetricPairSet dense;
    MapRelation reference;  // stores both directions, like the old layout
    for (int i = 0; i < 500; ++i) {
      uint32_t a = static_cast<uint32_t>(rng.UniformInt(200));
      uint32_t b = static_cast<uint32_t>(rng.UniformInt(200));
      if (a == b) continue;
      if (rng.Bernoulli(0.6)) {
        const bool added = dense.Add(NodeId(a), NodeId(b));
        // The reference stores both directions, so (a, b) was present iff
        // the unordered pair was.
        const bool was_new = reference.Add(a, b);
        reference.Add(b, a);
        ASSERT_EQ(added, was_new) << "seed " << seed << " op " << i;
        ASSERT_TRUE(dense.Contains(NodeId(a), NodeId(b)));
        ASSERT_TRUE(dense.Contains(NodeId(b), NodeId(a)));
      } else {
        ASSERT_EQ(dense.Contains(NodeId(a), NodeId(b)),
                  reference.Contains(a, b))
            << "seed " << seed << " op " << i;
      }
    }
    // ForEach fires each unordered pair exactly once, a < b, sorted.
    std::vector<std::pair<uint32_t, uint32_t>> fired;
    dense.ForEach([&](NodeId a, NodeId b) {
      ASSERT_LT(a.index(), b.index());
      fired.emplace_back(a.index(), b.index());
    });
    std::vector<std::pair<uint32_t, uint32_t>> expect;
    for (const auto& [a, b] : reference.Pairs()) {
      if (a < b) expect.emplace_back(a, b);
    }
    ASSERT_EQ(fired, expect) << "seed " << seed;
    ASSERT_EQ(dense.PairCount(), expect.size());
    // PeerIds mirrors the reference rows.
    for (uint32_t a = 0; a < 200; ++a) {
      const std::span<const uint32_t> peers = dense.PeerIds(NodeId(a));
      ASSERT_EQ(std::vector<uint32_t>(peers.begin(), peers.end()),
                reference.Successors(a));
    }
  }
}

TEST(SymmetricPairSetEquivalence, UnionAndEquality) {
  SymmetricPairSet s1;
  s1.Add(NodeId(1), NodeId(5));
  s1.Add(NodeId(9), NodeId(2));
  SymmetricPairSet s2;
  s2.Add(NodeId(5), NodeId(1));  // same unordered pair, reversed
  s2.Add(NodeId(3), NodeId(4));
  SymmetricPairSet merged = s1;
  merged.UnionWith(s2);
  EXPECT_EQ(merged.PairCount(), 3u);
  EXPECT_TRUE(merged.Contains(NodeId(4), NodeId(3)));
  SymmetricPairSet expected;
  expected.Add(NodeId(2), NodeId(9));
  expected.Add(NodeId(1), NodeId(5));
  expected.Add(NodeId(4), NodeId(3));
  EXPECT_TRUE(merged == expected);
}

}  // namespace
}  // namespace comptx
