#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace comptx::graph {
namespace {

TEST(DigraphTest, AddNodesAndEdges) {
  Digraph g(3);
  EXPECT_EQ(g.NodeCount(), 3u);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(0, 1));  // deduplicated
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST(DigraphTest, AddNodeGrows) {
  Digraph g;
  NodeIndex a = g.AddNode();
  NodeIndex b = g.AddNode();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  g.AddEdge(a, b);
  EXPECT_EQ(g.OutNeighbors(a).size(), 1u);
  EXPECT_EQ(g.InNeighbors(b).size(), 1u);
}

TEST(DigraphTest, SelfLoops) {
  Digraph g(2);
  EXPECT_FALSE(g.HasSelfLoop());
  g.AddEdge(1, 1);
  EXPECT_TRUE(g.HasSelfLoop());
}

TEST(DigraphTest, Reversed) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Digraph r = g.Reversed();
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 1));
  EXPECT_FALSE(r.HasEdge(0, 1));
  EXPECT_EQ(r.EdgeCount(), 2u);
}

TEST(DigraphTest, UnionWith) {
  Digraph a(3);
  a.AddEdge(0, 1);
  Digraph b(3);
  b.AddEdge(1, 2);
  b.AddEdge(0, 1);
  a.UnionWith(b);
  EXPECT_EQ(a.EdgeCount(), 2u);
  EXPECT_TRUE(a.HasEdge(1, 2));
}

}  // namespace
}  // namespace comptx::graph
