// Tests for online::IncrementalCycleGraph (Pearce-Kelly dynamic
// acyclicity): cross-checks against the batch cycle finder after every
// insertion, and exercises the witness contract, node removal and the
// maintained topological order.

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "graph/cycle_finder.h"
#include "graph/digraph.h"
#include "online/incremental_cycles.h"
#include "util/rng.h"

namespace comptx::online {
namespace {

TEST(IncrementalCycleGraph, EmptyGraphIsAcyclic) {
  IncrementalCycleGraph g;
  EXPECT_FALSE(g.has_cycle());
  EXPECT_EQ(g.NodeCount(), 0u);
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(IncrementalCycleGraph, ChainStaysAcyclic) {
  IncrementalCycleGraph g;
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(g.AddEdge(NodeId(i), NodeId(i + 1)));
  }
  EXPECT_FALSE(g.has_cycle());
  EXPECT_EQ(g.EdgeCount(), 10u);
}

TEST(IncrementalCycleGraph, DuplicateEdgeIsIdempotent) {
  IncrementalCycleGraph g;
  EXPECT_TRUE(g.AddEdge(NodeId(0), NodeId(1)));
  EXPECT_TRUE(g.AddEdge(NodeId(0), NodeId(1)));
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST(IncrementalCycleGraph, SelfLoopIsOneNodeCycle) {
  IncrementalCycleGraph g;
  EXPECT_FALSE(g.AddEdge(NodeId(3), NodeId(3)));
  EXPECT_TRUE(g.has_cycle());
  ASSERT_EQ(g.cycle_witness().size(), 1u);
  EXPECT_EQ(g.cycle_witness()[0], NodeId(3));
}

TEST(IncrementalCycleGraph, TwoCycleDetected) {
  IncrementalCycleGraph g;
  EXPECT_TRUE(g.AddEdge(NodeId(0), NodeId(1)));
  EXPECT_FALSE(g.AddEdge(NodeId(1), NodeId(0)));
  EXPECT_TRUE(g.has_cycle());
}

TEST(IncrementalCycleGraph, BackEdgeClosingLongPathDetected) {
  IncrementalCycleGraph g;
  for (uint32_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(g.AddEdge(NodeId(i), NodeId(i + 1)));
  }
  EXPECT_FALSE(g.AddEdge(NodeId(20), NodeId(0)));
  EXPECT_TRUE(g.has_cycle());
}

/// The witness must be a real cycle of the inserted edges: every
/// consecutive pair an edge, and the last node closing back to the first.
TEST(IncrementalCycleGraph, WitnessIsARealCycle) {
  IncrementalCycleGraph g;
  // Diamond with a back edge: 0->1->3, 0->2->3, then 3->0 closes.
  ASSERT_TRUE(g.AddEdge(NodeId(0), NodeId(1)));
  ASSERT_TRUE(g.AddEdge(NodeId(1), NodeId(3)));
  ASSERT_TRUE(g.AddEdge(NodeId(0), NodeId(2)));
  ASSERT_TRUE(g.AddEdge(NodeId(2), NodeId(3)));
  ASSERT_FALSE(g.AddEdge(NodeId(3), NodeId(0)));
  const std::vector<NodeId>& w = g.cycle_witness();
  ASSERT_GE(w.size(), 2u);
  for (size_t i = 0; i + 1 < w.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(w[i], w[i + 1]))
        << "witness edge " << w[i] << " -> " << w[i + 1] << " missing";
  }
  EXPECT_TRUE(g.HasEdge(w.back(), w.front()));
}

TEST(IncrementalCycleGraph, FailureIsSticky) {
  IncrementalCycleGraph g;
  ASSERT_TRUE(g.AddEdge(NodeId(0), NodeId(1)));
  ASSERT_FALSE(g.AddEdge(NodeId(1), NodeId(0)));
  // Later edges are still recorded (adjacency stays complete for pruning)
  // but the verdict stays failed.
  EXPECT_FALSE(g.AddEdge(NodeId(5), NodeId(6)));
  EXPECT_TRUE(g.has_cycle());
  EXPECT_TRUE(g.HasEdge(NodeId(5), NodeId(6)));
}

/// On an acyclic graph the maintained order keys are a topological order:
/// every edge goes from a smaller key to a larger one.
TEST(IncrementalCycleGraph, OrderKeysAreTopological) {
  Rng rng(7);
  IncrementalCycleGraph g;
  std::vector<std::pair<NodeId, NodeId>> edges;
  // Random DAG edges i -> j with i < j, inserted in shuffled order so the
  // structure reorders constantly.
  for (uint32_t i = 0; i < 30; ++i) {
    for (uint32_t j = i + 1; j < 30; ++j) {
      if (rng.Bernoulli(0.12)) edges.emplace_back(NodeId(i), NodeId(j));
    }
  }
  rng.Shuffle(edges);
  for (const auto& [a, b] : edges) ASSERT_TRUE(g.AddEdge(a, b));
  EXPECT_FALSE(g.has_cycle());
  for (const auto& [a, b] : edges) {
    EXPECT_LT(g.OrderKey(a), g.OrderKey(b))
        << a << " -> " << b << " violates the maintained order";
  }
}

TEST(IncrementalCycleGraph, InDegreeAndRemoveNode) {
  IncrementalCycleGraph g;
  ASSERT_TRUE(g.AddEdge(NodeId(0), NodeId(2)));
  ASSERT_TRUE(g.AddEdge(NodeId(1), NodeId(2)));
  ASSERT_TRUE(g.AddEdge(NodeId(2), NodeId(3)));
  EXPECT_EQ(g.InDegree(NodeId(2)), 2u);
  EXPECT_EQ(g.InDegree(NodeId(0)), 0u);
  EXPECT_EQ(g.InDegree(NodeId(99)), 0u);  // unknown node
  g.RemoveNode(NodeId(2));
  EXPECT_FALSE(g.Contains(NodeId(2)));
  EXPECT_EQ(g.InDegree(NodeId(3)), 0u);
  EXPECT_EQ(g.EdgeCount(), 0u);
  // The survivors can still take edges.
  EXPECT_TRUE(g.AddEdge(NodeId(0), NodeId(3)));
  EXPECT_FALSE(g.has_cycle());
}

/// Randomized cross-check: after every single insertion, the incremental
/// verdict must equal batch IsAcyclic on the same edge set.  Once a cycle
/// appears the incremental graph reports failure forever (sticky), which
/// the batch check confirms stays cyclic since edges are never removed.
TEST(IncrementalCycleGraph, RandomizedAgainstBatchCycleFinder) {
  constexpr uint32_t kNodes = 24;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    Rng rng(1000 + static_cast<uint64_t>(round));
    IncrementalCycleGraph inc;
    graph::Digraph batch(kNodes);
    bool failed = false;
    const int edges = static_cast<int>(rng.UniformRange(5, 60));
    for (int e = 0; e < edges; ++e) {
      NodeId a(static_cast<uint32_t>(rng.UniformInt(kNodes)));
      NodeId b(static_cast<uint32_t>(rng.UniformInt(kNodes)));
      bool ok = inc.AddEdge(a, b);
      batch.AddEdge(a.index(), b.index());
      bool batch_acyclic = graph::IsAcyclic(batch) && !batch.HasSelfLoop();
      failed = failed || !batch_acyclic;
      ASSERT_EQ(ok, !failed)
          << "round " << round << " edge " << e << ": " << a << " -> " << b;
      ASSERT_EQ(inc.has_cycle(), failed);
    }
    // When failed, the recorded witness must be a genuine cycle.
    if (failed && !inc.cycle_witness().empty()) {
      const std::vector<NodeId>& w = inc.cycle_witness();
      for (size_t i = 0; i + 1 < w.size(); ++i) {
        ASSERT_TRUE(inc.HasEdge(w[i], w[i + 1]));
      }
      ASSERT_TRUE(inc.HasEdge(w.back(), w.front()));
    }
  }
}

/// Randomized DAG-only stress: only forward edges (never creating cycles),
/// verifying the incremental structure never reports a spurious cycle even
/// under heavy reordering, and keeps keys topological throughout.
TEST(IncrementalCycleGraph, RandomizedDagNeverFails) {
  for (int round = 0; round < 50; ++round) {
    Rng rng(77000 + static_cast<uint64_t>(round));
    constexpr uint32_t kNodes = 40;
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (uint32_t i = 0; i < kNodes; ++i) {
      for (uint32_t j = i + 1; j < kNodes; ++j) {
        if (rng.Bernoulli(0.08)) edges.emplace_back(i, j);
      }
    }
    rng.Shuffle(edges);
    IncrementalCycleGraph g;
    for (const auto& [a, b] : edges) {
      ASSERT_TRUE(g.AddEdge(NodeId(a), NodeId(b)));
      ASSERT_FALSE(g.has_cycle());
    }
    for (const auto& [a, b] : edges) {
      ASSERT_LT(g.OrderKey(NodeId(a)), g.OrderKey(NodeId(b)));
    }
  }
}

}  // namespace
}  // namespace comptx::online
