#include "core/invocation_graph.h"

#include <gtest/gtest.h>

#include "analysis/builder.h"
#include "analysis/figures.h"
#include "test_helpers.h"

namespace comptx {
namespace {

TEST(InvocationGraphTest, StackLevels) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  auto ig = BuildInvocationGraph(stack.cs);
  ASSERT_TRUE(ig.ok());
  EXPECT_EQ(ig->order, 2u);
  EXPECT_EQ(ig->schedule_level[0], 2u);  // ST
  EXPECT_EQ(ig->schedule_level[1], 1u);  // SB
  EXPECT_TRUE(ig->graph.HasEdge(0, 1));
  EXPECT_FALSE(ig->graph.HasEdge(1, 0));
  EXPECT_EQ(ig->LevelOfTransaction(stack.cs, stack.t1), 2u);
  EXPECT_EQ(ig->LevelOfTransaction(stack.cs, stack.s1), 1u);
}

TEST(InvocationGraphTest, Figure1LevelsMatchPaper) {
  analysis::PaperFigure fig = analysis::MakeFigure1();
  auto ig = BuildInvocationGraph(fig.system);
  ASSERT_TRUE(ig.ok());
  EXPECT_EQ(ig->order, 3u);
  EXPECT_EQ(ig->schedule_level[0], 3u);  // S1
  EXPECT_EQ(ig->schedule_level[1], 2u);  // S2
  EXPECT_EQ(ig->schedule_level[2], 2u);  // S3
  EXPECT_EQ(ig->schedule_level[3], 1u);  // S4
  EXPECT_EQ(ig->schedule_level[4], 1u);  // S5
}

TEST(InvocationGraphTest, DetectsIndirectRecursion) {
  // SA invokes SB (via T's child), and SB invokes SA (via U's child):
  // cycle in the invocation graph, which Def 4.6 forbids.
  CompositeSystem cs;
  ScheduleId sa = cs.AddSchedule("SA");
  ScheduleId sb = cs.AddSchedule("SB");
  auto t = cs.AddRootTransaction(sa, "T");
  ASSERT_TRUE(t.ok());
  auto u = cs.AddSubtransaction(*t, sb, "u");
  ASSERT_TRUE(u.ok());
  auto v = cs.AddSubtransaction(*u, sa, "v");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(BuildInvocationGraph(cs).ok());
  EXPECT_FALSE(cs.Validate().ok());
}

TEST(InvocationGraphTest, EmptySystem) {
  CompositeSystem cs;
  auto ig = BuildInvocationGraph(cs);
  ASSERT_TRUE(ig.ok());
  EXPECT_EQ(ig->order, 0u);
}

TEST(InvocationGraphTest, IndependentSchedulesAllLevelOne) {
  CompositeSystem cs;
  ScheduleId a = cs.AddSchedule("A");
  ScheduleId b = cs.AddSchedule("B");
  ASSERT_TRUE(cs.AddRootTransaction(a, "T1").ok());
  ASSERT_TRUE(cs.AddRootTransaction(b, "T2").ok());
  auto ig = BuildInvocationGraph(cs);
  ASSERT_TRUE(ig.ok());
  EXPECT_EQ(ig->order, 1u);
  EXPECT_EQ(ig->schedule_level[0], 1u);
  EXPECT_EQ(ig->schedule_level[1], 1u);
}

}  // namespace
}  // namespace comptx
