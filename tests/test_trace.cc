#include "workload/trace.h"

#include <gtest/gtest.h>

#include "analysis/figures.h"
#include "core/correctness.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

TEST(TraceTest, RoundTripsFigure4) {
  CompositeSystem original = analysis::MakeFigure4().system;
  auto text = workload::SaveTrace(original);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto loaded = workload::LoadTrace(*text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->NodeCount(), original.NodeCount());
  ASSERT_EQ(loaded->ScheduleCount(), original.ScheduleCount());
  EXPECT_TRUE(loaded->Validate().ok());
  // Identical behaviour after the round trip.
  EXPECT_TRUE(IsCompC(*loaded));
  auto retext = workload::SaveTrace(*loaded);
  ASSERT_TRUE(retext.ok());
  EXPECT_EQ(*text, *retext);
}

TEST(TraceTest, RoundTripsGeneratedSystems) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.execution.conflict_prob = 0.4;
  spec.execution.disorder_prob = 0.3;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto cs = workload::GenerateSystem(spec, seed);
    ASSERT_TRUE(cs.ok());
    auto text = workload::SaveTrace(*cs);
    ASSERT_TRUE(text.ok());
    auto loaded = workload::LoadTrace(*text);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(IsCompC(*cs), IsCompC(*loaded)) << "seed " << seed;
  }
}

TEST(TraceTest, RejectsMissingHeader) {
  EXPECT_FALSE(workload::LoadTrace("schedule S\nend\n").ok());
}

TEST(TraceTest, RejectsMissingEnd) {
  EXPECT_FALSE(workload::LoadTrace("comptx-trace v1\nschedule S\n").ok());
}

TEST(TraceTest, RejectsUnknownRecord) {
  auto result =
      workload::LoadTrace("comptx-trace v1\nfrobnicate 1 2\nend\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(TraceTest, RejectsBadReferences) {
  // Leaf refers to a nonexistent parent node.
  auto result = workload::LoadTrace(
      "comptx-trace v1\nschedule S\nleaf 5 x\nend\n");
  EXPECT_FALSE(result.ok());
}

TEST(TraceTest, RejectsWhitespaceNames) {
  CompositeSystem cs;
  cs.AddSchedule("has space");
  EXPECT_FALSE(workload::SaveTrace(cs).ok());
}

}  // namespace
}  // namespace comptx
