// Kill-based crash-recovery drill (ctest label `durability`): run a real
// comptx_serve with --data-dir, stream events at it, SIGKILL it at a
// randomized moment mid-load, then prove three things offline and online:
//
//   1. zero acked-event loss — every APPEND the server acknowledged is in
//      the durable state (event_seq >= the client's acked cursor);
//   2. the durable state replays to the batch oracle's verdict for the
//      durable prefix of the stream (RebuildCertifier + VerifyRecovery);
//   3. a restarted server recovers the sessions, continues the stream,
//      and ends with exactly the verdict of an uninterrupted run.
//
// Iteration count comes from COMPTX_CRASH_ITERS (default 50, the
// acceptance floor; the TSan CI job runs a reduced count).  Each
// iteration randomizes the kill delay, the fsync policy and the snapshot
// cadence, so kills land before the first append, mid-stream, between
// snapshot and compaction, and after the load finished.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/correctness.h"
#include "durability/recovery.h"
#include "online/certifier.h"
#include "service/client.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

size_t Iterations() {
  if (const char* env = std::getenv("COMPTX_CRASH_ITERS")) {
    return std::strtoul(env, nullptr, 10);
  }
  return 50;
}

fs::path Scratch() {
  static const fs::path dir = [] {
    fs::path p =
        fs::path(::testing::TempDir()) /
        StrCat("comptx_crash_", static_cast<unsigned long>(::getpid()));
    fs::create_directories(p);
    return p;
  }();
  return dir;
}

std::vector<workload::TraceEvent> GeneratedEvents(uint32_t roots,
                                                  uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.15;
  spec.execution.intra_weak_prob = 0.2;
  auto cs = workload::GenerateSystem(spec, seed);
  EXPECT_TRUE(cs.ok()) << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  auto events = workload::ParseTraceEvents(*text);
  EXPECT_TRUE(events.ok()) << events.status().ToString();
  return std::move(events).value();
}

bool BatchVerdict(const std::vector<workload::TraceEvent>& events) {
  CompositeSystem cs;
  for (const auto& event : events) {
    (void)workload::ApplyTraceEvent(cs, event);
  }
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  auto result = CheckCompC(cs, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->correct;
}

/// Forks + execs comptx_serve; returns the child pid (or -1).
pid_t SpawnServer(const std::vector<std::string>& args) {
  std::vector<std::string> argv_strings;
  argv_strings.push_back(COMPTX_SERVE_BIN);
  argv_strings.insert(argv_strings.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (auto& s : argv_strings) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    // Quiet child: the drill kills it mid-write, log spam is noise.
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

/// Waits for the --port-file to appear with a port number.
int AwaitPort(const fs::path& port_file, pid_t pid) {
  const Clock::time_point deadline = Clock::now() + std::chrono::seconds(15);
  while (Clock::now() < deadline) {
    std::ifstream in(port_file);
    int port = 0;
    if (in >> port && port > 0) return port;
    int wait_status = 0;
    if (::waitpid(pid, &wait_status, WNOHANG) == pid) return -1;  // died
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return -1;
}

struct StreamState {
  uint64_t id = 0;  // server-assigned
  std::vector<workload::TraceEvent> events;
  std::atomic<size_t> acked{0};
};

TEST(CrashRecoveryDrill, RandomizedKillsLoseNothingAndReplayExactly) {
  const size_t iterations = Iterations();
  size_t kills_before_finish = 0;
  for (size_t iter = 0; iter < iterations; ++iter) {
    SCOPED_TRACE(StrCat("iteration ", iter));
    Rng rng(0xC0FFEEull * (iter + 1));
    const fs::path dir = Scratch() / StrCat("iter_", iter);
    const fs::path data = dir / "data";
    const fs::path port_file = dir / "port.txt";
    fs::create_directories(dir);

    // Randomized drill shape.  The load finishes in a few milliseconds
    // over loopback, so most kill delays are tiny (to land mid-stream);
    // every seventh iteration waits long past the finish to also cover
    // kills of an idle, fully-loaded server.
    const size_t sessions = 2 + rng.UniformInt(2);  // 2..3
    const uint64_t kill_delay_ms =
        rng.UniformInt(12) + (iter % 7 == 6 ? 100 : 0);
    const char* fsync = (iter % 3 == 0)   ? "always"
                        : (iter % 3 == 1) ? "interval"
                                          : "none";
    // Alternate snapshot-heavy and WAL-only iterations, so kills land
    // both around compactions and on plain log suffixes.
    const uint64_t snapshot_events = (iter % 2 == 0) ? 24 : 0;

    const pid_t pid = SpawnServer(
        {"--port", "0", "--port-file", port_file.string(), "--data-dir",
         data.string(), "--fsync", fsync, "--fsync-interval-ms", "1",
         "--snapshot-events", StrCat(snapshot_events), "--workers", "2"});
    ASSERT_GT(pid, 0);
    const int port = AwaitPort(port_file, pid);
    ASSERT_GT(port, 0) << "server did not come up";
    service::Endpoint endpoint;
    endpoint.port = port;

    // Open the sessions (durable OPEN, acked before we continue), then
    // stream each from its own thread, tracking the acked cursor.
    std::vector<std::unique_ptr<StreamState>> streams;
    {
      auto control = service::ServiceClient::Dial(endpoint);
      ASSERT_TRUE(control.ok()) << control.status().ToString();
      for (size_t s = 0; s < sessions; ++s) {
        auto stream = std::make_unique<StreamState>();
        stream->events = GeneratedEvents(6 + (iter % 3) * 2, iter * 31 + s);
        auto id = control->Open("epoch_interval=16");
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        stream->id = *id;
        streams.push_back(std::move(stream));
      }
    }
    std::atomic<bool> killed{false};
    std::vector<std::thread> appenders;
    for (auto& stream : streams) {
      appenders.emplace_back([&endpoint, &killed, &stream] {
        auto client = service::ServiceClient::Dial(endpoint);
        if (!client.ok()) return;
        size_t cursor = 0;
        while (cursor < stream->events.size()) {
          const size_t n = std::min<size_t>(8, stream->events.size() - cursor);
          std::vector<workload::TraceEvent> batch(
              stream->events.begin() + cursor,
              stream->events.begin() + cursor + n);
          auto queued = client->Append(stream->id, batch);
          if (!queued.ok()) {
            // The kill cut the connection: expected drill outcome.
            EXPECT_TRUE(killed.load()) << queued.status().ToString();
            return;
          }
          cursor += n;
          stream->acked.store(cursor, std::memory_order_release);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kill_delay_ms));
    killed.store(true);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    for (auto& thread : appenders) thread.join();
    int wait_status = 0;
    ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wait_status));
    ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);

    // ---- offline: the durable state alone must satisfy the contract.
    size_t unfinished = 0;
    for (const auto& stream : streams) {
      const size_t acked = stream->acked.load(std::memory_order_acquire);
      if (acked < stream->events.size()) ++unfinished;
      auto state = durability::ReadSessionDurableState(data.string(),
                                                       stream->id);
      ASSERT_TRUE(state.ok()) << "session " << stream->id << ": "
                              << state.status().ToString();
      // Zero acked loss: a process kill cannot take back an ack under
      // any fsync policy (the bytes are written before the ack).
      ASSERT_GE(state->event_seq, acked) << "session " << stream->id;
      ASSERT_LE(state->event_seq, stream->events.size());
      // The durable prefix replays to the oracle verdict.
      auto certifier = durability::RebuildCertifier(
          *state, online::CertifierOptions{});
      ASSERT_TRUE(certifier.ok()) << certifier.status().ToString();
      ASSERT_TRUE(
          durability::VerifyRecovery(**certifier, state->event_seq).ok());
      const std::vector<workload::TraceEvent> prefix(
          stream->events.begin(), stream->events.begin() + state->event_seq);
      EXPECT_EQ((*certifier)->Certifiable(), BatchVerdict(prefix))
          << "session " << stream->id;
    }
    if (unfinished > 0) ++kills_before_finish;

    // ---- online: a restarted server picks every session back up and
    // finishes the run with the uninterrupted verdict.
    fs::remove(port_file);
    const pid_t pid2 = SpawnServer(
        {"--port", "0", "--port-file", port_file.string(), "--data-dir",
         data.string(), "--fsync", fsync, "--snapshot-events",
         StrCat(snapshot_events), "--verify-recovery", "--workers", "2"});
    ASSERT_GT(pid2, 0);
    const int port2 = AwaitPort(port_file, pid2);
    ASSERT_GT(port2, 0) << "restart failed (recovery refused?)";
    endpoint.port = port2;
    auto control = service::ServiceClient::Dial(endpoint);
    ASSERT_TRUE(control.ok()) << control.status().ToString();
    for (const auto& stream : streams) {
      auto verdict = control->Query(stream->id);
      ASSERT_TRUE(verdict.ok()) << "session " << stream->id << ": "
                                << verdict.status().ToString();
      const uint64_t recovered =
          verdict->events_accepted + verdict->events_rejected;
      ASSERT_GE(recovered, stream->acked.load());
      ASSERT_LE(recovered, stream->events.size());
      for (size_t cursor = recovered; cursor < stream->events.size();) {
        const size_t n = std::min<size_t>(8, stream->events.size() - cursor);
        std::vector<workload::TraceEvent> batch(
            stream->events.begin() + cursor,
            stream->events.begin() + cursor + n);
        ASSERT_TRUE(control->Append(stream->id, batch).ok());
        cursor += n;
      }
      auto final_verdict = control->Close(stream->id);
      ASSERT_TRUE(final_verdict.ok()) << final_verdict.status().ToString();
      EXPECT_EQ(final_verdict->certifiable, BatchVerdict(stream->events))
          << "session " << stream->id;
      EXPECT_EQ(final_verdict->events_accepted +
                    final_verdict->events_rejected,
                stream->events.size());
    }
    ASSERT_TRUE(control->Shutdown().ok());
    ASSERT_EQ(::waitpid(pid2, &wait_status, 0), pid2);
    ASSERT_TRUE(WIFEXITED(wait_status));
    ASSERT_EQ(WEXITSTATUS(wait_status), 0);
    // Every session was closed: the durability dir must be empty again.
    EXPECT_TRUE(durability::ListDurableSessionIds(data.string()).empty());
    fs::remove_all(dir);
  }
  // The drill is only interesting if kills actually interrupt the load;
  // with the delays above, most iterations must die mid-stream.
  if (iterations >= 10) {
    EXPECT_GE(kills_before_finish, iterations / 4)
        << "kill delays never caught the load mid-flight; tighten them";
  }
}

/// Streaming-window chain with trailing commit_through watermarks — the
/// long-lived-session shape of DESIGN.md §13 (same stream comptx_load
/// --commit-window and bench_longsession produce).  Every root conflicts
/// with (and is weak-output-ordered after) its predecessor's leaf; one
/// cumulative watermark per `window` roots lags the stream by `window`.
std::vector<workload::TraceEvent> ChainEvents(uint32_t roots,
                                              uint32_t window) {
  using workload::TraceEvent;
  using workload::TraceEventKind;
  std::vector<TraceEvent> events;
  TraceEvent e;
  e.kind = TraceEventKind::kSchedule;
  e.name = "S";
  events.push_back(e);
  uint32_t next_id = 0;
  uint32_t prev_leaf = kInvalidIndex;
  for (uint32_t i = 0; i < roots; ++i) {
    e = {};
    e.kind = TraceEventKind::kRoot;
    e.schedule = 0;
    e.name = StrCat("T", i);
    events.push_back(e);
    const uint32_t root = next_id++;
    e = {};
    e.kind = TraceEventKind::kLeaf;
    e.parent = root;
    e.name = StrCat("x", i);
    events.push_back(e);
    const uint32_t leaf = next_id++;
    if (prev_leaf != kInvalidIndex) {
      e = {};
      e.kind = TraceEventKind::kConflict;
      e.a = prev_leaf;
      e.b = leaf;
      events.push_back(e);
      e.kind = TraceEventKind::kWeakOutput;
      events.push_back(e);
    }
    prev_leaf = leaf;
    if ((i + 1) % window == 0 && i + 1 > window) {
      e = {};
      e.kind = TraceEventKind::kCommitThrough;
      e.a = i + 1 - window;
      events.push_back(e);
    }
  }
  return events;
}

/// Watermark variant of the drill: the stream carries commit_through
/// events, so the WAL holds kCommitWatermark records and recovery replays
/// only the live suffix of derived state — yet must reach exactly the
/// verdict of a full (unpruned) replay and of the batch oracle.
TEST(CrashRecoveryDrill, WatermarkedSessionsReplayLiveSuffixOnly) {
  const size_t iterations = std::max<size_t>(1, (Iterations() + 3) / 4);
  constexpr uint32_t kRoots = 240;
  constexpr uint32_t kWindow = 8;
  // Live derived state is O(window): a window of unsealed roots (2 nodes
  // each) plus the not-yet-covered tail; 6x headroom, same bound the soak
  // test enforces.  A recovery that replays the full history unpruned
  // holds ~2*kRoots nodes and trips this immediately.
  constexpr size_t kLiveBound = 6 * (kWindow + 1) * 2;
  const std::vector<workload::TraceEvent> events =
      ChainEvents(kRoots, kWindow);
  const size_t first_watermark = [&] {
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind == workload::TraceEventKind::kCommitThrough)
        return i;
    }
    return events.size();
  }();

  size_t kills_before_finish = 0;
  for (size_t iter = 0; iter < iterations; ++iter) {
    SCOPED_TRACE(StrCat("iteration ", iter));
    Rng rng(0xF10A7ull * (iter + 1));
    const fs::path dir = Scratch() / StrCat("wm_iter_", iter);
    const fs::path data = dir / "data";
    const fs::path port_file = dir / "port.txt";
    fs::create_directories(dir);

    const uint64_t kill_delay_ms =
        rng.UniformInt(10) + (iter % 5 == 4 ? 100 : 0);
    const char* fsync = (iter % 2 == 0) ? "always" : "none";
    // WAL-only on odd iterations so the kCommitWatermark records are
    // still in the log when we read it back (snapshots compact them into
    // the sealed-roots state).
    const uint64_t snapshot_events = (iter % 2 == 0) ? 64 : 0;

    const pid_t pid = SpawnServer(
        {"--port", "0", "--port-file", port_file.string(), "--data-dir",
         data.string(), "--fsync", fsync, "--fsync-interval-ms", "1",
         "--snapshot-events", StrCat(snapshot_events), "--workers", "2"});
    ASSERT_GT(pid, 0);
    const int port = AwaitPort(port_file, pid);
    ASSERT_GT(port, 0) << "server did not come up";
    service::Endpoint endpoint;
    endpoint.port = port;

    StreamState stream;
    stream.events = events;
    {
      auto control = service::ServiceClient::Dial(endpoint);
      ASSERT_TRUE(control.ok()) << control.status().ToString();
      auto id = control->Open("epoch_interval=16");
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      stream.id = *id;
    }
    std::atomic<bool> killed{false};
    std::thread appender([&endpoint, &killed, &stream] {
      auto client = service::ServiceClient::Dial(endpoint);
      if (!client.ok()) return;
      size_t cursor = 0;
      while (cursor < stream.events.size()) {
        const size_t n = std::min<size_t>(8, stream.events.size() - cursor);
        std::vector<workload::TraceEvent> batch(
            stream.events.begin() + cursor,
            stream.events.begin() + cursor + n);
        auto queued = client->Append(stream.id, batch);
        if (!queued.ok()) {
          EXPECT_TRUE(killed.load()) << queued.status().ToString();
          return;
        }
        cursor += n;
        stream.acked.store(cursor, std::memory_order_release);
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(kill_delay_ms));
    killed.store(true);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    appender.join();
    int wait_status = 0;
    ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wait_status));

    const size_t acked = stream.acked.load(std::memory_order_acquire);
    if (acked < stream.events.size()) ++kills_before_finish;

    // ---- offline: watermark records are durable, and the rebuilt
    // session holds only the live window of derived state.
    auto state = durability::ReadSessionDurableState(data.string(),
                                                     stream.id);
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    ASSERT_GE(state->event_seq, acked);
    ASSERT_LE(state->event_seq, stream.events.size());
    if (snapshot_events == 0 && state->event_seq > first_watermark) {
      size_t watermark_records = 0;
      uint64_t highest = 0;
      for (const auto& record : state->wal_records) {
        if (record.type == durability::WalRecordType::kCommitWatermark) {
          ++watermark_records;
          highest = std::max(highest, record.commit_through);
        }
      }
      EXPECT_GT(watermark_records, 0u)
          << "durable stream passed a commit_through but the WAL holds no "
          << "kCommitWatermark record";
      EXPECT_GT(highest, 0u);
      EXPECT_LE(highest, kRoots);
    }
    auto certifier = durability::RebuildCertifier(
        *state, online::CertifierOptions{});
    ASSERT_TRUE(certifier.ok()) << certifier.status().ToString();
    ASSERT_TRUE(
        durability::VerifyRecovery(**certifier, state->event_seq).ok());
    const online::CertifierStats stats = (*certifier)->Stats();
    EXPECT_LE(stats.live_nodes, kLiveBound)
        << "recovery replayed more than the live suffix (event_seq="
        << state->event_seq << ", watermark=" << stats.commit_watermark
        << ")";
    // Snapshot restore re-seals through synthesized commits, so the
    // watermark counter itself only survives when the kCommitWatermark
    // records are still in the WAL suffix.
    if (snapshot_events == 0 && state->event_seq > first_watermark) {
      EXPECT_GT(stats.commit_watermark, 0u);
    }
    // Same verdict as a full unpruned replay of the durable prefix, and
    // as the batch oracle.
    const std::vector<workload::TraceEvent> prefix(
        stream.events.begin(), stream.events.begin() + state->event_seq);
    online::CertifierOptions unpruned_options;
    unpruned_options.auto_prune = false;
    unpruned_options.epoch_interval = 0;
    online::Certifier unpruned(unpruned_options);
    for (const auto& event : prefix) {
      ASSERT_TRUE(unpruned.Ingest(event).ok());
    }
    EXPECT_EQ((*certifier)->Certifiable(), unpruned.Certifiable());
    EXPECT_EQ((*certifier)->Certifiable(), BatchVerdict(prefix));

    // ---- online: restart, finish the stream, uninterrupted verdict.
    fs::remove(port_file);
    const pid_t pid2 = SpawnServer(
        {"--port", "0", "--port-file", port_file.string(), "--data-dir",
         data.string(), "--fsync", fsync, "--snapshot-events",
         StrCat(snapshot_events), "--verify-recovery", "--workers", "2"});
    ASSERT_GT(pid2, 0);
    const int port2 = AwaitPort(port_file, pid2);
    ASSERT_GT(port2, 0) << "restart failed (recovery refused?)";
    endpoint.port = port2;
    auto control = service::ServiceClient::Dial(endpoint);
    ASSERT_TRUE(control.ok()) << control.status().ToString();
    auto verdict = control->Query(stream.id);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    const uint64_t recovered =
        verdict->events_accepted + verdict->events_rejected;
    ASSERT_GE(recovered, acked);
    ASSERT_LE(recovered, stream.events.size());
    for (size_t cursor = recovered; cursor < stream.events.size();) {
      const size_t n = std::min<size_t>(8, stream.events.size() - cursor);
      std::vector<workload::TraceEvent> batch(
          stream.events.begin() + cursor, stream.events.begin() + cursor + n);
      ASSERT_TRUE(control->Append(stream.id, batch).ok());
      cursor += n;
    }
    auto final_verdict = control->Close(stream.id);
    ASSERT_TRUE(final_verdict.ok()) << final_verdict.status().ToString();
    EXPECT_TRUE(final_verdict->certifiable);  // the chain is Comp-C
    EXPECT_EQ(final_verdict->events_accepted + final_verdict->events_rejected,
              stream.events.size());
    ASSERT_TRUE(control->Shutdown().ok());
    ASSERT_EQ(::waitpid(pid2, &wait_status, 0), pid2);
    ASSERT_TRUE(WIFEXITED(wait_status));
    ASSERT_EQ(WEXITSTATUS(wait_status), 0);
    EXPECT_TRUE(durability::ListDurableSessionIds(data.string()).empty());
    fs::remove_all(dir);
  }
  if (iterations >= 8) {
    EXPECT_GE(kills_before_finish, iterations / 4)
        << "kill delays never caught the load mid-flight; tighten them";
  }
}

}  // namespace
}  // namespace comptx
