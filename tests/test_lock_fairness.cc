// Fair-queueing properties of the lock manager: queued requests reserve
// their place, so upgraders cannot be starved by streams of compatible
// newcomers — the property that makes deadlock-victim restarts converge.

#include <gtest/gtest.h>

#include "runtime/data_store.h"
#include "runtime/lock_manager.h"

namespace comptx::runtime {
namespace {

LockManager MakeItemLocks() {
  return LockManager([](uint32_t, uint32_t a, uint32_t b) {
    return OpsConflict(static_cast<OpType>(a), static_cast<OpType>(b));
  });
}

constexpr uint32_t kRead = static_cast<uint32_t>(OpType::kRead);
constexpr uint32_t kAdd = static_cast<uint32_t>(OpType::kAdd);
constexpr uint32_t kWrite = static_cast<uint32_t>(OpType::kWrite);

TEST(LockFairnessTest, QueuedUpgraderBlocksNewReaders) {
  LockManager locks = MakeItemLocks();
  ASSERT_TRUE(locks.TryAcquire(1, 0, kRead));
  ASSERT_TRUE(locks.TryAcquire(2, 0, kRead));
  // Owner 1 queues an upgrade to add (conflicts with 2's read).
  EXPECT_FALSE(locks.TryAcquire(1, 0, kAdd));
  EXPECT_EQ(locks.WaiterCount(), 1u);
  // A brand-new reader must now be refused: it would conflict with the
  // earlier waiting add.
  EXPECT_FALSE(locks.TryAcquire(3, 0, kRead));
  EXPECT_EQ(locks.WaiterCount(), 2u);
  // Once owner 2 releases, the upgrader (earliest waiter) gets through...
  locks.ReleaseAll(2);
  EXPECT_TRUE(locks.TryAcquire(1, 0, kAdd));
  // ...and the late reader still waits (add is held).
  EXPECT_FALSE(locks.TryAcquire(3, 0, kRead));
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.TryAcquire(3, 0, kRead));
  EXPECT_EQ(locks.WaiterCount(), 0u);
}

TEST(LockFairnessTest, FifoAmongConflictingWaiters) {
  LockManager locks = MakeItemLocks();
  ASSERT_TRUE(locks.TryAcquire(1, 0, kWrite));
  EXPECT_FALSE(locks.TryAcquire(2, 0, kWrite));  // first in queue.
  EXPECT_FALSE(locks.TryAcquire(3, 0, kWrite));  // second.
  locks.ReleaseAll(1);
  // Owner 3 retries first but must defer to owner 2's earlier ticket.
  EXPECT_FALSE(locks.TryAcquire(3, 0, kWrite));
  EXPECT_TRUE(locks.TryAcquire(2, 0, kWrite));
  locks.ReleaseAll(2);
  EXPECT_TRUE(locks.TryAcquire(3, 0, kWrite));
}

TEST(LockFairnessTest, CompatibleNewcomersPassWaitersTheyDontConflict) {
  LockManager locks = MakeItemLocks();
  ASSERT_TRUE(locks.TryAcquire(1, 0, kAdd));
  // Owner 2 waits for a write (conflicts with the add).
  EXPECT_FALSE(locks.TryAcquire(2, 0, kWrite));
  // Owner 3's add is compatible with the holder AND with... no: adds
  // conflict with the queued write?  add/write conflict — so it queues.
  EXPECT_FALSE(locks.TryAcquire(3, 0, kAdd));
  // But on a different resource nothing blocks.
  EXPECT_TRUE(locks.TryAcquire(3, 1, kWrite));
}

TEST(LockFairnessTest, ReleaseAllCancelsQueuedRequests) {
  LockManager locks = MakeItemLocks();
  ASSERT_TRUE(locks.TryAcquire(1, 0, kWrite));
  EXPECT_FALSE(locks.TryAcquire(2, 0, kWrite));
  EXPECT_EQ(locks.WaiterCount(), 1u);
  locks.ReleaseAll(2);  // owner 2 gives up entirely (restart).
  EXPECT_EQ(locks.WaiterCount(), 0u);
  // Owner 3 now isn't blocked by a ghost waiter.
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.TryAcquire(3, 0, kWrite));
}

TEST(LockFairnessTest, BlockersIncludeEarlierWaiters) {
  LockManager locks = MakeItemLocks();
  ASSERT_TRUE(locks.TryAcquire(1, 0, kRead));
  EXPECT_FALSE(locks.TryAcquire(2, 0, kWrite));  // queued behind reader.
  EXPECT_FALSE(locks.TryAcquire(3, 0, kRead));   // queued behind writer.
  std::vector<LockOwner> blockers = locks.Blockers(3, 0, kRead);
  // Owner 3 is blocked by the waiting writer (2), not by the reader (1).
  ASSERT_EQ(blockers.size(), 1u);
  EXPECT_EQ(blockers[0], 2u);
  std::vector<LockOwner> writer_blockers = locks.Blockers(2, 0, kWrite);
  ASSERT_EQ(writer_blockers.size(), 1u);
  EXPECT_EQ(writer_blockers[0], 1u);
}

TEST(LockFairnessTest, NoStarvationUnderAdversarialRetries) {
  // Simulation of the scenario that once livelocked the executor: one
  // upgrader and a churn of readers that retry forever.  The upgrader
  // must win within a bounded number of rounds.
  LockManager locks = MakeItemLocks();
  ASSERT_TRUE(locks.TryAcquire(100, 0, kRead));
  int rounds = 0;
  bool upgraded = false;
  std::vector<LockOwner> churn = {1, 2, 3};
  for (LockOwner reader : churn) locks.TryAcquire(reader, 0, kRead);
  while (!upgraded && rounds < 100) {
    ++rounds;
    // Churning readers release and immediately re-request.
    for (LockOwner reader : churn) {
      locks.ReleaseAll(reader);
      locks.TryAcquire(reader, 0, kRead);
    }
    upgraded = locks.TryAcquire(100, 0, kAdd);
  }
  EXPECT_TRUE(upgraded);
  EXPECT_LE(rounds, 3);
}

}  // namespace
}  // namespace comptx::runtime
