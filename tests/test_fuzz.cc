// Robustness fuzzing: random raw mutations of valid systems must never
// crash the validator or the checker — every malformed structure is
// either caught by Validate() or handled gracefully by the reduction.
// Also cross-checks the graph substrate's algorithms against each other
// on random graphs.

#include <gtest/gtest.h>

#include "analysis/sweep.h"
#include "core/correctness.h"
#include "graph/cycle_finder.h"
#include "graph/tarjan_scc.h"
#include "graph/topological_sort.h"
#include "graph/transitive_closure.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

/// Applies one random raw mutation (bypassing the typed mutators) to a
/// valid system.
void MutateOnce(CompositeSystem& cs, Rng& rng) {
  const uint32_t node_count = static_cast<uint32_t>(cs.NodeCount());
  const uint32_t schedule_count = static_cast<uint32_t>(cs.ScheduleCount());
  if (node_count < 2 || schedule_count == 0) return;
  NodeId a(static_cast<uint32_t>(rng.UniformInt(node_count)));
  NodeId b(static_cast<uint32_t>(rng.UniformInt(node_count)));
  if (a == b) return;
  ScheduleId s(static_cast<uint32_t>(rng.UniformInt(schedule_count)));
  switch (rng.UniformInt(6)) {
    case 0:
      cs.mutable_schedule(s).weak_output.Add(a, b);
      break;
    case 1:
      cs.mutable_schedule(s).strong_output.Add(a, b);
      break;
    case 2:
      cs.mutable_schedule(s).weak_input.Add(a, b);
      break;
    case 3:
      cs.mutable_schedule(s).conflicts.Add(a, b);
      break;
    case 4:
      if (cs.node(a).IsTransaction()) {
        cs.mutable_node(a).weak_intra.Add(b, a);
      }
      break;
    case 5:
      if (cs.node(a).IsTransaction()) {
        cs.mutable_node(a).strong_intra.Add(a, b);
      }
      break;
  }
}

TEST(FuzzValidationTest, MutatedSystemsNeverCrash) {
  // Generate + mutate all 60 systems first, then fan the independent
  // validate/check passes out through the sweep helper (the same path the
  // multi-trace drivers use), asserting on the collected outcomes.
  struct Outcome {
    bool valid = false;
    bool check_ok = false;
    bool reduction_ok = false;
    std::string message;
  };
  std::vector<CompositeSystem> systems;
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = 3;
  spec.execution.conflict_prob = 0.2;
  const std::string generator = workload::DescribeWorkloadSpec(spec);
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    auto cs = workload::GenerateSystem(spec, seed);
    ASSERT_TRUE(cs.ok()) << "seed " << seed << " (" << generator
                         << "): " << cs.status().ToString();
    Rng rng(seed * 7919);
    const uint32_t mutations = 1 + uint32_t(rng.UniformInt(5));
    for (uint32_t m = 0; m < mutations; ++m) MutateOnce(*cs, rng);
    systems.push_back(*std::move(cs));
  }
  const std::vector<Outcome> outcomes =
      analysis::ParallelMap<Outcome>(systems.size(), [&](size_t i) {
        Outcome out;
        Status valid = systems[i].Validate();
        out.valid = valid.ok();
        out.message = valid.message();
        if (out.valid) {
          // A mutated-but-valid system must be checkable without crashing.
          out.check_ok = CheckCompC(systems[i]).ok();
        }
        out.reduction_ok = RunReduction(systems[i]).ok();
        return out;
      });
  int still_valid = 0;
  int rejected = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const Outcome& out = outcomes[i];
    // Everything needed to regenerate the failing input: the generator
    // seed, its parameters, and the mutation rng seed.
    const std::string repro =
        StrCat("seed ", i + 1, " mutation_rng_seed ", (i + 1) * 7919, " (",
               generator, ")");
    if (out.valid) {
      ++still_valid;
      EXPECT_TRUE(out.check_ok) << repro;
    } else {
      ++rejected;
      EXPECT_FALSE(out.message.empty()) << repro;
      // The reduction driver must surface the same rejection as a Status.
      EXPECT_FALSE(out.reduction_ok) << repro << ": " << out.message;
    }
  }
  // The mutation set must exercise both outcomes to mean anything.
  EXPECT_GT(still_valid, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzGraphTest, SccAgreesWithClosure) {
  constexpr uint64_t kRngSeed = 99;
  Rng rng(kRngSeed);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 2 + rng.UniformInt(25);
    graph::Digraph g(n);
    const size_t edges = rng.UniformInt(3 * n + 1);
    for (size_t e = 0; e < edges; ++e) {
      g.AddEdge(uint32_t(rng.UniformInt(n)), uint32_t(rng.UniformInt(n)));
    }
    graph::SccResult scc = graph::TarjanScc(g);
    graph::TransitiveClosure closure(g);
    for (uint32_t u = 0; u < n; ++u) {
      for (uint32_t v = 0; v < n; ++v) {
        if (u == v) continue;
        const bool same_component =
            scc.component_of[u] == scc.component_of[v];
        const bool mutual = closure.Reaches(u, v) && closure.Reaches(v, u);
        EXPECT_EQ(same_component, mutual)
            << "rng_seed " << kRngSeed << " trial " << trial << " (n=" << n
            << " edges=" << edges << ") nodes " << u << "," << v;
      }
    }
  }
}

TEST(FuzzGraphTest, TopologicalSortValidOrCycleExists) {
  constexpr uint64_t kRngSeed = 123;
  Rng rng(kRngSeed);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 2 + rng.UniformInt(30);
    graph::Digraph g(n);
    const size_t edges = rng.UniformInt(2 * n + 1);
    for (size_t e = 0; e < edges; ++e) {
      g.AddEdge(uint32_t(rng.UniformInt(n)), uint32_t(rng.UniformInt(n)));
    }
    const std::string repro = StrCat("rng_seed ", kRngSeed, " trial ", trial,
                                     " (n=", n, " edges=", edges, ")");
    auto order = graph::TopologicalSort(g);
    auto cycle = graph::FindCycle(g);
    EXPECT_EQ(order.ok(), !cycle.has_value()) << repro;
    if (order.ok()) {
      std::vector<size_t> pos(n);
      for (size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
      for (uint32_t v = 0; v < n; ++v) {
        for (uint32_t w : g.OutNeighbors(v)) {
          if (v != w) EXPECT_LT(pos[v], pos[w]) << repro;
        }
      }
    } else {
      // The cycle witness must consist of real edges.
      for (size_t i = 0; i < cycle->size(); ++i) {
        EXPECT_TRUE(
            g.HasEdge((*cycle)[i], (*cycle)[(i + 1) % cycle->size()]))
            << repro << " cycle position " << i;
      }
    }
  }
}

TEST(FuzzTraceTest, LoadNeverCrashesOnCorruptedTraces) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kStack;
  auto cs = workload::GenerateSystem(spec, 5);
  ASSERT_TRUE(cs.ok()) << "seed 5 (" << workload::DescribeWorkloadSpec(spec)
                       << "): " << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  ASSERT_TRUE(text.ok()) << "seed 5 (" << workload::DescribeWorkloadSpec(spec)
                         << "): " << text.status().ToString();
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    std::string corrupted = *text;
    // Flip a handful of random characters.
    for (int k = 0; k < 5; ++k) {
      size_t pos = size_t(rng.UniformInt(corrupted.size()));
      corrupted[pos] = char('0' + rng.UniformInt(75));
    }
    auto loaded = workload::LoadTrace(corrupted);
    if (loaded.ok()) {
      // A still-parsable trace must yield a usable system.
      (void)loaded->Validate();
    }
  }
}

}  // namespace
}  // namespace comptx
