// Black-box CLI tests for comptx_certify and comptx_shrink (ctest label
// `cli`): malformed input files, empty traces and conflicting flags must
// exit non-zero with a diagnostic; well-formed runs must exit zero.  The
// binary locations are baked in at configure time via the
// COMPTX_CERTIFY_BIN / COMPTX_SHRINK_BIN compile definitions.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "durability/recovery.h"
#include "durability/wal.h"
#include "util/string_util.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
  std::string stderr_text;
};

std::string ReadAll(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A per-process scratch directory (ctest may run the cases of this
/// binary in parallel as separate processes).
std::filesystem::path Scratch() {
  static const std::filesystem::path dir = [] {
    std::filesystem::path p =
        std::filesystem::path(::testing::TempDir()) /
        StrCat("comptx_cli_", static_cast<unsigned long>(::getpid()));
    std::filesystem::create_directories(p);
    return p;
  }();
  return dir;
}

RunResult RunCli(const std::string& command) {
  static int counter = 0;
  const std::filesystem::path out =
      Scratch() / StrCat("stdout_", counter, ".txt");
  const std::filesystem::path err =
      Scratch() / StrCat("stderr_", counter, ".txt");
  ++counter;
  const std::string full =
      StrCat(command, " >", out.string(), " 2>", err.string());
  const int raw = std::system(full.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  result.stdout_text = ReadAll(out);
  result.stderr_text = ReadAll(err);
  return result;
}

std::filesystem::path WriteFile(const std::string& name,
                                const std::string& content) {
  const std::filesystem::path path = Scratch() / name;
  std::ofstream out(path);
  out << content;
  return path;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------- certify

TEST(CertifyCliTest, NoArgumentsIsAUsageError) {
  RunResult r = RunCli(COMPTX_CERTIFY_BIN);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "usage")) << r.stderr_text;
}

TEST(CertifyCliTest, MissingFileIsDiagnosed) {
  RunResult r = RunCli(StrCat(COMPTX_CERTIFY_BIN, " ",
                           (Scratch() / "does_not_exist.trace").string()));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "cannot open")) << r.stderr_text;
}

TEST(CertifyCliTest, MalformedTraceIsDiagnosed) {
  const auto path = WriteFile("malformed.trace", "this is not a trace\n");
  RunResult r = RunCli(StrCat(COMPTX_CERTIFY_BIN, " ", path.string()));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "parse error")) << r.stderr_text;
}

TEST(CertifyCliTest, EmptyTraceFileIsDiagnosed) {
  const auto path = WriteFile("empty.trace", "");
  RunResult r = RunCli(StrCat(COMPTX_CERTIFY_BIN, " ", path.string()));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_FALSE(r.stderr_text.empty());
}

TEST(CertifyCliTest, DemoConflictsWithATraceFile) {
  const auto path = WriteFile("some.trace", "comptx-trace v1\nend\n");
  RunResult r =
      RunCli(StrCat(COMPTX_CERTIFY_BIN, " --demo ", path.string()));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "usage")) << r.stderr_text;
}

TEST(CertifyCliTest, CertifiesAGeneratedTraceWithBatchCheck) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kStack;
  spec.execution.conflict_prob = 0.3;
  auto cs = workload::GenerateSystem(spec, 9);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const auto path = WriteFile("generated.trace", *text);
  RunResult r =
      RunCli(StrCat(COMPTX_CERTIFY_BIN, " --check ", path.string()));
  EXPECT_TRUE(r.exit_code == 0 || r.exit_code == 1) << r.stderr_text;
  if (r.exit_code == 0) {
    EXPECT_TRUE(Contains(r.stdout_text, "certifiable")) << r.stdout_text;
  }
  EXPECT_TRUE(Contains(r.stdout_text, "batch agreement")) << r.stdout_text;
}

TEST(CertifyCliTest, StaticFastPathCertifiesATreeTrace) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kStack;
  spec.execution.conflict_prob = 0.3;
  auto cs = workload::GenerateSystem(spec, 9);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const auto path = WriteFile("static_stack.trace", *text);
  RunResult r =
      RunCli(StrCat(COMPTX_CERTIFY_BIN, " --static ", path.string()));
  EXPECT_TRUE(r.exit_code == 0 || r.exit_code == 1) << r.stderr_text;
  EXPECT_TRUE(Contains(r.stdout_text, "static verdict")) << r.stdout_text;
  // Paranoid mode re-runs the replay and must confirm the static verdict.
  RunResult p =
      RunCli(StrCat(COMPTX_CERTIFY_BIN, " --paranoid ", path.string()));
  EXPECT_EQ(p.exit_code, r.exit_code) << p.stdout_text << p.stderr_text;
  EXPECT_TRUE(Contains(p.stdout_text, "static agreement")) << p.stdout_text;
}

// ------------------------------------------------------------------- lint

std::string CorpusFile(const char* name) {
  return (std::filesystem::path(COMPTX_LINT_CORPUS_DIR) / name).string();
}

TEST(LintCliTest, NoArgumentsIsAUsageError) {
  RunResult r = RunCli(COMPTX_LINT_BIN);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "usage")) << r.stderr_text;
}

TEST(LintCliTest, MissingFileIsDiagnosed) {
  RunResult r = RunCli(StrCat(COMPTX_LINT_BIN, " ",
                           (Scratch() / "nope.trace").string()));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "cannot open")) << r.stderr_text;
}

TEST(LintCliTest, SeededCorpusFlagsTheDocumentedCodes) {
  // The committed ill-formed specs and the CTX code each must flag with
  // (the contract CI and DESIGN.md document).
  const struct {
    const char* file;
    const char* code;
    int exit_code;
  } cases[] = {
      {"empty_system.trace", "CTX020", 0},  // warning, not an error
      {"undeclared_conflict.trace", "CTX023", 1},
      {"self_conflict.trace", "CTX024", 1},
      {"deep_cycle.trace", "CTX001", 1},
      {"commute_contradiction.json", "CTX027", 1},
      {"dangling_scheduler.json", "CTX022", 1},
      // The ill-formed commutativity-spec corpus, one file per CTX1xx
      // code (DESIGN.md §14).
      {"spec_no_header.spec", "CTX100", 1},
      {"spec_dup_adt.spec", "CTX101", 1},
      {"spec_unknown_class.spec", "CTX102", 1},
      {"spec_contradiction.spec", "CTX103", 1},
      {"spec_incomplete_table.spec", "CTX104", 1},
      {"spec_all_commute.spec", "CTX105", 0},   // warning, not an error
      {"spec_empty_adt.spec", "CTX106", 0},     // warning, not an error
      {"tag_mismatch.trace", "CTX107", 1},
      {"undeclared_sem_conflict.trace", "CTX108", 0},  // warning
  };
  for (const auto& c : cases) {
    RunResult r = RunCli(StrCat(COMPTX_LINT_BIN, " ", CorpusFile(c.file)));
    EXPECT_EQ(r.exit_code, c.exit_code)
        << c.file << ": " << r.stdout_text << r.stderr_text;
    EXPECT_TRUE(Contains(r.stdout_text, c.code))
        << c.file << " should flag " << c.code << ": " << r.stdout_text;
  }
}

TEST(LintCliTest, CleanSpecLintsCleanWithASafeVerdict) {
  RunResult r = RunCli(StrCat(COMPTX_LINT_BIN, " --verdict ",
                           CorpusFile("single_root_single_leaf.trace")));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text << r.stderr_text;
  EXPECT_TRUE(Contains(r.stdout_text, "0 diagnostic(s)")) << r.stdout_text;
  EXPECT_TRUE(Contains(r.stdout_text, "SAFE")) << r.stdout_text;
}

TEST(LintCliTest, JsonOutputCarriesCodesAndErrorFlag) {
  RunResult r = RunCli(StrCat(COMPTX_LINT_BIN, " --json ",
                           CorpusFile("self_conflict.trace"), " ",
                           CorpusFile("commute_contradiction.json")));
  EXPECT_EQ(r.exit_code, 1) << r.stdout_text << r.stderr_text;
  EXPECT_TRUE(Contains(r.stdout_text, "\"CTX024\"")) << r.stdout_text;
  EXPECT_TRUE(Contains(r.stdout_text, "\"CTX027\"")) << r.stdout_text;
  EXPECT_TRUE(Contains(r.stdout_text, "\"errors\": true")) << r.stdout_text;
}

// ----------------------------------------------------------------- shrink

TEST(ShrinkCliTest, UnknownFlagIsAUsageError) {
  RunResult r = RunCli(StrCat(COMPTX_SHRINK_BIN, " --bogus"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "unknown flag")) << r.stderr_text;
}

TEST(ShrinkCliTest, NonNumericSeedIsDiagnosed) {
  RunResult r = RunCli(StrCat(COMPTX_SHRINK_BIN, " --seed banana"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "--seed")) << r.stderr_text;
}

TEST(ShrinkCliTest, ZeroTracesIsDiagnosed) {
  RunResult r = RunCli(StrCat(COMPTX_SHRINK_BIN, " --traces 0"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "--traces")) << r.stderr_text;
}

TEST(ShrinkCliTest, ReplayConflictsWithInjection) {
  RunResult r = RunCli(
      StrCat(COMPTX_SHRINK_BIN, " --replay --inject-bug flip-oracle"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "cannot be combined")) << r.stderr_text;
}

TEST(ShrinkCliTest, ReplayWithoutFilesIsDiagnosed) {
  RunResult r = RunCli(StrCat(COMPTX_SHRINK_BIN, " --replay"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_FALSE(r.stderr_text.empty());
}

TEST(ShrinkCliTest, ReplayOfAMissingFileIsDiagnosed) {
  RunResult r =
      RunCli(StrCat(COMPTX_SHRINK_BIN, " --replay ",
                 (Scratch() / "missing_witness.json").string()));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "cannot open")) << r.stderr_text;
}

TEST(ShrinkCliTest, ReplayOfMalformedJsonIsDiagnosed) {
  const auto path = WriteFile("garbage.json", "definitely not json");
  RunResult r =
      RunCli(StrCat(COMPTX_SHRINK_BIN, " --replay ", path.string()));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_FALSE(r.stderr_text.empty());
}

TEST(ShrinkCliTest, ReplayOfAnEmptyTraceWitnessIsDiagnosed) {
  const auto path = WriteFile(
      "empty_trace.json",
      "{\"id\": \"empty\", \"check\": \"batch\", \"injected\": \"none\", "
      "\"trace\": []}");
  RunResult r =
      RunCli(StrCat(COMPTX_SHRINK_BIN, " --replay ", path.string()));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "empty trace")) << r.stderr_text;
}

TEST(ShrinkCliTest, CleanCampaignExitsZero) {
  RunResult r = RunCli(StrCat(COMPTX_SHRINK_BIN, " --seed 1 --traces 3"));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text << r.stderr_text;
  EXPECT_TRUE(Contains(r.stdout_text, "zero decider disagreements"))
      << r.stdout_text;
}

// ----------------------------------------------- version/help contract

// Scripts (and the CI smoke jobs) probe tools with --version / --help
// before driving them; every comptx binary must answer both with exit 0,
// a "(comptx) <version>" banner and a usage line, without touching any
// input files.
TEST(VersionHelpCliTest, EveryToolAnswersVersionWithExitZero) {
  const char* bins[] = {COMPTX_CERTIFY_BIN,       COMPTX_LINT_BIN,
                        COMPTX_SHRINK_BIN,        COMPTX_EXPORT_TRACES_BIN,
                        COMPTX_SERVE_BIN,         COMPTX_LOAD_BIN,
                        COMPTX_WALCHECK_BIN};
  for (const char* bin : bins) {
    RunResult r = RunCli(StrCat(bin, " --version"));
    EXPECT_EQ(r.exit_code, 0) << bin << ": " << r.stderr_text;
    EXPECT_TRUE(Contains(r.stdout_text, "(comptx)"))
        << bin << ": " << r.stdout_text;
  }
}

TEST(VersionHelpCliTest, EveryToolAnswersHelpWithExitZero) {
  const char* bins[] = {COMPTX_CERTIFY_BIN,       COMPTX_LINT_BIN,
                        COMPTX_SHRINK_BIN,        COMPTX_EXPORT_TRACES_BIN,
                        COMPTX_SERVE_BIN,         COMPTX_LOAD_BIN,
                        COMPTX_WALCHECK_BIN};
  for (const char* bin : bins) {
    RunResult r = RunCli(StrCat(bin, " --help"));
    EXPECT_EQ(r.exit_code, 0) << bin << ": " << r.stderr_text;
    EXPECT_TRUE(Contains(StrCat(r.stdout_text, r.stderr_text), "usage"))
        << bin << ": " << r.stdout_text << r.stderr_text;
  }
}

TEST(ShrinkCliTest, InjectedCampaignWritesReplayableWitnesses) {
  const std::filesystem::path corpus = Scratch() / "cli_corpus";
  RunResult campaign =
      RunCli(StrCat(COMPTX_SHRINK_BIN,
                 " --seed 7 --traces 6 --inject-bug flip-oracle --quiet"
                 " --out ",
                 corpus.string()));
  EXPECT_EQ(campaign.exit_code, 1)
      << campaign.stdout_text << campaign.stderr_text;
  size_t witnesses = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (entry.path().extension() == ".json") ++witnesses;
  }
  ASSERT_GT(witnesses, 0u) << campaign.stdout_text;
  RunResult replay = RunCli(StrCat(COMPTX_SHRINK_BIN, " --quiet --replay ",
                                (corpus / "*.json").string()));
  EXPECT_EQ(replay.exit_code, 0)
      << replay.stdout_text << replay.stderr_text;
}

// ----------------------------------------------------------- walcheck

TEST(WalcheckCliTest, NoPathsIsAUsageError) {
  RunResult r = RunCli(COMPTX_WALCHECK_BIN);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "usage")) << r.stderr_text;
}

TEST(WalcheckCliTest, MissingPathIsAnIoError) {
  RunResult r = RunCli(StrCat(COMPTX_WALCHECK_BIN, " ",
                           (Scratch() / "no_such_dir_or_file.wal").string()));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(Contains(r.stderr_text, "no such")) << r.stderr_text;
}

TEST(WalcheckCliTest, VerifyDetectRepairCycleOnARealWal) {
  const std::filesystem::path dir = Scratch() / "walcheck_data";
  std::filesystem::create_directories(dir);
  // Build a real session WAL through the durability API.
  durability::Counters counters;
  const std::string wal = durability::WalPath(dir.string(), 9);
  {
    auto writer = durability::WalWriter::Create(
        wal, durability::FsyncPolicy::kNone, &counters);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    durability::WalRecord open;
    open.type = durability::WalRecordType::kOpen;
    open.options = "epoch_interval=8";
    ASSERT_TRUE((*writer)->Append(open).ok());
    durability::WalRecord append;
    append.type = durability::WalRecordType::kAppend;
    append.seq = 1;
    for (uint32_t i = 0; i < 4; ++i) {
      workload::TraceEvent event;
      event.kind = workload::TraceEventKind::kConflict;
      event.a = i;
      event.b = i + 1;
      append.events.push_back(event);
    }
    ASSERT_TRUE((*writer)->Append(append).ok());
    ASSERT_TRUE((*writer)->SyncNow().ok());
  }

  // Clean WAL: exit 0, summary mentions the record/event counts.
  RunResult clean = RunCli(StrCat(COMPTX_WALCHECK_BIN, " ", dir.string()));
  EXPECT_EQ(clean.exit_code, 0) << clean.stdout_text << clean.stderr_text;
  EXPECT_TRUE(Contains(clean.stdout_text, "clean")) << clean.stdout_text;
  // --dump prints the per-record lines.
  RunResult dump =
      RunCli(StrCat(COMPTX_WALCHECK_BIN, " --dump ", dir.string()));
  EXPECT_EQ(dump.exit_code, 0);
  EXPECT_TRUE(Contains(dump.stdout_text, "lsn=0 OPEN")) << dump.stdout_text;
  EXPECT_TRUE(Contains(dump.stdout_text, "APPEND seq=1 count=4"))
      << dump.stdout_text;

  // Tear the tail: exit 1 and the damage report names the truncation.
  {
    std::ifstream in(wal, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    std::ofstream out(wal, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 3));
  }
  RunResult torn = RunCli(StrCat(COMPTX_WALCHECK_BIN, " ", dir.string()));
  EXPECT_EQ(torn.exit_code, 1) << torn.stdout_text;
  EXPECT_TRUE(Contains(torn.stdout_text, "TORN")) << torn.stdout_text;
  EXPECT_TRUE(Contains(torn.stdout_text, "truncation lsn=1"))
      << torn.stdout_text;

  // --repair truncates in place; the re-check is clean again.
  RunResult repair =
      RunCli(StrCat(COMPTX_WALCHECK_BIN, " --repair ", dir.string()));
  EXPECT_EQ(repair.exit_code, 0) << repair.stdout_text;
  EXPECT_TRUE(Contains(repair.stdout_text, "repaired")) << repair.stdout_text;
  RunResult again = RunCli(StrCat(COMPTX_WALCHECK_BIN, " ", dir.string()));
  EXPECT_EQ(again.exit_code, 0) << again.stdout_text;
  EXPECT_TRUE(Contains(again.stdout_text, "1 record(s)"))
      << again.stdout_text;
}

// ----------------------------------------------------------- topology

// The multi-process distributed drill: a 3-process fork/join driven by
// comptx_topology, with one leaf SIGKILLed mid-run and respawned.  The
// tool exits 0 only if the distributed verdict sequence matches the
// single-process differential and the batch oracle on the merged trace,
// so this one invocation covers ordered delivery, dedup accounting,
// resubscribe-from-LSN recovery, and the cross-node two-phase commit.
TEST(TopologyCliTest, ForkJoinKillDrillConvergesAndMatchesOracle) {
  const std::filesystem::path dir = Scratch() / "topology_drill";
  std::filesystem::create_directories(dir);
  const std::filesystem::path spec = dir / "forkjoin.topo";
  {
    std::ofstream out(spec);
    out << "# comptx-topology v1\n"
           "node root\nnode left\nnode right\n"
           "edge root left\nedge root right\n";
  }
  RunResult r = RunCli(StrCat(
      COMPTX_TOPOLOGY_BIN, " --spec ", spec.string(), " --serve ",
      COMPTX_SERVE_BIN, " --data-dir ", (dir / "run").string(),
      // 9 roots = 3 components round-robined over 2 leaves, so "left"
      // owns components 0 and 2: killing it after phase 0 forces phase
      // 2 to replicate through the respawned process — the barrier
      // cannot pass without a successful resubscribe-from-LSN.
      " --roots 9 --phases 3 --kill left --kill-phase 0"));
  EXPECT_EQ(r.exit_code, 0) << r.stdout_text << r.stderr_text;
  EXPECT_TRUE(Contains(r.stdout_text, "\"ok\": true")) << r.stdout_text;
  EXPECT_TRUE(Contains(r.stdout_text, "\"drill\": true")) << r.stdout_text;
  EXPECT_FALSE(Contains(r.stdout_text, "\"resubscribes\": 0,"))
      << r.stdout_text;
}

TEST(TopologyCliTest, BadSpecIsASetupError) {
  const std::filesystem::path dir = Scratch() / "topology_bad";
  std::filesystem::create_directories(dir);
  const std::filesystem::path spec = dir / "bad.topo";
  {
    std::ofstream out(spec);
    out << "# comptx-topology v1\nnode a\nedge a a\n";
  }
  RunResult r = RunCli(StrCat(
      COMPTX_TOPOLOGY_BIN, " --spec ", spec.string(), " --serve ",
      COMPTX_SERVE_BIN, " --data-dir ", (dir / "run").string(),
      " --roots 3"));
  EXPECT_EQ(r.exit_code, 2) << r.stdout_text;
  EXPECT_TRUE(Contains(r.stderr_text, "bad topology spec")) << r.stderr_text;
}

TEST(WalcheckCliTest, StreamCursorRecordsVerifyAndDump) {
  // A distributed node's WAL: appends interleaved with the kStreamCursor
  // records its edge ingestors write (DESIGN.md §15).  walcheck must
  // verify them, summarize the furthest durable cursor per edge, and
  // render them under --dump.
  const std::filesystem::path dir = Scratch() / "walcheck_cursor_data";
  std::filesystem::create_directories(dir);
  durability::Counters counters;
  const std::string wal = durability::WalPath(dir.string(), 3);
  {
    auto writer = durability::WalWriter::Create(
        wal, durability::FsyncPolicy::kNone, &counters);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    durability::WalRecord open;
    open.type = durability::WalRecordType::kOpen;
    open.options = "stream=1";
    ASSERT_TRUE((*writer)->Append(open).ok());
    durability::WalRecord append;
    append.type = durability::WalRecordType::kAppend;
    append.seq = 1;
    workload::TraceEvent event;
    event.kind = workload::TraceEventKind::kConflict;
    event.a = 0;
    event.b = 1;
    append.events.push_back(event);
    ASSERT_TRUE((*writer)->Append(append).ok());
    // Two cursors on edge 7 (the later one supersedes) and one on 9.
    for (const auto& [edge, cursor] :
         {std::pair<uint64_t, uint64_t>{7, 128},
          std::pair<uint64_t, uint64_t>{9, 64},
          std::pair<uint64_t, uint64_t>{7, 256}}) {
      durability::WalRecord record;
      record.type = durability::WalRecordType::kStreamCursor;
      record.seq = 1;
      record.edge = edge;
      record.cursor_seq = cursor;
      record.mapping = "delta";
      ASSERT_TRUE((*writer)->Append(record).ok());
    }
    ASSERT_TRUE((*writer)->SyncNow().ok());
  }

  RunResult clean = RunCli(StrCat(COMPTX_WALCHECK_BIN, " ", dir.string()));
  EXPECT_EQ(clean.exit_code, 0) << clean.stdout_text << clean.stderr_text;
  EXPECT_TRUE(Contains(clean.stdout_text, "3 stream cursor(s) on 2 edge(s)"))
      << clean.stdout_text;
  EXPECT_TRUE(Contains(clean.stdout_text, "edge 7 @256"))
      << clean.stdout_text;
  EXPECT_TRUE(Contains(clean.stdout_text, "edge 9 @64")) << clean.stdout_text;

  RunResult dump =
      RunCli(StrCat(COMPTX_WALCHECK_BIN, " --dump ", dir.string()));
  EXPECT_EQ(dump.exit_code, 0);
  EXPECT_TRUE(Contains(dump.stdout_text,
                       "CURSOR seq=1 edge=7 cursor_seq=128 mapping_bytes=5"))
      << dump.stdout_text;

  // Tear through the last cursor record: damage is detected (exit 1)
  // and repair truncates back to a clean prefix (exit 0).
  {
    std::ifstream in(wal, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    std::ofstream out(wal, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 2));
  }
  RunResult torn = RunCli(StrCat(COMPTX_WALCHECK_BIN, " ", dir.string()));
  EXPECT_EQ(torn.exit_code, 1) << torn.stdout_text;
  EXPECT_TRUE(Contains(torn.stdout_text, "TORN")) << torn.stdout_text;
  RunResult repair =
      RunCli(StrCat(COMPTX_WALCHECK_BIN, " --repair ", dir.string()));
  EXPECT_EQ(repair.exit_code, 0) << repair.stdout_text;
  RunResult again = RunCli(StrCat(COMPTX_WALCHECK_BIN, " ", dir.string()));
  EXPECT_EQ(again.exit_code, 0) << again.stdout_text;
  EXPECT_TRUE(Contains(again.stdout_text, "2 stream cursor(s) on 2 edge(s)"))
      << again.stdout_text;
}

}  // namespace
}  // namespace comptx
