#include "core/front.h"

#include <gtest/gtest.h>

#include "core/observed_order.h"
#include "test_helpers.h"

namespace comptx {
namespace {

TEST(LevelZeroFrontTest, ContainsAllLeavesSorted) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  SystemContext ctx(stack.cs);
  Front front = MakeLevelZeroFront(ctx);
  EXPECT_EQ(front.level, 0u);
  EXPECT_EQ(front.nodes, (std::vector<NodeId>{stack.x1, stack.x2}));
  EXPECT_TRUE(front.ContainsNode(stack.x1));
  EXPECT_FALSE(front.ContainsNode(stack.s1));
}

TEST(LevelZeroFrontTest, LeafRuleSeedsObservedOrder) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  SystemContext ctx(stack.cs);
  Front front = MakeLevelZeroFront(ctx);
  // Leaf atomicity (Def 10.1): the schedule's weak output order between
  // leaves is observed.
  EXPECT_TRUE(front.observed.Contains(stack.x1, stack.x2));
  EXPECT_FALSE(front.observed.Contains(stack.x2, stack.x1));
  // The conflicting leaf pair is in the generalized conflict relation.
  EXPECT_TRUE(front.conflicts.Contains(stack.x1, stack.x2));
}

TEST(LevelZeroFrontTest, StrongOrdersPulledDown) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  CompositeSystem& cs = stack.cs;
  ASSERT_TRUE(cs.AddStrongInput(ScheduleId(1), stack.s1, stack.s2).ok());
  ASSERT_TRUE(cs.AddStrongOutput(stack.x1, stack.x2).ok());
  ASSERT_TRUE(cs.Validate().ok());
  SystemContext ctx(cs);
  Front front = MakeLevelZeroFront(ctx);
  // The strong input order between s1 and s2 forces x1 before x2 at the
  // leaf front.
  EXPECT_TRUE(front.strong_input.Contains(stack.x1, stack.x2));
  EXPECT_TRUE(front.weak_input.Contains(stack.x1, stack.x2));
}

TEST(ConflictConsistencyTest, AcyclicFrontIsCC) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  SystemContext ctx(stack.cs);
  Front front = MakeLevelZeroFront(ctx);
  EXPECT_TRUE(IsConflictConsistent(front));
}

TEST(ConflictConsistencyTest, CycleDetectedWithWitness) {
  Front front;
  front.level = 1;
  front.nodes = {NodeId(0), NodeId(1)};
  front.observed.Add(NodeId(0), NodeId(1));
  front.weak_input.Add(NodeId(1), NodeId(0));
  auto violation = FindConflictConsistencyViolation(front);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->nodes.size(), 2u);
  EXPECT_FALSE(IsConflictConsistent(front));
}

TEST(GeneralizedConflictTest, SameScheduleUsesDeclaredConflicts) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  SystemContext ctx(stack.cs);
  Front front = MakeLevelZeroFront(ctx);
  EXPECT_TRUE(GeneralizedConflict(ctx, front, stack.x1, stack.x2));
  // Same schedule without a declared conflict: no generalized conflict,
  // even if observed-related.
  Front fake = front;
  fake.observed.Add(stack.x2, stack.x1);
  EXPECT_TRUE(GeneralizedConflict(ctx, fake, stack.x1, stack.x2));
}

TEST(GeneralizedConflictTest, CrossScheduleUsesObservedOrder) {
  CompositeSystem cs = testing::MakeCrossAnomaly(/*top_conflicts=*/false);
  ASSERT_TRUE(cs.Validate().ok());
  SystemContext ctx(cs);
  Front front;
  front.level = 1;
  // Hand-build a front of the four subtransactions.
  std::vector<NodeId> subs;
  for (uint32_t v = 0; v < cs.NodeCount(); ++v) {
    const Node& n = cs.node(NodeId(v));
    if (n.IsTransaction() && !n.IsRoot()) subs.push_back(NodeId(v));
  }
  std::sort(subs.begin(), subs.end());
  front.nodes = subs;
  // a1 (op of ST) vs root-less pairing: a1 and b1 are both ops of ST with
  // no declared conflict there.
  NodeId a1 = subs[0];
  NodeId b1 = subs[2];
  front.observed.Add(a1, b1);
  EXPECT_FALSE(GeneralizedConflict(ctx, front, a1, b1))
      << "same host schedule without CON_S must not conflict";
}

}  // namespace
}  // namespace comptx
