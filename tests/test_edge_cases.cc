// Degenerate and boundary configurations: the checker must handle the
// smallest and oddest well-formed systems gracefully.

#include <gtest/gtest.h>

#include "analysis/builder.h"
#include "core/correctness.h"
#include "core/invocation_graph.h"
#include "criteria/compare.h"
#include "criteria/oracle.h"

namespace comptx {
namespace {

using analysis::CompositeSystemBuilder;

TEST(EdgeCaseTest, SingleRootSingleLeaf) {
  CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t = b.Root(s, "T");
  b.Leaf(t, "x");
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.Validate().ok());
  auto result = CheckCompC(cs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->correct);
  EXPECT_EQ(result->serial_order, (std::vector<NodeId>{t}));
}

TEST(EdgeCaseTest, TransactionWithNoOperations) {
  CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t1 = b.Root(s, "T1");
  b.Root(s, "T2");  // empty transaction.
  b.Leaf(t1, "x");
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.Validate().ok());
  auto result = CheckCompC(cs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->correct);
  EXPECT_EQ(result->serial_order.size(), 2u);
}

TEST(EdgeCaseTest, ScheduleWithNoTransactions) {
  CompositeSystemBuilder b;
  b.Schedule("unused");
  ScheduleId s = b.Schedule("S");
  NodeId t = b.Root(s, "T");
  b.Leaf(t, "x");
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.Validate().ok());
  EXPECT_TRUE(IsCompC(cs));
}

TEST(EdgeCaseTest, DeepDegenerateChain) {
  // One root, one subtransaction per level, six levels deep.
  CompositeSystemBuilder b;
  std::vector<ScheduleId> schedules;
  for (int i = 0; i < 6; ++i) {
    schedules.push_back(b.Schedule("S" + std::to_string(6 - i)));
  }
  NodeId current = b.Root(schedules[0], "T");
  for (int i = 1; i < 6; ++i) {
    current = b.Sub(current, schedules[i], "t" + std::to_string(i));
  }
  b.Leaf(current, "x");
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.Validate().ok());
  auto ig = BuildInvocationGraph(cs);
  ASSERT_TRUE(ig.ok());
  EXPECT_EQ(ig->order, 6u);
  auto result = CheckCompC(cs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->correct);
  EXPECT_EQ(result->reduction.fronts.size(), 7u);  // levels 0..6.
}

TEST(EdgeCaseTest, MixedLeafAndSubtransactionOperands) {
  // An internal schedule whose transactions have both leaves and
  // subtransactions ("an internal schedule can also have leaf
  // operations", Def 4 discussion).
  CompositeSystemBuilder b;
  ScheduleId top = b.Schedule("top");
  ScheduleId bottom = b.Schedule("bottom");
  NodeId t1 = b.Root(top, "T1");
  NodeId t2 = b.Root(top, "T2");
  NodeId local1 = b.Leaf(t1, "local1");
  NodeId sub1 = b.Sub(t1, bottom, "sub1");
  NodeId local2 = b.Leaf(t2, "local2");
  NodeId sub2 = b.Sub(t2, bottom, "sub2");
  b.Leaf(sub1, "x1");
  NodeId x2 = b.Leaf(sub2, "x2");
  NodeId x1 = b.NodeByName("x1");
  // Leaf-level conflict at the top schedule *and* at the bottom.
  b.Conflict(local1, local2);
  b.WeakOut(local1, local2);
  b.Conflict(x1, x2);
  b.WeakOut(x1, x2);
  (void)sub1;
  (void)sub2;
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.Validate().ok()) << cs.Validate().ToString();
  EXPECT_TRUE(IsCompC(cs));  // both say T1 first: consistent.

  // Now reverse the bottom's direction: inconsistent with the top-level
  // leaf conflict, so the execution must be rejected.
  CompositeSystemBuilder b2;
  ScheduleId top2 = b2.Schedule("top");
  ScheduleId bottom2 = b2.Schedule("bottom");
  NodeId u1 = b2.Root(top2, "T1");
  NodeId u2 = b2.Root(top2, "T2");
  NodeId l1 = b2.Leaf(u1, "local1");
  NodeId s1 = b2.Sub(u1, bottom2, "sub1");
  NodeId l2 = b2.Leaf(u2, "local2");
  NodeId s2 = b2.Sub(u2, bottom2, "sub2");
  NodeId y1 = b2.Leaf(s1, "x1");
  NodeId y2 = b2.Leaf(s2, "x2");
  b2.Conflict(l1, l2);
  b2.WeakOut(l1, l2);  // T1 first at the top...
  b2.Conflict(y2, y1);
  b2.WeakOut(y2, y1);  // ...T2 first below.
  CompositeSystem commuting_subs = b2.system().Clone();
  ASSERT_TRUE(commuting_subs.Validate().ok());
  // The top schedule does not declare sub1/sub2 conflicting, so it
  // vouches they commute: the bottom's reversed order is *forgotten* and
  // only the top's leaf conflict decides — accepted.  This is Def 10.3
  // overriding a lower-level conflict, the theory working as designed.
  EXPECT_TRUE(IsCompC(commuting_subs));

  // Declaring the subtransactions conflicting at the top (ordered like
  // the leaves, T1 first) keeps the bottom's reversed order alive: cycle.
  b2.Conflict(s1, s2);
  b2.WeakOut(s1, s2);
  b2.WeakIn(bottom2, s1, s2);
  CompositeSystem conflicting_subs = std::move(b2.Take());
  // Now the bottom's output contradicts its (propagated) input order —
  // the execution is not even a valid Def 3 schedule...
  EXPECT_FALSE(conflicting_subs.Validate().ok());
}

TEST(EdgeCaseTest, TwoIndependentTreesNeverInteract) {
  CompositeSystemBuilder b;
  ScheduleId sa = b.Schedule("A");
  ScheduleId sb = b.Schedule("B");
  NodeId t1 = b.Root(sa, "T1");
  NodeId t2 = b.Root(sb, "T2");
  b.Leaf(t1, "x");
  b.Leaf(t2, "y");
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.Validate().ok());
  auto result = CheckCompC(cs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->correct);
  // No observed order relates the independent roots.
  EXPECT_TRUE(result->reduction.FinalFront().observed.empty());
}

TEST(EdgeCaseTest, SelfContainedCriteriaOnDegenerateSystems) {
  CompositeSystem empty;
  auto verdicts = criteria::EvaluateAllCriteria(empty);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_TRUE(verdicts->comp_c);
  EXPECT_TRUE(verdicts->llsr);
  EXPECT_TRUE(verdicts->opsr);
  EXPECT_TRUE(verdicts->flat_csr);
  auto oracle = criteria::HierarchicalSerializabilityOracle(empty);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(*oracle);
}

TEST(EdgeCaseTest, WideFlatSchedule) {
  // One schedule, many roots, a serialization ring: each root has two
  // leaves; first leaves chain the roots forward, and the closing edge
  // uses the second leaves (the output order itself stays acyclic — the
  // cycle is in the serialization graph over roots).
  CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  constexpr int kRoots = 12;
  std::vector<NodeId> first;
  std::vector<NodeId> second;
  for (int i = 0; i < kRoots; ++i) {
    NodeId t = b.Root(s, "T" + std::to_string(i));
    first.push_back(b.Leaf(t, "x" + std::to_string(i)));
    second.push_back(b.Leaf(t, "y" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < kRoots; ++i) {
    b.Conflict(first[i], first[i + 1]);
    b.WeakOut(first[i], first[i + 1]);
  }
  CompositeSystem chain = b.system().Clone();
  ASSERT_TRUE(chain.Validate().ok());
  EXPECT_TRUE(IsCompC(chain));

  // Closing the ring through the second leaves: serialization cycle over
  // all twelve roots, while every relation stays a partial order.
  b.Conflict(second[kRoots - 1], second[0]);
  b.WeakOut(second[kRoots - 1], second[0]);
  CompositeSystem ring = std::move(b.Take());
  ASSERT_TRUE(ring.Validate().ok()) << ring.Validate().ToString();
  EXPECT_FALSE(IsCompC(ring));
}

}  // namespace
}  // namespace comptx
