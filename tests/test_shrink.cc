// Delta-debugging shrinker, witness JSON round-trip and end-to-end fuzz
// campaign tests — including the harness's key acceptance property: an
// intentionally injected decider bug is caught and shrunk to a witness
// with at most three root transactions that replays from its JSON form.

#include "testing/shrink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/correctness.h"
#include "testing/campaign.h"
#include "testing/events.h"
#include "testing/witness.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

using workload::TraceEvent;
using workload::TraceEventKind;

bool HasNodeNamed(const CompositeSystem& cs, const std::string& name) {
  for (uint32_t i = 0; i < cs.NodeCount(); ++i) {
    if (cs.node(NodeId(i)).name == name) return true;
  }
  return false;
}

StatusOr<std::vector<TraceEvent>> GenerateEvents(uint64_t seed,
                                                 std::string* root_name) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = 4;
  spec.execution.conflict_prob = 0.3;
  spec.execution.disorder_prob = 0.3;
  COMPTX_ASSIGN_OR_RETURN(CompositeSystem cs,
                          workload::GenerateSystem(spec, seed));
  if (root_name != nullptr) *root_name = cs.node(cs.Roots().back()).name;
  return testing::SystemToEvents(cs);
}

TEST(ShrinkTest, RequiresAFailingInput) {
  auto events = GenerateEvents(1, nullptr);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  auto result = testing::ShrinkEvents(
      *events, [](const CompositeSystem&) { return false; });
  EXPECT_FALSE(result.ok());
}

TEST(ShrinkTest, ShrinksToTheNamedRootsCreationChain) {
  std::string root_name;
  auto events = GenerateEvents(11, &root_name);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_GT(events->size(), 2u);
  testing::ShrinkStats stats;
  auto shrunk = testing::ShrinkEvents(
      *events,
      [&](const CompositeSystem& cs) { return HasNodeNamed(cs, root_name); },
      {}, &stats);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  // The minimal input keeping that root alive is its schedule + the root.
  EXPECT_EQ(shrunk->size(), 2u);
  EXPECT_TRUE(stats.one_minimal);
  EXPECT_EQ(stats.initial_events, events->size());
  EXPECT_EQ(stats.final_events, shrunk->size());
  EXPECT_GT(stats.accepted_steps, 0u);
  auto rebuilt = testing::BuildSystem(*shrunk);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(HasNodeNamed(*rebuilt, root_name));
}

TEST(ShrinkTest, NeverShrinksToAnEmptyTrace) {
  auto events = GenerateEvents(2, nullptr);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  // A predicate that holds on everything would license shrinking to
  // nothing; the shrinker must stop at one event so the witness stays
  // replayable.
  testing::ShrinkStats stats;
  auto shrunk = testing::ShrinkEvents(
      *events, [](const CompositeSystem&) { return true; }, {}, &stats);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_EQ(shrunk->size(), 1u);
  EXPECT_TRUE(stats.one_minimal);
}

TEST(ShrinkTest, PredicateBudgetCutsTheSearchShort) {
  auto events = GenerateEvents(3, nullptr);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  testing::ShrinkOptions options;
  options.max_predicate_calls = 3;
  testing::ShrinkStats stats;
  auto shrunk = testing::ShrinkEvents(
      *events, [](const CompositeSystem&) { return true; }, options, &stats);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_LE(stats.predicate_calls, options.max_predicate_calls);
  EXPECT_FALSE(stats.one_minimal);
  EXPECT_GE(shrunk->size(), 1u);
}

TEST(WitnessTest, JsonRoundTripsAndReplaysClean) {
  std::string root_name;
  auto events = GenerateEvents(5, &root_name);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  auto system = testing::BuildSystem(*events);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  testing::WitnessRecord record;
  record.id = "round-trip-5";
  record.seed = 5;
  record.check = "batch-vs-online";
  record.detail = "made up for the round trip: \"quoted\"\n\tand escaped";
  record.injected = "none";
  record.generator = "layered_dag depth=3";
  record.comp_c = IsCompC(*system);
  record.events_initial = events->size();
  record.events_final = events->size();
  record.events = *events;

  const std::string json = testing::FormatWitnessJson(record);
  auto parsed = testing::ParseWitnessJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, record.id);
  EXPECT_EQ(parsed->seed, record.seed);
  EXPECT_EQ(parsed->check, record.check);
  EXPECT_EQ(parsed->detail, record.detail);
  EXPECT_EQ(parsed->injected, record.injected);
  EXPECT_EQ(parsed->generator, record.generator);
  EXPECT_EQ(parsed->comp_c, record.comp_c);
  EXPECT_EQ(parsed->events_initial, record.events_initial);
  EXPECT_EQ(parsed->events_final, record.events_final);
  ASSERT_EQ(parsed->events.size(), record.events.size());
  for (size_t i = 0; i < record.events.size(); ++i) {
    EXPECT_EQ(workload::FormatTraceEvent(parsed->events[i]),
              workload::FormatTraceEvent(record.events[i]))
        << "event " << i;
  }

  auto outcome = testing::ReplayWitness(*parsed);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->Passed()) << outcome->message;
}

TEST(WitnessTest, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(testing::ParseWitnessJson("not json at all").ok());
  // Structurally fine but the mandatory trace array is missing.
  EXPECT_FALSE(testing::ParseWitnessJson("{\"id\": \"x\"}").ok());
  // A trace element that is not a trace line.
  EXPECT_FALSE(
      testing::ParseWitnessJson("{\"trace\": [\"bogus line\"]}").ok());
}

TEST(WitnessTest, ReplayRejectsEmptyTraces) {
  auto record = testing::ParseWitnessJson("{\"trace\": []}");
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_FALSE(testing::ReplayWitness(*record).ok());
}

TEST(CampaignTest, CleanCampaignFindsNoDisagreements) {
  testing::CampaignOptions options;
  options.seed = 3;
  options.traces = 15;
  options.prefix_check_every = 5;
  options.prefix_event_limit = 80;
  auto result = testing::RunFuzzCampaign(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const testing::WitnessRecord& w : result->witnesses) {
    ADD_FAILURE() << "seed " << w.seed << " (" << w.generator << "): "
                  << w.check << ": " << w.detail;
  }
  EXPECT_EQ(result->stats.traces, options.traces);
  EXPECT_EQ(result->stats.metamorphic_checked, options.traces);
  EXPECT_GT(result->stats.comp_c_count, 0u);
  EXPECT_GT(result->stats.prefix_checked, 0u);
  EXPECT_GT(result->stats.total_events, 0u);
}

/// The acceptance property: a flipped-oracle bug behind the test-only
/// injection flag is caught, shrunk to <= 3 root transactions, and the
/// resulting witness replays from JSON (injection still detected).
TEST(CampaignTest, InjectedOracleBugIsCaughtAndShrunkTiny) {
  testing::CampaignOptions options;
  options.seed = 7;
  options.traces = 6;
  options.differential.inject = testing::InjectedBug::kFlipOracle;
  options.run_metamorphic = false;
  auto result = testing::RunFuzzCampaign(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->clean());
  for (const testing::WitnessRecord& w : result->witnesses) {
    EXPECT_EQ(w.check, "batch-vs-oracle") << w.detail;
    EXPECT_EQ(w.injected, "flip-oracle");
    ASSERT_FALSE(w.events.empty());
    EXPECT_LE(w.events_final, w.events_initial);
    const auto roots = std::count_if(
        w.events.begin(), w.events.end(),
        [](const TraceEvent& e) { return e.kind == TraceEventKind::kRoot; });
    EXPECT_LE(roots, 3) << "witness " << w.id << " is not minimal";

    auto parsed = testing::ParseWitnessJson(testing::FormatWitnessJson(w));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto outcome = testing::ReplayWitness(*parsed);
    ASSERT_TRUE(outcome.ok())
        << "witness " << w.id << ": " << outcome.status().ToString();
    EXPECT_TRUE(outcome->Passed())
        << "witness " << w.id << ": " << outcome->message;
  }
}

TEST(CampaignTest, InjectedOnlineBugIsCaughtOnEveryTrace) {
  testing::CampaignOptions options;
  options.seed = 12;
  options.traces = 4;
  options.differential.inject = testing::InjectedBug::kFlipOnline;
  options.run_metamorphic = false;
  auto result = testing::RunFuzzCampaign(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The online verdict is flipped unconditionally, so every trace fails.
  EXPECT_EQ(result->stats.failing_traces, options.traces);
  ASSERT_EQ(result->witnesses.size(), options.traces);
  for (const testing::WitnessRecord& w : result->witnesses) {
    EXPECT_EQ(w.check, "batch-vs-online") << w.detail;
    auto outcome = testing::ReplayWitness(w);
    ASSERT_TRUE(outcome.ok())
        << "witness " << w.id << ": " << outcome.status().ToString();
    EXPECT_TRUE(outcome->Passed())
        << "witness " << w.id << ": " << outcome->message;
  }
}

}  // namespace
}  // namespace comptx
