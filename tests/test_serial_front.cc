#include "core/serial_front.h"

#include <gtest/gtest.h>

#include "core/correctness.h"
#include "test_helpers.h"

namespace comptx {
namespace {

Front MakeSimpleFront() {
  Front front;
  front.level = 2;
  front.nodes = {NodeId(0), NodeId(1), NodeId(2)};
  front.observed.Add(NodeId(0), NodeId(1));
  front.weak_input.Add(NodeId(1), NodeId(2));
  return front;
}

TEST(SerialFrontTest, SerializeRespectsAllOrders) {
  Front front = MakeSimpleFront();
  auto order = SerializeFront(front);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(2)}));
}

TEST(SerialFrontTest, SerializeFailsOnCycle) {
  Front front = MakeSimpleFront();
  front.observed.Add(NodeId(2), NodeId(0));
  EXPECT_FALSE(SerializeFront(front).ok());
}

TEST(SerialFrontTest, MakeSerialFrontIsSerial) {
  Front front = MakeSimpleFront();
  EXPECT_FALSE(IsSerialFront(front));
  auto order = SerializeFront(front);
  ASSERT_TRUE(order.ok());
  Front serial = MakeSerialFront(front, *order);
  EXPECT_TRUE(IsSerialFront(serial));
  // Theorem 1: the serial front level-contains the reduced front.
  EXPECT_TRUE(LevelContains(serial, front));
}

TEST(SerialFrontTest, LevelContainsRequiresAllOrders) {
  Front front = MakeSimpleFront();
  // A serial front with the wrong direction does not contain the front.
  Front wrong = MakeSerialFront(
      front, {NodeId(2), NodeId(1), NodeId(0)});
  EXPECT_TRUE(IsSerialFront(wrong));
  EXPECT_FALSE(LevelContains(wrong, front));
}

TEST(SerialFrontTest, EquivalenceComparesClosures) {
  Front a = MakeSimpleFront();
  Front b = MakeSimpleFront();
  // Adding a pair implied by transitivity keeps the closed orders equal...
  a.observed.Add(NodeId(0), NodeId(1));
  EXPECT_TRUE(FrontsEquivalent(a, b));
  // ...but a genuinely new pair does not.
  a.observed.Add(NodeId(2), NodeId(1));
  EXPECT_FALSE(FrontsEquivalent(a, b));
}

TEST(SerialFrontTest, EquivalenceRequiresSameNodes) {
  Front a = MakeSimpleFront();
  Front b = MakeSimpleFront();
  b.nodes.push_back(NodeId(3));
  EXPECT_FALSE(FrontsEquivalent(a, b));
}

TEST(SerialFrontTest, CompCWitnessContainsFinalFront) {
  // End-to-end Theorem 1 check on a real system.
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/true);
  auto result = CheckCompC(stack.cs);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->correct);
  Front serial =
      MakeSerialFront(result->reduction.FinalFront(), result->serial_order);
  EXPECT_TRUE(IsSerialFront(serial));
  EXPECT_TRUE(LevelContains(serial, result->reduction.FinalFront()));
}

}  // namespace
}  // namespace comptx
