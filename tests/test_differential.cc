// Tests for the differential conformance harness (src/testing): on valid
// generated systems every decider must agree; each injectable decider
// fault must be detected as the right disagreement kind; metamorphic
// transforms must leave every verdict unchanged.

#include "testing/differential.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/correctness.h"
#include "test_helpers.h"
#include "testing/events.h"
#include "testing/metamorphic.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

using workload::TopologyKind;

workload::WorkloadSpec MakeSpec(TopologyKind kind) {
  workload::WorkloadSpec spec;
  spec.topology.kind = kind;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = 3;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.3;
  spec.execution.disorder_prob = 0.35;
  spec.execution.intra_weak_prob = 0.25;
  spec.execution.intra_strong_prob = 0.1;
  return spec;
}

constexpr TopologyKind kAllKinds[] = {
    TopologyKind::kStack, TopologyKind::kFork, TopologyKind::kJoin,
    TopologyKind::kLayeredDag};

TEST(DifferentialTest, AllDecidersAgreeOnGeneratedSystems) {
  for (TopologyKind kind : kAllKinds) {
    const workload::WorkloadSpec spec = MakeSpec(kind);
    for (uint64_t seed = 1; seed <= 15; ++seed) {
      auto cs = workload::GenerateSystem(spec, seed);
      ASSERT_TRUE(cs.ok())
          << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
          << "): " << cs.status().ToString();
      testing::DifferentialOptions options;
      options.prefix_event_limit = 100;  // quadratic check on small streams
      auto report = testing::CheckConformance(*cs, options);
      ASSERT_TRUE(report.ok())
          << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
          << "): " << report.status().ToString();
      EXPECT_TRUE(report->agreed())
          << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
          << "): " << report->Summary();
    }
  }
}

TEST(DifferentialTest, InvalidSystemIsAStatusError) {
  // A conflict without the weak output order Def 3.1 demands.
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(stack.cs.AddConflict(stack.s1, stack.s2).ok());
  EXPECT_FALSE(testing::CheckConformance(stack.cs).ok());
}

TEST(DifferentialTest, ReportSummaryListsEveryDisagreement) {
  testing::DifferentialReport report;
  EXPECT_TRUE(report.agreed());
  EXPECT_EQ(report.Summary(), "");
  report.disagreements.push_back({"batch-vs-online", "verdicts differ"});
  report.disagreements.push_back({"batch-vs-oracle", "soundness"});
  EXPECT_FALSE(report.agreed());
  EXPECT_EQ(report.Summary(),
            "batch-vs-online: verdicts differ; batch-vs-oracle: soundness");
}

TEST(DifferentialTest, InjectedFaultsAreDetectedOnStacks) {
  // Stacks make every decider applicable and exact, so a flipped verdict
  // must surface on every single trace.
  const workload::WorkloadSpec spec = MakeSpec(TopologyKind::kStack);
  const struct {
    testing::InjectedBug bug;
    const char* check;
  } cases[] = {
      {testing::InjectedBug::kFlipOracle, "batch-vs-oracle"},
      {testing::InjectedBug::kFlipOnline, "batch-vs-online"},
      {testing::InjectedBug::kFlipCriteria, "batch-vs-scc"},
      // Stacks are always statically decided (Theorem 2), so the flip
      // must be caught on every trace too.
      {testing::InjectedBug::kFlipStatic, "batch-vs-static"},
  };
  for (const auto& c : cases) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      auto cs = workload::GenerateSystem(spec, seed);
      ASSERT_TRUE(cs.ok())
          << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
          << "): " << cs.status().ToString();
      testing::DifferentialOptions options;
      options.inject = c.bug;
      auto report = testing::CheckConformance(*cs, options);
      ASSERT_TRUE(report.ok())
          << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
          << "): " << report.status().ToString();
      const bool found = std::any_of(
          report->disagreements.begin(), report->disagreements.end(),
          [&](const testing::Disagreement& d) { return d.check == c.check; });
      EXPECT_TRUE(found)
          << testing::InjectedBugToString(c.bug) << " not reported as "
          << c.check << ": seed " << seed << " ("
          << workload::DescribeWorkloadSpec(spec)
          << "), got: " << report->Summary();
    }
  }
}

TEST(DifferentialTest, AllDecidersAgreeOnAdtWorkloads) {
  // Spec-carrying systems: every decider consults EffectiveConflict, and
  // the semantic-mask decider cross-checks the materialized erasure.
  constexpr workload::AdtMix kMixes[] = {
      workload::AdtMix::kCounter, workload::AdtMix::kEscrow,
      workload::AdtMix::kMixed};
  for (TopologyKind kind : kAllKinds) {
    for (workload::AdtMix mix : kMixes) {
      workload::WorkloadSpec spec = MakeSpec(kind);
      spec.execution.adt = mix;
      spec.execution.adt_instances = 2;
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        auto cs = workload::GenerateSystem(spec, seed);
        ASSERT_TRUE(cs.ok())
            << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
            << "): " << cs.status().ToString();
        ASSERT_TRUE(cs->HasSpec());
        testing::DifferentialOptions options;
        auto report = testing::CheckConformance(*cs, options);
        ASSERT_TRUE(report.ok())
            << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
            << "): " << report.status().ToString();
        EXPECT_TRUE(report->agreed())
            << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
            << "): " << report->Summary();
      }
    }
  }
}

TEST(DifferentialTest, FlipCommutesIsDetectedOnForgottenOrderDemo) {
  // The demo's verdict hinges on the one erased pair, so re-materializing
  // it (the injected bug) must flip the masked clone's verdict.
  testing::SemanticCrossDemo demo = testing::MakeSemanticCrossDemo(true);
  {
    auto clean = testing::CheckConformance(demo.cs);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_TRUE(clean->comp_c) << "spec should rescue the cross anomaly";
    EXPECT_TRUE(clean->agreed()) << clean->Summary();
  }
  testing::DifferentialOptions options;
  options.inject = testing::InjectedBug::kFlipCommutes;
  auto report = testing::CheckConformance(demo.cs, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const bool found = std::any_of(
      report->disagreements.begin(), report->disagreements.end(),
      [](const testing::Disagreement& d) {
        return d.check == "batch-vs-semantic";
      });
  EXPECT_TRUE(found) << "flip-commutes not reported as batch-vs-semantic: "
                     << report->Summary();
}

TEST(DifferentialTest, UntaggedCrossDemoStaysIncorrect) {
  testing::SemanticCrossDemo demo = testing::MakeSemanticCrossDemo(false);
  auto report = testing::CheckConformance(demo.cs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->comp_c);
  EXPECT_TRUE(report->agreed()) << report->Summary();
}

TEST(MetamorphicTest, TransformsPreserveEveryVerdict) {
  for (TopologyKind kind : kAllKinds) {
    const workload::WorkloadSpec spec = MakeSpec(kind);
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      auto cs = workload::GenerateSystem(spec, seed);
      ASSERT_TRUE(cs.ok())
          << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
          << "): " << cs.status().ToString();
      auto base = CheckCompC(*cs);
      ASSERT_TRUE(base.ok())
          << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
          << "): " << base.status().ToString();
      testing::MetamorphicOptions options;
      auto disagreements =
          testing::CheckMetamorphic(*cs, base->correct, options, seed);
      ASSERT_TRUE(disagreements.ok())
          << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
          << "): " << disagreements.status().ToString();
      for (const testing::Disagreement& d : *disagreements) {
        ADD_FAILURE() << "seed " << seed << " ("
                      << workload::DescribeWorkloadSpec(spec) << "): "
                      << d.check << ": " << d.detail;
      }
    }
  }
}

TEST(MetamorphicTest, RenameChangesOnlyNames) {
  const workload::WorkloadSpec spec = MakeSpec(TopologyKind::kFork);
  auto cs = workload::GenerateSystem(spec, 3);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  auto events = testing::SystemToEvents(*cs);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  Rng rng(17);
  std::vector<workload::TraceEvent> renamed = testing::ApplyMetamorphic(
      testing::MetamorphicKind::kRename, *events, rng);
  ASSERT_EQ(renamed.size(), events->size());
  for (size_t i = 0; i < renamed.size(); ++i) {
    EXPECT_EQ(renamed[i].kind, (*events)[i].kind) << "event " << i;
    if (testing::IsCreationEvent((*events)[i])) {
      EXPECT_NE(renamed[i].name, (*events)[i].name) << "event " << i;
    }
  }
  auto rebuilt = testing::BuildSystem(renamed);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  ASSERT_TRUE(rebuilt->Validate().ok());
  EXPECT_EQ(IsCompC(*rebuilt), IsCompC(*cs));
}

TEST(MetamorphicTest, ShuffleRespectsDependenciesAndVerdict) {
  const workload::WorkloadSpec spec = MakeSpec(TopologyKind::kLayeredDag);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto cs = workload::GenerateSystem(spec, seed);
    ASSERT_TRUE(cs.ok()) << cs.status().ToString();
    auto events = testing::SystemToEvents(*cs);
    ASSERT_TRUE(events.ok()) << events.status().ToString();
    Rng rng(seed * 31);
    std::vector<workload::TraceEvent> shuffled = testing::ApplyMetamorphic(
        testing::MetamorphicKind::kShuffle, *events, rng);
    ASSERT_EQ(shuffled.size(), events->size()) << "seed " << seed;
    auto rebuilt = testing::BuildSystem(shuffled);
    ASSERT_TRUE(rebuilt.ok())
        << "seed " << seed << " (" << workload::DescribeWorkloadSpec(spec)
        << "): " << rebuilt.status().ToString();
    ASSERT_TRUE(rebuilt->Validate().ok()) << "seed " << seed;
    EXPECT_EQ(IsCompC(*rebuilt), IsCompC(*cs)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace comptx
