#include "core/composite_system.h"

#include <gtest/gtest.h>

#include "analysis/builder.h"
#include "test_helpers.h"

namespace comptx {
namespace {

TEST(CompositeSystemTest, ConstructionBasics) {
  CompositeSystem cs;
  ScheduleId top = cs.AddSchedule("top");
  ScheduleId bottom = cs.AddSchedule("bottom");
  EXPECT_EQ(cs.ScheduleCount(), 2u);

  auto root = cs.AddRootTransaction(top, "T1");
  ASSERT_TRUE(root.ok());
  auto sub = cs.AddSubtransaction(*root, bottom, "t1");
  ASSERT_TRUE(sub.ok());
  auto leaf = cs.AddLeaf(*sub, "x");
  ASSERT_TRUE(leaf.ok());

  EXPECT_TRUE(cs.node(*root).IsRoot());
  EXPECT_TRUE(cs.node(*sub).IsTransaction());
  EXPECT_FALSE(cs.node(*sub).IsRoot());
  EXPECT_TRUE(cs.node(*leaf).IsLeaf());
  EXPECT_EQ(cs.node(*sub).parent, *root);
  EXPECT_EQ(cs.node(*sub).owner_schedule, bottom);
  EXPECT_EQ(cs.HostScheduleOf(*sub), top);
  EXPECT_EQ(cs.HostScheduleOf(*leaf), bottom);
  EXPECT_FALSE(cs.HostScheduleOf(*root).valid());
}

TEST(CompositeSystemTest, RejectsBadReferences) {
  CompositeSystem cs;
  ScheduleId s = cs.AddSchedule("s");
  EXPECT_FALSE(cs.AddRootTransaction(ScheduleId(9), "T").ok());
  auto root = cs.AddRootTransaction(s, "T");
  ASSERT_TRUE(root.ok());
  auto leaf = cs.AddLeaf(*root, "x");
  ASSERT_TRUE(leaf.ok());
  // Leaves cannot parent anything.
  EXPECT_FALSE(cs.AddLeaf(*leaf, "y").ok());
  EXPECT_FALSE(cs.AddSubtransaction(*leaf, s, "t").ok());
}

TEST(CompositeSystemTest, RejectsDirectSelfInvocation) {
  CompositeSystem cs;
  ScheduleId s = cs.AddSchedule("s");
  auto root = cs.AddRootTransaction(s, "T");
  ASSERT_TRUE(root.ok());
  // An operation of T scheduled by T's own scheduler = s invoking itself.
  EXPECT_FALSE(cs.AddSubtransaction(*root, s, "t").ok());
}

TEST(CompositeSystemTest, RootsLeavesOperations) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  const CompositeSystem& cs = stack.cs;
  EXPECT_EQ(cs.Roots(), (std::vector<NodeId>{stack.t1, stack.t2}));
  EXPECT_EQ(cs.Leaves(), (std::vector<NodeId>{stack.x1, stack.x2}));
  EXPECT_EQ(cs.OperationsOf(ScheduleId(0)),
            (std::vector<NodeId>{stack.s1, stack.s2}));
  EXPECT_EQ(cs.OperationsOf(ScheduleId(1)),
            (std::vector<NodeId>{stack.x1, stack.x2}));
}

TEST(CompositeSystemTest, DescendantsAndRootOf) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  const CompositeSystem& cs = stack.cs;
  EXPECT_EQ(cs.Descendants(stack.t1),
            (std::vector<NodeId>{stack.s1, stack.x1}));
  EXPECT_EQ(cs.RootOf(stack.x2), stack.t2);
  EXPECT_EQ(cs.RootOf(stack.t1), stack.t1);
}

TEST(CompositeSystemTest, PairMutatorsValidateHostSchedule) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  CompositeSystem& cs = stack.cs;
  // x1 (SB op) and s2 (ST op) are not co-scheduled.
  EXPECT_FALSE(cs.AddConflict(stack.x1, stack.s2).ok());
  EXPECT_FALSE(cs.AddWeakOutput(stack.x1, stack.s2).ok());
  // Reflexive pairs rejected.
  EXPECT_FALSE(cs.AddWeakOutput(stack.x1, stack.x1).ok());
  // Roots are not operations of any schedule.
  EXPECT_FALSE(cs.AddConflict(stack.t1, stack.t2).ok());
  // Input orders need transactions of the named schedule.
  EXPECT_FALSE(cs.AddWeakInput(ScheduleId(0), stack.s1, stack.s2).ok());
  EXPECT_TRUE(cs.AddWeakInput(ScheduleId(1), stack.s1, stack.s2).ok());
  // Intra orders need operations of the named transaction.
  EXPECT_FALSE(cs.AddIntraWeak(stack.t1, stack.x1, stack.x2).ok());
  EXPECT_TRUE(cs.AddIntraWeak(stack.s1, stack.x1, stack.x1).ok() == false);
}

TEST(CompositeSystemTest, StrongImpliesWeak) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  CompositeSystem& cs = stack.cs;
  ASSERT_TRUE(cs.AddStrongOutput(stack.x1, stack.x2).ok());
  EXPECT_TRUE(cs.schedule(ScheduleId(1)).weak_output.Contains(stack.x1,
                                                              stack.x2));
  ASSERT_TRUE(cs.AddStrongInput(ScheduleId(1), stack.s1, stack.s2).ok());
  EXPECT_TRUE(
      cs.schedule(ScheduleId(1)).weak_input.Contains(stack.s1, stack.s2));
}

TEST(CompositeSystemTest, CloneIsDeep) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  CompositeSystem copy = stack.cs.Clone();
  ASSERT_TRUE(copy.AddConflict(stack.s1, stack.s2).ok());
  EXPECT_TRUE(copy.schedule(ScheduleId(0)).conflicts.Contains(stack.s1,
                                                              stack.s2));
  EXPECT_FALSE(stack.cs.schedule(ScheduleId(0))
                   .conflicts.Contains(stack.s1, stack.s2));
}

TEST(SubtreeIndexTest, MembershipQueries) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  SubtreeIndex index(stack.cs);
  EXPECT_TRUE(index.InSubtree(stack.t1, stack.t1));
  EXPECT_TRUE(index.InSubtree(stack.t1, stack.s1));
  EXPECT_TRUE(index.InSubtree(stack.t1, stack.x1));
  EXPECT_FALSE(index.InSubtree(stack.t1, stack.x2));
  EXPECT_FALSE(index.InSubtree(stack.s1, stack.t1));
}

}  // namespace
}  // namespace comptx
