// Distributed composite certification (DESIGN.md §15): topology spec
// parsing, component-aligned trace partitioning, in-process two-server
// stream replication with the cross-node two-phase commit, and the
// cross-feature interop path (v1/v2 frames interleaved on one
// connection driving commit_through watermarks and ADT commutativity
// tags in the same session).
//
// The multi-process paths (fork/exec, SIGKILL + resubscribe-from-LSN)
// are covered by the comptx_topology CLI drill in test_cli.cc and the
// CI distributed-smoke job; here every server lives in-process so the
// suite stays fast and sanitizer-friendly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "distributed/controller.h"
#include "distributed/topology.h"
#include "online/certifier.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/socket.h"
#include "util/string_util.h"
#include "workload/trace.h"

namespace comptx {
namespace {

using service::CertificationServer;
using service::CommandKind;
using service::Endpoint;
using service::ServerOptions;
using service::ServiceClient;
using workload::TraceEvent;
using workload::TraceEventKind;

TraceEvent Make(TraceEventKind kind, std::string name = "",
                uint32_t schedule = kInvalidIndex,
                uint32_t parent = kInvalidIndex, uint32_t a = kInvalidIndex,
                uint32_t b = kInvalidIndex) {
  TraceEvent event;
  event.kind = kind;
  event.name = std::move(name);
  event.schedule = schedule;
  event.parent = parent;
  event.a = a;
  event.b = b;
  return event;
}

// ------------------------------------------------------- topology specs

TEST(TopologySpecTest, ParsesForkJoin) {
  auto spec = distributed::ParseTopologySpec(
      "# comptx-topology v1\n"
      "node root\n"
      "node left\n"
      "node right\n"
      "edge root left\n"
      "edge root right\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->nodes.size(), 3u);
  EXPECT_EQ(spec->root, spec->Find("root"));
  ASSERT_EQ(spec->leaves.size(), 2u);
  EXPECT_EQ(spec->children[spec->root].size(), 2u);
  EXPECT_EQ(spec->parent_of[spec->Find("left")], spec->root);
  EXPECT_EQ(spec->parent_of[spec->root], kInvalidIndex);
  EXPECT_EQ(spec->Find("nope"), kInvalidIndex);
}

TEST(TopologySpecTest, ParsesDeeperChain) {
  auto spec = distributed::ParseTopologySpec(
      "# comptx-topology v1\n"
      "node a\nnode b\nnode c\n"
      "edge a b\nedge b c\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->root, spec->Find("a"));
  ASSERT_EQ(spec->leaves.size(), 1u);
  EXPECT_EQ(spec->leaves[0], spec->Find("c"));
}

TEST(TopologySpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      // missing version header
      "node a\n",
      // duplicate node
      "# comptx-topology v1\nnode a\nnode a\n",
      // self edge
      "# comptx-topology v1\nnode a\nedge a a\n",
      // unknown child
      "# comptx-topology v1\nnode a\nedge a b\n",
      // two parents for c
      "# comptx-topology v1\nnode a\nnode b\nnode c\n"
      "edge a c\nedge b c\n",
      // two roots (forest, not a tree)
      "# comptx-topology v1\nnode a\nnode b\nnode c\nedge a b\n",
      // no nodes at all
      "# comptx-topology v1\n",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(distributed::ParseTopologySpec(text).ok())
        << "accepted malformed spec:\n"
        << text;
  }
}

// --------------------------------------------------- trace partitioning

TEST(GenerateGroupedTraceTest, DeterministicWithExactRootCount) {
  auto first = distributed::GenerateGroupedTrace(7, 20260814, 0.0);
  auto second = distributed::GenerateGroupedTrace(7, 20260814, 0.0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  size_t roots = 0;
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ(workload::FormatTraceEvent((*first)[i]),
              workload::FormatTraceEvent((*second)[i]));
    if ((*first)[i].kind == TraceEventKind::kRoot) ++roots;
  }
  EXPECT_EQ(roots, 7u);
}

TEST(PartitionTraceTest, GroupsSpreadAndAccountingHolds) {
  auto trace = distributed::GenerateGroupedTrace(6, 20260814, 0.0);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  auto partition = distributed::PartitionTrace(*trace, 2, 2);
  ASSERT_TRUE(partition.ok()) << partition.status().ToString();

  // 6 roots in 3-root groups => 2 independent components, one per leaf.
  EXPECT_EQ(partition->components, 2u);
  ASSERT_EQ(partition->leaf_phases.size(), 2u);
  for (const auto& phases : partition->leaf_phases) {
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_FALSE(phases[0].empty());
  }
  EXPECT_EQ(partition->dropped_commits, 0u);

  // Every broadcast lands in every leaf's phase 0; the root dedups them
  // back to one copy, so the expected watermark counts broadcasts once
  // plus every non-broadcast event once.
  size_t broadcasts = 0;
  for (const auto& event : *trace) {
    if (event.kind == TraceEventKind::kSchedule ||
        event.kind == TraceEventKind::kAdtDecl ||
        event.kind == TraceEventKind::kAdtOp ||
        event.kind == TraceEventKind::kCommute ||
        event.kind == TraceEventKind::kClash) {
      ++broadcasts;
    }
  }
  EXPECT_EQ(partition->broadcast_events, broadcasts);
  ASSERT_FALSE(partition->expected_root_events.empty());
  EXPECT_EQ(partition->expected_root_events.back(), trace->size());
  ASSERT_FALSE(partition->roots_through.empty());
  EXPECT_EQ(partition->roots_through.back(), 6u);
  // Cumulative counters are monotone.
  for (size_t i = 1; i < partition->expected_root_events.size(); ++i) {
    EXPECT_GE(partition->expected_root_events[i],
              partition->expected_root_events[i - 1]);
    EXPECT_GE(partition->roots_through[i], partition->roots_through[i - 1]);
  }
}

TEST(PartitionTraceTest, LeafSlicesReplayCleanlyAfterRenumbering) {
  auto trace = distributed::GenerateGroupedTrace(6, 20260814, 0.0);
  ASSERT_TRUE(trace.ok());
  auto partition = distributed::PartitionTrace(*trace, 2, 2);
  ASSERT_TRUE(partition.ok());
  // Renumbered slices must be self-consistent executions: a fresh
  // certifier accepts every event of every phase in order.
  for (const auto& phases : partition->leaf_phases) {
    online::Certifier certifier{online::CertifierOptions{}};
    for (const auto& phase : phases) {
      for (const auto& event : phase) {
        const Status ingested = certifier.Ingest(event);
        EXPECT_TRUE(ingested.ok())
            << workload::FormatTraceEvent(event) << ": " << ingested;
      }
    }
    EXPECT_TRUE(certifier.Verdict().certifiable);
  }
}

TEST(PartitionTraceTest, CommitEventsAreDropped) {
  auto trace = distributed::GenerateGroupedTrace(3, 20260814, 0.0);
  ASSERT_TRUE(trace.ok());
  trace->push_back(Make(TraceEventKind::kCommitThrough, "", kInvalidIndex,
                        kInvalidIndex, /*a=*/1));
  auto partition = distributed::PartitionTrace(*trace, 1, 1);
  ASSERT_TRUE(partition.ok()) << partition.status().ToString();
  EXPECT_EQ(partition->dropped_commits, 1u);
  EXPECT_EQ(partition->expected_root_events.back(), trace->size() - 1);
}

TEST(PartitionTraceTest, SharedAdtInstanceUnionsComponents) {
  // Two otherwise unrelated single-root trees whose operations touch the
  // same ADT instance: the semantic conflict mask can derive conflicts
  // between them, so the partitioner must keep them on one leaf.
  std::vector<TraceEvent> trace;
  trace.push_back(Make(TraceEventKind::kSchedule, "s0"));
  trace.push_back(Make(TraceEventKind::kRoot, "r0", 0));
  trace.push_back(Make(TraceEventKind::kRoot, "r1", 0));
  trace.push_back(Make(TraceEventKind::kAdtDecl, "counter"));
  trace.push_back(Make(TraceEventKind::kAdtOp, "inc", kInvalidIndex,
                       kInvalidIndex, /*a=*/0));
  trace.push_back(Make(TraceEventKind::kTag, "", kInvalidIndex,
                       /*parent=*/0, /*a=*/0, /*b=*/7));
  trace.push_back(Make(TraceEventKind::kTag, "", kInvalidIndex,
                       /*parent=*/1, /*a=*/0, /*b=*/7));
  auto shared = distributed::PartitionTrace(trace, 2, 1);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  EXPECT_EQ(shared->components, 1u);

  // Distinct instances keep the trees separable.
  trace.back().b = 8;
  auto disjoint = distributed::PartitionTrace(trace, 2, 1);
  ASSERT_TRUE(disjoint.ok());
  EXPECT_EQ(disjoint->components, 2u);
}

TEST(PartitionTraceTest, DanglingReferenceIsRejected) {
  std::vector<TraceEvent> trace;
  trace.push_back(Make(TraceEventKind::kSchedule, "s0"));
  trace.push_back(Make(TraceEventKind::kRoot, "r0", 0));
  trace.push_back(Make(TraceEventKind::kConflict, "", kInvalidIndex,
                       kInvalidIndex, /*a=*/0, /*b=*/5));
  EXPECT_FALSE(distributed::PartitionTrace(trace, 1, 1).ok());
}

// ------------------------------------- in-process two-server topology

struct Node {
  CertificationServer server;
  distributed::NodeController controller;
  Endpoint endpoint;

  explicit Node(const ServerOptions& options = ServerOptions{})
      : server(options), controller(&server, {}) {
    server.SetDistributedHandler([this](const service::Request& request) {
      return controller.Handle(request);
    });
  }

  Status Listen() { return server.Listen(endpoint); }
};

TEST(DistributedTwoServerTest, StreamReplicationAndTwoPhaseCommit) {
  Node child;
  Node parent;
  ASSERT_TRUE(child.Listen().ok());
  ASSERT_TRUE(parent.Listen().ok());

  auto child_client =
      ServiceClient::Dial(child.endpoint, service::WireProtocol::kV2);
  ASSERT_TRUE(child_client.ok()) << child_client.status().ToString();
  auto child_session = child_client->Open("stream=1");
  ASSERT_TRUE(child_session.ok()) << child_session.status().ToString();

  auto parent_client =
      ServiceClient::Dial(parent.endpoint, service::WireProtocol::kV2);
  ASSERT_TRUE(parent_client.ok());
  auto parent_session = parent_client->Open("stream=1");
  ASSERT_TRUE(parent_session.ok());

  auto attached = parent_client->Command(
      CommandKind::kAttach, *parent_session,
      StrCat("edge=1 host=127.0.0.1 port=", child.endpoint.port,
             " remote=", *child_session));
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  ASSERT_TRUE(attached->ok) << attached->error_code << ": "
                            << attached->error_message;

  auto trace = distributed::GenerateGroupedTrace(3, 20260814, 0.0);
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(child_client->Append(*child_session, *trace).ok());

  // Barrier: wait until the parent's stream holds every replicated
  // event (STREAM max=0 long-polls on the watermark).
  const uint64_t expected = trace->size();
  uint64_t watermark = 0;
  for (int spin = 0; spin < 40 && watermark < expected; ++spin) {
    auto streamed = parent_client->Command(
        CommandKind::kStream, *parent_session,
        StrCat("from=", expected, " max=0 wait_ms=500 sub=0"));
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    ASSERT_TRUE(streamed->ok);
    watermark = static_cast<uint64_t>(streamed->FieldInt("watermark"));
  }
  ASSERT_EQ(watermark, expected) << "replication stalled";

  // Two-phase commit from the parent: PREPARE recursively seals the
  // child, then the local commit_through lands and the verdict reports
  // the advanced watermark on both nodes.
  auto prepared = parent_client->Command(CommandKind::kPrepare,
                                         *parent_session, "k=3");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_TRUE(prepared->ok) << prepared->error_code << ": "
                            << prepared->error_message;
  auto decided = parent_client->Command(CommandKind::kDecide,
                                        *parent_session, "k=3");
  ASSERT_TRUE(decided.ok());
  EXPECT_TRUE(decided->ok);

  auto parent_verdict = parent_client->Query(*parent_session);
  ASSERT_TRUE(parent_verdict.ok());
  EXPECT_EQ(parent_verdict->events_rejected, 0u);
  EXPECT_EQ(parent_verdict->commit_watermark, 3u);
  auto child_verdict = child_client->Query(*child_session);
  ASSERT_TRUE(child_verdict.ok());
  EXPECT_EQ(child_verdict->commit_watermark, 3u);

  // Differential: a single-process certifier fed the same events and
  // watermark agrees with the distributed verdict.
  online::Certifier replay{online::CertifierOptions{}};
  for (const auto& event : *trace) ASSERT_TRUE(replay.Ingest(event).ok());
  ASSERT_TRUE(
      replay
          .Ingest(Make(TraceEventKind::kCommitThrough, "", kInvalidIndex,
                       kInvalidIndex, /*a=*/3))
          .ok());
  EXPECT_EQ(parent_verdict->certifiable, replay.Verdict().certifiable);

  parent.server.Shutdown();
  child.server.Shutdown();
}

TEST(DistributedTwoServerTest, AttachRequiresStreamSessions) {
  Node child;
  Node parent;
  ASSERT_TRUE(child.Listen().ok());
  ASSERT_TRUE(parent.Listen().ok());
  auto parent_client =
      ServiceClient::Dial(parent.endpoint, service::WireProtocol::kV2);
  ASSERT_TRUE(parent_client.ok());
  auto plain = parent_client->Open();  // no stream=1
  ASSERT_TRUE(plain.ok());
  auto attached = parent_client->Command(
      CommandKind::kAttach, *plain,
      StrCat("edge=1 host=127.0.0.1 port=", child.endpoint.port,
             " remote=1"));
  ASSERT_TRUE(attached.ok());
  EXPECT_FALSE(attached->ok);
  parent.server.Shutdown();
  child.server.Shutdown();
}

// --------------------------------------------------- cross-feature interop

// One TCP connection, frames alternating between the v1 textual and v2
// binary protocols, driving a single session that uses commit_through
// watermarks AND ADT commutativity tags.  The server answers each frame
// in the protocol it arrived in, and both views of the session agree.
TEST(CrossFeatureInteropTest, MixedProtocolFramesShareOneSession) {
  CertificationServer server{ServerOptions{}};
  Endpoint endpoint;
  ASSERT_TRUE(server.Listen(endpoint).ok());
  auto socket = service::Connect(endpoint);
  ASSERT_TRUE(socket.ok()) << socket.status().ToString();
  service::FrameParser parser;

  const auto round_trip =
      [&](service::WireProtocol protocol,
          const service::Request& request) -> service::Response {
    const std::string bytes = service::EncodeRequestFrame(protocol, request);
    EXPECT_TRUE(service::WriteWireBytes(socket->fd(), bytes).ok());
    auto frame = service::ReadWireFrame(socket->fd(), parser);
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->protocol, protocol);  // answered in kind
    auto response = service::DecodeResponseFrame(*frame);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return *response;
  };

  // OPEN over v1.
  service::Request open;
  open.kind = CommandKind::kOpen;
  auto opened = round_trip(service::WireProtocol::kV1, open);
  ASSERT_TRUE(opened.ok) << opened.error_code;
  const uint64_t session = opened.FieldInt("session");

  // A semantic execution: two roots whose only interaction is through
  // commuting operations on a shared ADT instance.
  std::vector<TraceEvent> events;
  events.push_back(Make(TraceEventKind::kSchedule, "s0"));
  events.push_back(Make(TraceEventKind::kRoot, "r0", 0));
  events.push_back(Make(TraceEventKind::kRoot, "r1", 0));
  events.push_back(Make(TraceEventKind::kAdtDecl, "counter"));
  events.push_back(Make(TraceEventKind::kAdtOp, "inc", kInvalidIndex,
                        kInvalidIndex, /*a=*/0));
  events.push_back(Make(TraceEventKind::kAdtOp, "dec", kInvalidIndex,
                        kInvalidIndex, /*a=*/0));
  events.push_back(Make(TraceEventKind::kCommute, "", kInvalidIndex,
                        kInvalidIndex, /*a=*/0, /*b=*/1));
  events.push_back(Make(TraceEventKind::kTag, "", kInvalidIndex,
                        /*parent=*/0, /*a=*/0, /*b=*/42));
  events.push_back(Make(TraceEventKind::kTag, "", kInvalidIndex,
                        /*parent=*/1, /*a=*/1, /*b=*/42));

  // First half over v2 (batch append), second half over v1, then a
  // commit_through watermark over v2 — one session throughout.
  const size_t half = events.size() / 2;
  service::Request append_v2;
  append_v2.kind = CommandKind::kAppend;
  append_v2.session = session;
  append_v2.events.assign(events.begin(), events.begin() + half);
  ASSERT_TRUE(round_trip(service::WireProtocol::kV2, append_v2).ok);

  service::Request append_v1;
  append_v1.kind = CommandKind::kAppend;
  append_v1.session = session;
  append_v1.events.assign(events.begin() + half, events.end());
  ASSERT_TRUE(round_trip(service::WireProtocol::kV1, append_v1).ok);

  service::Request commit;
  commit.kind = CommandKind::kAppend;
  commit.session = session;
  commit.events.push_back(Make(TraceEventKind::kCommitThrough, "",
                               kInvalidIndex, kInvalidIndex, /*a=*/2));
  ASSERT_TRUE(round_trip(service::WireProtocol::kV2, commit).ok);

  // QUERY over both protocols: identical session state either way.
  service::Request query;
  query.kind = CommandKind::kQuery;
  query.session = session;
  auto v1_view = round_trip(service::WireProtocol::kV1, query);
  auto v2_view = round_trip(service::WireProtocol::kV2, query);
  ASSERT_TRUE(v1_view.ok);
  ASSERT_TRUE(v2_view.ok);
  EXPECT_EQ(v1_view.FieldInt("accepted"), v2_view.FieldInt("accepted"));
  EXPECT_EQ(v1_view.FieldInt("rejected"), 0);
  EXPECT_EQ(v1_view.FieldInt("certifiable"), v2_view.FieldInt("certifiable"));
  EXPECT_EQ(v1_view.FieldInt("commit_watermark"), 2);
  EXPECT_EQ(v2_view.FieldInt("commit_watermark"), 2);
  EXPECT_EQ(v1_view.FieldInt("certifiable"), 1);

  server.Shutdown();
}

}  // namespace
}  // namespace comptx
