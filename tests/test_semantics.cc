// Semantic commutativity layer tests: CommutativitySpec units and builtin
// Weihl tables, EffectiveConflict masking semantics, persistence of the
// five spec event kinds across every serialization surface (text trace,
// binary wire protocol, WAL), the deterministic shared-bottom semantic
// rule of the static analyzer, the 1000-trace semantic-static vs dynamic
// agreement sweep over ADT workloads, and certifier static-admission /
// paranoid equivalence on semantically decided sessions.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "analysis/builder.h"
#include "core/commutativity.h"
#include "core/composite_system.h"
#include "core/correctness.h"
#include "durability/wal.h"
#include "online/certifier.h"
#include "service/protocol.h"
#include "staticcheck/analyzer.h"
#include "testing/events.h"
#include "util/rng.h"
#include "workload/schedule_gen.h"
#include "workload/topology_gen.h"
#include "workload/trace.h"

#include "test_helpers.h"

namespace comptx {
namespace {

using staticcheck::AnalyzeConfiguration;
using staticcheck::SafetyVerdict;

ReductionOptions PrefixOptions() {
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  return options;
}

/// The smallest shared-bottom configuration the semantic rule decides:
/// two roots on private depth-2 chains meeting in a common bottom
/// schedule Sb, whose single cross-root conflict pair is tagged on the
/// same counter instance.  The chains make the order 3, so the shape is
/// a general DAG — at order 2 this degenerates to a join and Theorem 4
/// decides it bit-level, never reaching the semantic rule.  `commuting`
/// picks inc/inc (erased, semantically SAFE) or inc/read (a real
/// conflict, so the analyzer must punt to dynamic).
CompositeSystem MakeSharedBottomSemantic(bool commuting) {
  analysis::CompositeSystemBuilder b;
  ScheduleId st1 = b.Schedule("St1");
  ScheduleId st2 = b.Schedule("St2");
  ScheduleId sm1 = b.Schedule("Sm1");
  ScheduleId sm2 = b.Schedule("Sm2");
  ScheduleId sb = b.Schedule("Sb");
  NodeId t1 = b.Root(st1, "T1");
  NodeId t2 = b.Root(st2, "T2");
  NodeId m1 = b.Sub(t1, sm1, "m1");
  NodeId m2 = b.Sub(t2, sm2, "m2");
  NodeId a1 = b.Sub(m1, sb, "a1");
  NodeId a2 = b.Sub(m2, sb, "a2");
  NodeId x1 = b.Leaf(a1, "x1");
  NodeId x2 = b.Leaf(a2, "x2");
  b.Conflict(x1, x2);
  b.WeakOut(x1, x2);
  CompositeSystem cs = std::move(b.Take());
  uint32_t counter = cs.DeclareAdt("counter").value();
  uint32_t inc = cs.DeclareAdtOp(counter, "inc").value();
  uint32_t read = cs.DeclareAdtOp(counter, "read").value();
  COMPTX_CHECK(cs.DeclareCommute(inc, inc).ok());
  COMPTX_CHECK(cs.DeclareClash(inc, read).ok());
  COMPTX_CHECK(cs.TagOperation(x1, inc, 0).ok());
  COMPTX_CHECK(cs.TagOperation(x2, commuting ? inc : read, 0).ok());
  return cs;
}

// ---- CommutativitySpec units --------------------------------------------

TEST(CommutativitySpec, BuiltinCounterTableMatchesTheLiterature) {
  CommutativitySpec spec;
  auto counter = DeclareBuiltinAdt(spec, BuiltinAdt::kCounter);
  ASSERT_TRUE(counter.ok());
  uint32_t inc = spec.FindClass(*counter, "inc");
  uint32_t dec = spec.FindClass(*counter, "dec");
  uint32_t read = spec.FindClass(*counter, "read");
  ASSERT_NE(inc, kInvalidIndex);
  ASSERT_NE(dec, kInvalidIndex);
  ASSERT_NE(read, kInvalidIndex);
  // Blind updates commute with each other; reads clash with updates.
  EXPECT_EQ(spec.Lookup(inc, inc), CommuteEntry::kCommutes);
  EXPECT_EQ(spec.Lookup(inc, dec), CommuteEntry::kCommutes);
  EXPECT_EQ(spec.Lookup(dec, dec), CommuteEntry::kCommutes);
  EXPECT_EQ(spec.Lookup(read, read), CommuteEntry::kCommutes);
  EXPECT_EQ(spec.Lookup(inc, read), CommuteEntry::kConflicts);
  EXPECT_EQ(spec.Lookup(dec, read), CommuteEntry::kConflicts);
  // The builtin tables are total: all 6 unordered pairs declared.
  EXPECT_EQ(spec.CountEntries(CommuteEntry::kCommutes), 4u);
  EXPECT_EQ(spec.CountEntries(CommuteEntry::kConflicts), 2u);
  EXPECT_EQ(spec.ClassLabel(inc), "counter.inc");
  EXPECT_EQ(spec.FindAdt("counter"), *counter);
}

TEST(CommutativitySpec, BuiltinQueueAndEscrowTables) {
  CommutativitySpec spec;
  auto queue = DeclareBuiltinAdt(spec, BuiltinAdt::kQueue);
  auto escrow = DeclareBuiltinAdt(spec, BuiltinAdt::kEscrow);
  ASSERT_TRUE(queue.ok());
  ASSERT_TRUE(escrow.ok());
  uint32_t enq = spec.FindClass(*queue, "enq");
  uint32_t deq = spec.FindClass(*queue, "deq");
  // FIFO order is observable: nothing commutes, even enq with enq.
  EXPECT_EQ(spec.Lookup(enq, enq), CommuteEntry::kConflicts);
  EXPECT_EQ(spec.Lookup(enq, deq), CommuteEntry::kConflicts);
  EXPECT_EQ(spec.Lookup(deq, deq), CommuteEntry::kConflicts);
  uint32_t deposit = spec.FindClass(*escrow, "deposit");
  uint32_t withdraw = spec.FindClass(*escrow, "withdraw");
  uint32_t read = spec.FindClass(*escrow, "read");
  EXPECT_EQ(spec.Lookup(deposit, withdraw), CommuteEntry::kCommutes);
  EXPECT_EQ(spec.Lookup(deposit, read), CommuteEntry::kConflicts);
  // Class indices are global across ADTs, in declaration order.
  EXPECT_LT(deq, deposit);
  EXPECT_EQ(spec.AdtCount(), 2u);
  EXPECT_EQ(spec.ClassCount(), 5u);
  // Re-declaring a builtin under its taken name fails.
  EXPECT_FALSE(DeclareBuiltinAdt(spec, BuiltinAdt::kQueue).ok());
}

TEST(CommutativitySpec, EntryDeclarationRules) {
  CommutativitySpec spec;
  auto adt = spec.DeclareAdt("counter");
  ASSERT_TRUE(adt.ok());
  EXPECT_FALSE(spec.DeclareAdt("counter").ok());  // duplicate ADT name
  auto inc = spec.DeclareOpClass(*adt, "inc");
  auto dec = spec.DeclareOpClass(*adt, "dec");
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(dec.ok());
  EXPECT_FALSE(spec.DeclareOpClass(*adt, "inc").ok());  // duplicate class
  ASSERT_TRUE(spec.SetEntry(*inc, *dec, CommuteEntry::kCommutes).ok());
  // Re-declaring the same value is idempotent; contradiction is an error
  // even through the mirrored pair.
  EXPECT_TRUE(spec.SetEntry(*dec, *inc, CommuteEntry::kCommutes).ok());
  EXPECT_FALSE(spec.SetEntry(*dec, *inc, CommuteEntry::kConflicts).ok());
  // The table is symmetric; undeclared pairs read as kUnspecified.
  EXPECT_EQ(spec.Lookup(*dec, *inc), CommuteEntry::kCommutes);
  EXPECT_EQ(spec.Lookup(*inc, *inc), CommuteEntry::kUnspecified);
  EXPECT_FALSE(spec.Commutes(*inc, *inc));
}

// ---- EffectiveConflict masking ------------------------------------------

TEST(SemanticConflicts, EffectiveConflictMasksExactlyTheCommutingPairs) {
  analysis::CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t1 = b.Root(s, "T1");
  NodeId t2 = b.Root(s, "T2");
  NodeId x1 = b.Leaf(t1, "x1");
  NodeId y1 = b.Leaf(t1, "y1");
  NodeId z1 = b.Leaf(t1, "z1");
  NodeId w1 = b.Leaf(t1, "w1");
  NodeId x2 = b.Leaf(t2, "x2");
  NodeId y2 = b.Leaf(t2, "y2");
  NodeId z2 = b.Leaf(t2, "z2");
  NodeId w2 = b.Leaf(t2, "w2");
  for (auto [p, q] : {std::pair{x1, x2}, {y1, y2}, {z1, z2}, {w1, w2}}) {
    b.Conflict(p, q);
    b.WeakOut(p, q);
  }
  CompositeSystem cs = std::move(b.Take());

  // Without a spec nothing commutes and every bit is effective.
  EXPECT_FALSE(cs.HasSpec());
  EXPECT_FALSE(cs.SemanticallyCommutes(x1, x2));
  EXPECT_TRUE(cs.EffectiveConflict(s, x1, x2));

  uint32_t counter = cs.DeclareAdt("counter").value();
  uint32_t inc = cs.DeclareAdtOp(counter, "inc").value();
  uint32_t read = cs.DeclareAdtOp(counter, "read").value();
  ASSERT_TRUE(cs.DeclareCommute(inc, inc).ok());
  ASSERT_TRUE(cs.DeclareClash(inc, read).ok());

  // Same instance, commuting classes: the bit is erased.
  ASSERT_TRUE(cs.TagOperation(x1, inc, 0).ok());
  ASSERT_TRUE(cs.TagOperation(x2, inc, 0).ok());
  EXPECT_TRUE(cs.SemanticallyCommutes(x1, x2));
  EXPECT_FALSE(cs.EffectiveConflict(s, x1, x2));

  // Same instance, clashing classes: the bit stays.
  ASSERT_TRUE(cs.TagOperation(y1, inc, 0).ok());
  ASSERT_TRUE(cs.TagOperation(y2, read, 0).ok());
  EXPECT_FALSE(cs.SemanticallyCommutes(y1, y2));
  EXPECT_TRUE(cs.EffectiveConflict(s, y1, y2));

  // Different instances commute regardless of the table.
  ASSERT_TRUE(cs.TagOperation(z1, inc, 1).ok());
  ASSERT_TRUE(cs.TagOperation(z2, read, 2).ok());
  EXPECT_TRUE(cs.SemanticallyCommutes(z1, z2));
  EXPECT_FALSE(cs.EffectiveConflict(s, z1, z2));

  // One untagged member defeats the mask.
  ASSERT_TRUE(cs.TagOperation(w1, inc, 0).ok());
  EXPECT_FALSE(cs.SemanticallyCommutes(w1, w2));
  EXPECT_TRUE(cs.EffectiveConflict(s, w1, w2));

  // EffectiveConflict never *adds* conflicts: unrelated pair stays clear.
  EXPECT_FALSE(cs.EffectiveConflict(s, x1, y2));
}

// ---- Serialization surfaces ---------------------------------------------

TEST(SemanticPersistence, TextTraceRoundTripsSpecTagsAndVerdict) {
  testing::SemanticCrossDemo demo = testing::MakeSemanticCrossDemo(true);
  auto before = CheckCompC(demo.cs);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->correct);  // the tag erases one side of the cycle

  auto text = workload::SaveTrace(demo.cs);
  ASSERT_TRUE(text.ok());
  auto loaded = workload::LoadTrace(*text);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->HasSpec());
  EXPECT_EQ(loaded->spec()->AdtCount(), 1u);
  EXPECT_EQ(loaded->spec()->FindAdt("counter"), 0u);
  EXPECT_TRUE(loaded->SemanticallyCommutes(demo.a1, demo.a2));
  auto after = CheckCompC(*loaded);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->correct, before->correct);

  // The untagged twin of the same execution really is incorrect — the
  // verdict above is carried by the spec, not the shape.
  testing::SemanticCrossDemo raw = testing::MakeSemanticCrossDemo(false);
  auto raw_verdict = CheckCompC(raw.cs);
  ASSERT_TRUE(raw_verdict.ok());
  EXPECT_FALSE(raw_verdict->correct);
}

TEST(SemanticPersistence, BinaryWireCodecRoundTripsSpecEvents) {
  testing::SemanticCrossDemo demo = testing::MakeSemanticCrossDemo(true);
  auto events = testing::SystemToEvents(demo.cs);
  ASSERT_TRUE(events.ok());
  std::string buf;
  for (const workload::TraceEvent& e : *events) {
    service::AppendEventBinary(buf, e);
  }
  std::vector<workload::TraceEvent> decoded;
  size_t pos = 0;
  while (pos < buf.size()) {
    workload::TraceEvent e;
    ASSERT_TRUE(service::ReadEventBinary(buf, pos, e).ok()) << pos;
    decoded.push_back(std::move(e));
  }
  ASSERT_EQ(decoded.size(), events->size());
  size_t spec_kinds = 0;
  for (size_t i = 0; i < decoded.size(); ++i) {
    const workload::TraceEvent& a = (*events)[i];
    const workload::TraceEvent& b = decoded[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.name, b.name) << i;
    EXPECT_EQ(a.schedule, b.schedule) << i;
    EXPECT_EQ(a.parent, b.parent) << i;
    EXPECT_EQ(a.a, b.a) << i;
    EXPECT_EQ(a.b, b.b) << i;
    switch (a.kind) {
      case workload::TraceEventKind::kAdtDecl:
      case workload::TraceEventKind::kAdtOp:
      case workload::TraceEventKind::kCommute:
      case workload::TraceEventKind::kClash:
      case workload::TraceEventKind::kTag:
        ++spec_kinds;
        break;
      default:
        break;
    }
  }
  // 1 adt + 1 adtop + 1 commute + 2 tags from MakeSemanticCrossDemo.
  EXPECT_EQ(spec_kinds, 5u);
  auto rebuilt = testing::BuildSystem(decoded);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(rebuilt->SemanticallyCommutes(demo.a1, demo.a2));
}

TEST(SemanticPersistence, WalRoundTripsSpecEvents) {
  testing::SemanticCrossDemo demo = testing::MakeSemanticCrossDemo(true);
  auto events = testing::SystemToEvents(demo.cs);
  ASSERT_TRUE(events.ok());
  std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "semantic_spec.wal";
  durability::Counters counters;
  {
    auto writer = durability::WalWriter::Create(path.string(),
                                                durability::FsyncPolicy::kNone,
                                                &counters);
    ASSERT_TRUE(writer.ok());
    durability::WalRecord record;
    record.type = durability::WalRecordType::kAppend;
    record.seq = 1;
    record.events = *events;
    ASSERT_TRUE((*writer)->Append(record).ok());
  }
  auto scan = durability::ReadWalFile(path.string());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->clean);
  ASSERT_EQ(scan->records.size(), 1u);
  const durability::WalRecord& back = scan->records[0];
  ASSERT_EQ(back.events.size(), events->size());
  for (size_t i = 0; i < back.events.size(); ++i) {
    EXPECT_EQ(back.events[i].kind, (*events)[i].kind) << i;
    EXPECT_EQ(back.events[i].name, (*events)[i].name) << i;
    EXPECT_EQ(back.events[i].parent, (*events)[i].parent) << i;
    EXPECT_EQ(back.events[i].a, (*events)[i].a) << i;
    EXPECT_EQ(back.events[i].b, (*events)[i].b) << i;
  }
  auto rebuilt = testing::BuildSystem(back.events);
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_TRUE(rebuilt->HasSpec());
  auto verdict = CheckCompC(*rebuilt);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->correct);
  std::filesystem::remove(path);
}

// ---- Static analyzer: the semantic shared-bottom rule -------------------

TEST(SemanticStatic, SharedBottomRuleDecidesCoveredMeets) {
  CompositeSystem covered = MakeSharedBottomSemantic(/*commuting=*/true);
  staticcheck::StaticAnalysis analysis = AnalyzeConfiguration(covered);
  EXPECT_TRUE(analysis.well_formed);
  EXPECT_EQ(analysis.verdict, SafetyVerdict::kSafe)
      << staticcheck::FormatStaticAnalysis(analysis);
  EXPECT_TRUE(analysis.semantic);
  auto batch = CheckCompC(covered);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->correct);

  // The clashing twin keeps a real cross-root conflict on the shared
  // bottom, so no theorem (bit-level or semantic) may decide it.
  CompositeSystem clashing = MakeSharedBottomSemantic(/*commuting=*/false);
  staticcheck::StaticAnalysis undecided = AnalyzeConfiguration(clashing);
  EXPECT_EQ(undecided.verdict, SafetyVerdict::kNeedsDynamic)
      << staticcheck::FormatStaticAnalysis(undecided);
  EXPECT_FALSE(undecided.semantic);
}

TEST(SemanticStatic, AnalyzerAgreesWithDynamicOnThousandAdtTraces) {
  using workload::AdtMix;
  using workload::TopologyKind;
  const TopologyKind kinds[] = {
      TopologyKind::kStack, TopologyKind::kFork, TopologyKind::kJoin,
      TopologyKind::kLayeredDag, TopologyKind::kSharedBottom};
  const AdtMix mixes[] = {AdtMix::kCounter, AdtMix::kSet, AdtMix::kQueue,
                          AdtMix::kEscrow, AdtMix::kMixed};
  size_t traces = 0;
  size_t decided = 0;
  size_t semantic_fired = 0;
  for (TopologyKind kind : kinds) {
    for (AdtMix mix : mixes) {
      for (uint64_t seed = 0; seed < 40; ++seed) {
        Rng rng(1 + seed * 131 + static_cast<uint64_t>(kind) * 17 +
                static_cast<uint64_t>(mix) * 5);
        workload::TopologySpec tspec;
        tspec.kind = kind;
        tspec.depth = 2;
        tspec.branches = 2;
        if (kind == TopologyKind::kSharedBottom) {
          // The smallest shape where the semantic rule can fire: order-3
          // chains (order 2 degenerates to a join, which Theorem 4 owns)
          // with a single cross-root leaf pair on the shared bottom and
          // no intra orders (hence no strong orders) anywhere.
          tspec.depth = 3;
          tspec.roots = 2;
          tspec.fanout = 1;
        } else {
          tspec.roots = 3;
          tspec.fanout = 2;
        }
        CompositeSystem cs = workload::GenerateTopology(tspec, rng);
        workload::ExecutionGenSpec espec;
        espec.adt = mix;
        espec.adt_instances = 1 + static_cast<uint32_t>(seed % 3);
        ASSERT_TRUE(workload::PopulateExecution(cs, espec, rng).ok());
        ++traces;
        staticcheck::AnalyzerOptions aopts;
        aopts.assume_valid = true;  // PopulateExecution output validates
        staticcheck::StaticAnalysis analysis = AnalyzeConfiguration(cs, aopts);
        if (analysis.verdict == SafetyVerdict::kNeedsDynamic) continue;
        ++decided;
        if (analysis.semantic) ++semantic_fired;
        auto batch = CheckCompC(cs);
        ASSERT_TRUE(batch.ok());
        ASSERT_EQ(analysis.verdict == SafetyVerdict::kSafe, batch->correct)
            << workload::TopologyKindToString(kind) << "/"
            << workload::AdtMixToString(mix) << " seed " << seed << "\n"
            << staticcheck::FormatStaticAnalysis(analysis);
      }
    }
  }
  EXPECT_EQ(traces, 1000u);
  EXPECT_GT(decided, 0u);
  // The sweep must exercise the semantic rule itself, not only the
  // bit-level theorems; the shared-bottom shape guarantees occurrences.
  EXPECT_GT(semantic_fired, 0u);
}

// ---- Certifier: static admission and paranoid cross-check ---------------

TEST(SemanticCertifier, StaticAdmissionDecidesSemanticallySafeSessions) {
  CompositeSystem cs = MakeSharedBottomSemantic(/*commuting=*/true);
  auto events = testing::SystemToEvents(cs);
  ASSERT_TRUE(events.ok());
  online::CertifierOptions options;
  options.static_admission = true;
  online::Certifier certifier(options);
  for (const workload::TraceEvent& e : *events) {
    ASSERT_TRUE(certifier.Ingest(e).ok());
  }
  online::CertifierVerdict verdict = certifier.Verdict();
  EXPECT_TRUE(verdict.certifiable);
  EXPECT_TRUE(verdict.static_decided);
  online::CertifierStats stats = certifier.Stats();
  EXPECT_TRUE(stats.static_mode);
  EXPECT_GE(stats.static_analyses, 1u);
  EXPECT_EQ(stats.static_fallbacks, 0u);
  auto batch = CheckCompC(cs, PrefixOptions());
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(verdict.certifiable, batch->correct);
}

TEST(SemanticCertifier, StaticAdmissionFallsBackOnUndecidedShapes) {
  // The clashing shared-bottom twin is correct but NEEDS_DYNAMIC (the
  // real cross-root conflict defeats every theorem including the
  // semantic rule), so a static-admission session must take the
  // one-time fallback and keep answering right.
  CompositeSystem cs = MakeSharedBottomSemantic(/*commuting=*/false);
  auto events = testing::SystemToEvents(cs);
  ASSERT_TRUE(events.ok());
  online::CertifierOptions options;
  options.static_admission = true;
  online::Certifier certifier(options);
  for (const workload::TraceEvent& e : *events) {
    ASSERT_TRUE(certifier.Ingest(e).ok());
  }
  auto batch = CheckCompC(cs, PrefixOptions());
  ASSERT_TRUE(batch.ok());
  // Interim verdict (batch-backed) while the fallback is pending.
  EXPECT_EQ(certifier.Verdict().certifiable, batch->correct);
  // Any further ingest performs the downgrade.
  workload::TraceEvent commit;
  commit.kind = workload::TraceEventKind::kCommit;
  commit.parent = 0;  // T1 is the first node created
  ASSERT_TRUE(certifier.Ingest(commit).ok());
  online::CertifierStats stats = certifier.Stats();
  EXPECT_FALSE(stats.static_mode);
  EXPECT_EQ(stats.static_fallbacks, 1u);
  EXPECT_EQ(certifier.Verdict().certifiable, batch->correct);
}

TEST(SemanticCertifier, ParanoidModeSeesNoMismatchesOnAdtTraces) {
  using workload::AdtMix;
  const AdtMix mixes[] = {AdtMix::kCounter, AdtMix::kEscrow, AdtMix::kMixed};
  for (AdtMix mix : mixes) {
    for (uint64_t seed = 0; seed < 20; ++seed) {
      Rng rng(7 + seed * 97 + static_cast<uint64_t>(mix));
      workload::TopologySpec tspec;
      tspec.kind = workload::TopologyKind::kSharedBottom;
      tspec.roots = 2;
      tspec.fanout = 1;
      CompositeSystem cs = workload::GenerateTopology(tspec, rng);
      workload::ExecutionGenSpec espec;
      espec.adt = mix;
      espec.adt_instances = 1 + static_cast<uint32_t>(seed % 2);
      ASSERT_TRUE(workload::PopulateExecution(cs, espec, rng).ok());
      auto events = testing::SystemToEvents(cs);
      ASSERT_TRUE(events.ok());
      online::CertifierOptions options;
      options.paranoid = true;
      online::Certifier certifier(options);
      size_t rejected = certifier.IngestBatch(*events);
      ASSERT_EQ(rejected, 0u);
      auto batch = CheckCompC(cs, PrefixOptions());
      ASSERT_TRUE(batch.ok());
      EXPECT_EQ(certifier.Verdict().certifiable, batch->correct)
          << workload::AdtMixToString(mix) << " seed " << seed;
      online::CertifierStats stats = certifier.Stats();
      EXPECT_EQ(stats.paranoid_mismatches, 0u)
          << workload::AdtMixToString(mix) << " seed " << seed;
      EXPECT_GE(stats.static_analyses, 1u);
    }
  }
}

}  // namespace
}  // namespace comptx
