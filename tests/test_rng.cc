#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "util/zipf.h"

namespace comptx {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / double(trials), 0.25, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitIsIndependent) {
  Rng parent(31);
  Rng child = parent.Split();
  // Child stream differs from the parent's continued stream.
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (parent.Next() != child.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(37);
  ZipfGenerator zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c / 8000.0, 0.25, 0.05);
}

TEST(ZipfTest, SkewFavorsSmallIndices) {
  Rng rng(41);
  ZipfGenerator zipf(100, 0.99);
  int head = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // With theta=0.99 the first 10 of 100 items take well over half the mass.
  EXPECT_GT(head / double(trials), 0.5);
}

TEST(ZipfTest, SamplesInDomain) {
  Rng rng(43);
  ZipfGenerator zipf(7, 0.5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

}  // namespace
}  // namespace comptx
