#include <gtest/gtest.h>

#include "core/correctness.h"
#include "runtime/cc_scheduler.h"
#include "runtime/data_store.h"
#include "runtime/deadlock.h"
#include "runtime/lock_manager.h"
#include "runtime/system_executor.h"
#include "workload/program_gen.h"

namespace comptx::runtime {
namespace {

TEST(OpTypeTest, ConflictMatrix) {
  EXPECT_FALSE(OpsConflict(OpType::kRead, OpType::kRead));
  EXPECT_FALSE(OpsConflict(OpType::kAdd, OpType::kAdd));
  EXPECT_TRUE(OpsConflict(OpType::kRead, OpType::kWrite));
  EXPECT_TRUE(OpsConflict(OpType::kWrite, OpType::kWrite));
  EXPECT_TRUE(OpsConflict(OpType::kAdd, OpType::kRead));
  EXPECT_TRUE(OpsConflict(OpType::kAdd, OpType::kWrite));
}

TEST(DataStoreTest, ApplyAndRollback) {
  DataStore store(2);
  std::vector<UndoEntry> undo;
  store.Apply(OpType::kWrite, 0, 42, undo);
  store.Apply(OpType::kAdd, 0, 8, undo);
  store.Apply(OpType::kWrite, 1, 7, undo);
  EXPECT_EQ(store.Read(0), 50);
  EXPECT_EQ(store.Read(1), 7);
  store.Rollback(undo);
  EXPECT_EQ(store.Read(0), 0);
  EXPECT_EQ(store.Read(1), 0);
  EXPECT_TRUE(undo.empty());
}

TEST(LockManagerTest, SharedAndExclusiveModes) {
  LockManager locks([](uint32_t, uint32_t a, uint32_t b) {
    return OpsConflict(static_cast<OpType>(a), static_cast<OpType>(b));
  });
  const uint32_t read = static_cast<uint32_t>(OpType::kRead);
  const uint32_t write = static_cast<uint32_t>(OpType::kWrite);
  EXPECT_TRUE(locks.TryAcquire(1, 0, read));
  EXPECT_TRUE(locks.TryAcquire(2, 0, read));   // readers share.
  EXPECT_FALSE(locks.TryAcquire(3, 0, write)); // writer blocked.
  EXPECT_EQ(locks.Blockers(3, 0, write).size(), 2u);
  locks.ReleaseAll(1);
  locks.ReleaseAll(2);
  EXPECT_TRUE(locks.TryAcquire(3, 0, write));
  EXPECT_FALSE(locks.TryAcquire(1, 0, read));
  EXPECT_EQ(locks.GrantCount(), 1u);
}

TEST(LockManagerTest, ReacquisitionIsIdempotent) {
  LockManager locks([](uint32_t, uint32_t, uint32_t) { return true; });
  EXPECT_TRUE(locks.TryAcquire(1, 5, 0));
  EXPECT_TRUE(locks.TryAcquire(1, 5, 0));
  EXPECT_EQ(locks.GrantCount(), 1u);
}

TEST(RootOrderManagerTest, RejectsCycles) {
  RootOrderManager manager;
  EXPECT_TRUE(manager.TryAddEdges({{1, 2}, {2, 3}}));
  EXPECT_FALSE(manager.TryAddEdges({{3, 1}}));
  EXPECT_EQ(manager.EdgeCount(), 2u);  // failed batch fully reverted.
  manager.RemoveRoot(2);
  EXPECT_EQ(manager.EdgeCount(), 0u);
  EXPECT_TRUE(manager.TryAddEdges({{3, 1}}));
}

TEST(RootOrderManagerTest, BatchIsAtomic) {
  RootOrderManager manager;
  EXPECT_TRUE(manager.TryAddEdges({{1, 2}}));
  // Batch introduces 2->3 then 3->1, which closes a cycle via 1->2? No:
  // 1->2, 2->3, 3->1 is a cycle; the whole batch must be rejected.
  EXPECT_FALSE(manager.TryAddEdges({{2, 3}, {3, 1}}));
  EXPECT_EQ(manager.EdgeCount(), 1u);
}

TEST(DeadlockTest, VictimIsYoungestInCycle) {
  graph::Digraph waits(3);
  waits.AddEdge(0, 1);
  waits.AddEdge(1, 0);
  auto victim = FindDeadlockVictim(waits, {10, 20, 99});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);  // youngest member of the cycle, not node 2.
}

TEST(DeadlockTest, NoCycleNoVictim) {
  graph::Digraph waits(2);
  waits.AddEdge(0, 1);
  EXPECT_FALSE(FindDeadlockVictim(waits, {1, 2}).has_value());
}

workload::RuntimeWorkloadSpec SmallSpec() {
  workload::RuntimeWorkloadSpec spec;
  spec.layers = 2;
  spec.components_per_layer = 2;
  spec.items_per_component = 4;
  spec.services_per_component = 2;
  spec.steps_per_service = 3;
  spec.invoke_fraction = 0.6;
  spec.num_roots = 6;
  return spec;
}

TEST(ExecutorTest, AllProtocolsCompleteAndRecordValidSystems) {
  RuntimeSystem system = workload::GenerateRuntimeWorkload(SmallSpec(), 11);
  for (Protocol protocol :
       {Protocol::kGlobalSerial, Protocol::kClosedTwoPhase,
        Protocol::kOpenTwoPhase, Protocol::kOpenValidated,
          Protocol::kConservativeTimestamp}) {
    ExecutorOptions options;
    options.protocol = protocol;
    options.seed = 5;
    auto result = ExecuteSystem(system, options);
    ASSERT_TRUE(result.ok())
        << ProtocolToString(protocol) << ": " << result.status().ToString();
    EXPECT_EQ(result->recorded.Roots().size(), system.roots.size())
        << ProtocolToString(protocol);
    Status valid = result->recorded.Validate();
    EXPECT_TRUE(valid.ok())
        << ProtocolToString(protocol) << ": " << valid.ToString();
    EXPECT_GT(result->stats.committed_ops, 0u);
  }
}

TEST(ExecutorTest, SerialAndClosedAreAlwaysCompC) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RuntimeSystem system =
        workload::GenerateRuntimeWorkload(SmallSpec(), seed);
    for (Protocol protocol :
         {Protocol::kGlobalSerial, Protocol::kClosedTwoPhase}) {
      ExecutorOptions options;
      options.protocol = protocol;
      options.seed = seed * 31;
      auto result = ExecuteSystem(system, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(IsCompC(result->recorded))
          << ProtocolToString(protocol) << " seed " << seed;
    }
  }
}

TEST(ExecutorTest, ValidatedProtocolIsAlwaysCompC) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RuntimeSystem system =
        workload::GenerateRuntimeWorkload(SmallSpec(), seed + 100);
    ExecutorOptions options;
    options.protocol = Protocol::kOpenValidated;
    options.seed = seed * 17;
    auto result = ExecuteSystem(system, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(IsCompC(result->recorded)) << "seed " << seed;
  }
}

TEST(ExecutorTest, DeterministicFromSeed) {
  RuntimeSystem system = workload::GenerateRuntimeWorkload(SmallSpec(), 3);
  ExecutorOptions options;
  options.protocol = Protocol::kOpenTwoPhase;
  options.seed = 99;
  auto a = ExecuteSystem(system, options);
  auto b = ExecuteSystem(system, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.rounds, b->stats.rounds);
  EXPECT_EQ(a->stats.actions, b->stats.actions);
  EXPECT_EQ(IsCompC(a->recorded), IsCompC(b->recorded));
}

TEST(ExecutorTest, SerialHasNoRestarts) {
  RuntimeSystem system = workload::GenerateRuntimeWorkload(SmallSpec(), 21);
  ExecutorOptions options;
  options.protocol = Protocol::kGlobalSerial;
  auto result = ExecuteSystem(system, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.deadlock_restarts, 0u);
  EXPECT_EQ(result->stats.validation_restarts, 0u);
  // Serial: exactly one action per round.
  EXPECT_NEAR(result->stats.avg_parallelism, 1.0, 1e-9);
}

TEST(ExecutorTest, RejectsBrokenNetworks) {
  RuntimeSystem system;
  system.components.push_back(std::make_unique<Component>(
      0, "C", 2,
      std::vector<Program>{
          Program{{ProgramStep::Invoke(0, 0)}}},  // self-invocation.
      std::vector<std::vector<bool>>{{false}}));
  system.roots.push_back({0, 0});
  ExecutorOptions options;
  EXPECT_FALSE(ExecuteSystem(system, options).ok());
}

TEST(ExecutorTest, OpenTwoPhaseEventuallyProducesAnomalies) {
  // The motivating phenomenon: uncoordinated open nesting yields some
  // non-Comp-C executions across seeds (this is experiment E6's signal).
  workload::RuntimeWorkloadSpec spec = SmallSpec();
  spec.num_roots = 8;
  spec.invoke_fraction = 0.8;
  spec.service_conflict_prob = 0.0;  // components believe everything
                                     // commutes; items still conflict.
  int anomalies = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    RuntimeSystem system = workload::GenerateRuntimeWorkload(spec, seed);
    ExecutorOptions options;
    options.protocol = Protocol::kOpenTwoPhase;
    options.seed = seed;
    auto result = ExecuteSystem(system, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->recorded.Validate().ok());
    if (!IsCompC(result->recorded)) ++anomalies;
  }
  EXPECT_GT(anomalies, 0);
}

}  // namespace
}  // namespace comptx::runtime
// NOTE: appended tests for the conservative timestamp-admission protocol.
namespace comptx::runtime {
namespace {

TEST(ConservativeTimestampTest, AlwaysCompCWithZeroRestarts) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    workload::RuntimeWorkloadSpec spec;
    spec.layers = 3;
    spec.components_per_layer = 2;
    spec.items_per_component = 4;
    spec.services_per_component = 2;
    spec.steps_per_service = 3;
    spec.invoke_fraction = 0.6;
    spec.num_roots = 8;
    RuntimeSystem system = workload::GenerateRuntimeWorkload(spec, seed);
    ExecutorOptions options;
    options.protocol = Protocol::kConservativeTimestamp;
    options.seed = seed * 13;
    auto result = ExecuteSystem(system, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(IsCompC(result->recorded)) << "seed " << seed;
    // Conservative admission never needs to abort anything.
    EXPECT_EQ(result->stats.deadlock_restarts, 0u) << "seed " << seed;
    EXPECT_EQ(result->stats.validation_restarts, 0u) << "seed " << seed;
  }
}

TEST(ConservativeTimestampTest, SerializesInTimestampOrder) {
  // The recorded execution's serial witness must be the root order.
  workload::RuntimeWorkloadSpec spec;
  spec.layers = 2;
  spec.components_per_layer = 1;
  spec.items_per_component = 2;
  spec.services_per_component = 1;
  spec.steps_per_service = 2;
  spec.invoke_fraction = 0.5;
  spec.num_roots = 4;
  RuntimeSystem system = workload::GenerateRuntimeWorkload(spec, 2);
  ExecutorOptions options;
  options.protocol = Protocol::kConservativeTimestamp;
  options.seed = 3;
  auto result = ExecuteSystem(system, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto verdict = CheckCompC(result->recorded);
  ASSERT_TRUE(verdict.ok());
  ASSERT_TRUE(verdict->correct);
  // Timestamp order is a valid serialization: the final front's orders
  // must not contradict root-index order.
  const Front& final_front = verdict->reduction.FinalFront();
  final_front.observed.ForEach([&](NodeId a, NodeId b) {
    EXPECT_LT(result->recorded.node(a).name, result->recorded.node(b).name)
        << "observed order against timestamp order";
  });
}

TEST(ConservativeTimestampTest, SurvivesClientAborts) {
  workload::RuntimeWorkloadSpec spec;
  spec.layers = 2;
  spec.components_per_layer = 2;
  spec.items_per_component = 4;
  spec.services_per_component = 2;
  spec.steps_per_service = 3;
  spec.invoke_fraction = 0.6;
  spec.num_roots = 8;
  RuntimeSystem system = workload::GenerateRuntimeWorkload(spec, 31);
  ExecutorOptions options;
  options.protocol = Protocol::kConservativeTimestamp;
  options.seed = 7;
  options.client_abort_prob = 0.5;
  auto result = ExecuteSystem(system, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.client_aborts, 0u);
  EXPECT_TRUE(IsCompC(result->recorded));
}

}  // namespace
}  // namespace comptx::runtime
