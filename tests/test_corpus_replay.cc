// Regression corpus replay: every minimized counterexample committed
// under tests/corpus/ must still parse, rebuild, leave all deciders in
// agreement, reproduce its recorded verdict, and — for witnesses minted
// under fault injection — still be caught when the same fault is
// re-injected.  COMPTX_CORPUS_DIR is baked in by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/witness.h"

#ifndef COMPTX_CORPUS_DIR
#error "COMPTX_CORPUS_DIR must point at the committed witness corpus"
#endif

namespace comptx {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(COMPTX_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplayTest, EveryCommittedWitnessReplaysClean) {
  const std::vector<std::filesystem::path> files = CorpusFiles();
  ASSERT_FALSE(files.empty()) << "no witnesses in " COMPTX_CORPUS_DIR;
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path);
    ASSERT_TRUE(in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto record = testing::ParseWitnessJson(buffer.str());
    ASSERT_TRUE(record.ok()) << path << ": " << record.status().ToString();
    EXPECT_EQ(path.stem().string(), record->id)
        << path << ": file name out of sync with the witness id";
    EXPECT_FALSE(record->events.empty()) << path;
    auto outcome = testing::ReplayWitness(*record);
    ASSERT_TRUE(outcome.ok()) << path << ": " << outcome.status().ToString();
    EXPECT_TRUE(outcome->Passed()) << path << ": " << outcome->message;
  }
}

}  // namespace
}  // namespace comptx
