#include <gtest/gtest.h>

#include "core/correctness.h"
#include "core/invocation_graph.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/scc.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

using workload::TopologyKind;

TEST(TopologyGenTest, StackShape) {
  Rng rng(1);
  workload::TopologySpec spec;
  spec.kind = TopologyKind::kStack;
  spec.depth = 4;
  spec.roots = 3;
  spec.fanout = 2;
  CompositeSystem cs = workload::GenerateTopology(spec, rng);
  EXPECT_TRUE(criteria::IsStackSystem(cs));
  auto ig = BuildInvocationGraph(cs);
  ASSERT_TRUE(ig.ok());
  EXPECT_EQ(ig->order, 4u);
  EXPECT_EQ(cs.Roots().size(), 3u);
  // 3 roots * 2^3 subs at the bottom * 2 leaves each.
  EXPECT_EQ(cs.Leaves().size(), 48u);
}

TEST(TopologyGenTest, ForkAndJoinShapes) {
  Rng rng(2);
  workload::TopologySpec spec;
  spec.kind = TopologyKind::kFork;
  spec.branches = 3;
  CompositeSystem fork = workload::GenerateTopology(spec, rng);
  EXPECT_TRUE(criteria::IsForkSystem(fork));

  spec.kind = TopologyKind::kJoin;
  CompositeSystem join = workload::GenerateTopology(spec, rng);
  EXPECT_TRUE(criteria::IsJoinSystem(join));
}

TEST(TopologyGenTest, LayeredDagIsRecursionFree) {
  Rng rng(3);
  workload::TopologySpec spec;
  spec.kind = TopologyKind::kLayeredDag;
  spec.depth = 4;
  spec.branches = 3;
  spec.roots = 5;
  spec.fanout = 3;
  spec.leaf_fraction = 0.3;
  CompositeSystem cs = workload::GenerateTopology(spec, rng);
  auto ig = BuildInvocationGraph(cs);
  ASSERT_TRUE(ig.ok());
  EXPECT_LE(ig->order, 4u);
  EXPECT_EQ(cs.Roots().size(), 5u);
}

TEST(ScheduleGenTest, GeneratedSystemsAlwaysValidate) {
  for (auto kind : {TopologyKind::kStack, TopologyKind::kFork,
                    TopologyKind::kJoin, TopologyKind::kLayeredDag}) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      workload::WorkloadSpec spec;
      spec.topology.kind = kind;
      spec.execution.conflict_prob = 0.5;
      spec.execution.disorder_prob = 0.4;
      spec.execution.intra_weak_prob = 0.4;
      spec.execution.intra_strong_prob = 0.3;
      auto cs = workload::GenerateSystem(spec, seed);
      ASSERT_TRUE(cs.ok()) << workload::TopologyKindToString(kind) << " seed "
                           << seed << ": " << cs.status().ToString();
    }
  }
}

TEST(ScheduleGenTest, DeterministicFromSeed) {
  workload::WorkloadSpec spec;
  spec.topology.kind = TopologyKind::kLayeredDag;
  spec.execution.conflict_prob = 0.4;
  auto a = workload::GenerateSystem(spec, 77);
  auto b = workload::GenerateSystem(spec, 77);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->NodeCount(), b->NodeCount());
  EXPECT_EQ(IsCompC(*a), IsCompC(*b));
  for (uint32_t s = 0; s < a->ScheduleCount(); ++s) {
    EXPECT_TRUE(a->schedule(ScheduleId(s)).weak_output ==
                b->schedule(ScheduleId(s)).weak_output);
    EXPECT_TRUE(a->schedule(ScheduleId(s)).conflicts ==
                b->schedule(ScheduleId(s)).conflicts);
  }
}

TEST(ScheduleGenTest, ZeroConflictsIsAlwaysCompC) {
  workload::WorkloadSpec spec;
  spec.topology.kind = TopologyKind::kLayeredDag;
  spec.execution.conflict_prob = 0.0;
  spec.execution.intra_weak_prob = 0.5;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto cs = workload::GenerateSystem(spec, seed);
    ASSERT_TRUE(cs.ok());
    EXPECT_TRUE(IsCompC(*cs)) << "seed " << seed;
  }
}

TEST(ScheduleGenTest, DisorderProducesRejections) {
  // With disorder injected, some executions must come out incorrect —
  // otherwise the acceptance-rate experiments measure nothing.
  workload::WorkloadSpec spec;
  spec.topology.kind = TopologyKind::kJoin;
  spec.topology.roots = 6;
  spec.execution.conflict_prob = 0.5;
  spec.execution.disorder_prob = 0.8;
  int rejected = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    auto cs = workload::GenerateSystem(spec, seed);
    ASSERT_TRUE(cs.ok());
    if (!IsCompC(*cs)) ++rejected;
  }
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace comptx
