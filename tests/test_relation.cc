#include "core/relation.h"

#include <gtest/gtest.h>

#include "core/indexing.h"

namespace comptx {
namespace {

NodeId N(uint32_t i) { return NodeId(i); }

TEST(RelationTest, AddAndContains) {
  Relation r;
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Add(N(1), N(2)));
  EXPECT_FALSE(r.Add(N(1), N(2)));  // duplicate
  EXPECT_TRUE(r.Contains(N(1), N(2)));
  EXPECT_FALSE(r.Contains(N(2), N(1)));
  EXPECT_EQ(r.PairCount(), 1u);
}

TEST(RelationTest, SuccessorsSorted) {
  Relation r;
  r.Add(N(1), N(5));
  r.Add(N(1), N(3));
  r.Add(N(1), N(4));
  std::vector<NodeId> succ = r.Successors(N(1));
  ASSERT_EQ(succ.size(), 3u);
  EXPECT_EQ(succ[0], N(3));
  EXPECT_EQ(succ[1], N(4));
  EXPECT_EQ(succ[2], N(5));
  EXPECT_TRUE(r.Successors(N(9)).empty());
}

TEST(RelationTest, ForEachDeterministicOrder) {
  Relation r;
  r.Add(N(2), N(1));
  r.Add(N(1), N(2));
  r.Add(N(1), N(0));
  std::vector<std::pair<NodeId, NodeId>> pairs = r.Pairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], std::make_pair(N(1), N(0)));
  EXPECT_EQ(pairs[1], std::make_pair(N(1), N(2)));
  EXPECT_EQ(pairs[2], std::make_pair(N(2), N(1)));
}

TEST(RelationTest, UnionAndContainment) {
  Relation a;
  a.Add(N(1), N(2));
  Relation b;
  b.Add(N(2), N(3));
  b.Add(N(1), N(2));
  EXPECT_FALSE(a.ContainsAllOf(b));
  EXPECT_TRUE(b.ContainsAllOf(a));
  a.UnionWith(b);
  EXPECT_TRUE(a.ContainsAllOf(b));
  EXPECT_EQ(a.PairCount(), 2u);
}

TEST(RelationTest, RestrictedTo) {
  Relation r;
  r.Add(N(1), N(2));
  r.Add(N(2), N(3));
  Relation restricted =
      r.RestrictedTo([](NodeId id) { return id.index() <= 2; });
  EXPECT_TRUE(restricted.Contains(N(1), N(2)));
  EXPECT_FALSE(restricted.Contains(N(2), N(3)));
}

TEST(RelationTest, EqualityIgnoresInsertionOrder) {
  Relation a;
  a.Add(N(1), N(2));
  a.Add(N(3), N(4));
  Relation b;
  b.Add(N(3), N(4));
  b.Add(N(1), N(2));
  EXPECT_TRUE(a == b);
}

TEST(SymmetricPairSetTest, SymmetricMembership) {
  SymmetricPairSet s;
  EXPECT_TRUE(s.Add(N(1), N(2)));
  EXPECT_FALSE(s.Add(N(2), N(1)));  // same unordered pair
  EXPECT_TRUE(s.Contains(N(1), N(2)));
  EXPECT_TRUE(s.Contains(N(2), N(1)));
  EXPECT_EQ(s.PairCount(), 1u);
}

TEST(SymmetricPairSetTest, PeersAndForEach) {
  SymmetricPairSet s;
  s.Add(N(1), N(2));
  s.Add(N(1), N(3));
  std::vector<NodeId> peers = s.PeersOf(N(1));
  ASSERT_EQ(peers.size(), 2u);
  EXPECT_EQ(peers[0], N(2));
  EXPECT_EQ(peers[1], N(3));
  int count = 0;
  s.ForEach([&](NodeId a, NodeId b) {
    EXPECT_LT(a.index(), b.index());
    ++count;
  });
  EXPECT_EQ(count, 2);
}

TEST(ClosureWithinTest, TransitiveClosureOfChain) {
  Relation r;
  r.Add(N(1), N(2));
  r.Add(N(2), N(3));
  Relation closed = ClosureWithin(r, {N(1), N(2), N(3)});
  EXPECT_TRUE(closed.Contains(N(1), N(3)));
  EXPECT_FALSE(closed.Contains(N(3), N(1)));
  EXPECT_EQ(closed.PairCount(), 3u);
}

TEST(ClosureWithinTest, DropsPairsOutsideDomain) {
  Relation r;
  r.Add(N(1), N(2));
  r.Add(N(2), N(3));
  Relation closed = ClosureWithin(r, {N(1), N(2)});
  EXPECT_TRUE(closed.Contains(N(1), N(2)));
  EXPECT_EQ(closed.PairCount(), 1u);
}

TEST(NodeIndexMapTest, RoundTrips) {
  NodeIndexMap map({N(7), N(3), N(9)});
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.LocalOf(N(3)), 1u);
  EXPECT_EQ(map.GlobalOf(2), N(9));
  EXPECT_TRUE(map.Has(N(7)));
  EXPECT_FALSE(map.Has(N(8)));
  EXPECT_FALSE(map.TryLocalOf(N(8)).has_value());
}

}  // namespace
}  // namespace comptx
