// Failure injection: clients abandoning root transactions mid-flight.
// The executor must compensate (roll back data), release locks and
// order-manager edges, and keep the recorded history — which contains
// committed roots only — valid and protocol-correct.

#include <gtest/gtest.h>

#include "core/correctness.h"
#include "runtime/system_executor.h"
#include "workload/program_gen.h"

namespace comptx::runtime {
namespace {

workload::RuntimeWorkloadSpec Spec() {
  workload::RuntimeWorkloadSpec spec;
  spec.layers = 2;
  spec.components_per_layer = 2;
  spec.items_per_component = 4;
  spec.services_per_component = 2;
  spec.steps_per_service = 3;
  spec.invoke_fraction = 0.6;
  spec.num_roots = 8;
  return spec;
}

TEST(FailureInjectionTest, AbandonedRootsDisappearFromTheRecord) {
  RuntimeSystem system = workload::GenerateRuntimeWorkload(Spec(), 7);
  ExecutorOptions options;
  options.protocol = Protocol::kOpenTwoPhase;
  options.seed = 13;
  options.client_abort_prob = 0.5;
  auto result = ExecuteSystem(system, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.client_aborts, 0u);
  EXPECT_EQ(result->recorded.Roots().size(),
            system.roots.size() - result->stats.client_aborts);
  EXPECT_TRUE(result->recorded.Validate().ok())
      << result->recorded.Validate().ToString();
}

TEST(FailureInjectionTest, SafeProtocolsStayCompCUnderAborts) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RuntimeSystem system = workload::GenerateRuntimeWorkload(Spec(), seed);
    for (Protocol protocol :
         {Protocol::kClosedTwoPhase, Protocol::kOpenValidated}) {
      ExecutorOptions options;
      options.protocol = protocol;
      options.seed = seed * 11;
      options.client_abort_prob = 0.4;
      auto result = ExecuteSystem(system, options);
      ASSERT_TRUE(result.ok())
          << ProtocolToString(protocol) << ": " << result.status().ToString();
      EXPECT_TRUE(IsCompC(result->recorded))
          << ProtocolToString(protocol) << " seed " << seed;
    }
  }
}

TEST(FailureInjectionTest, AbortProbabilityOneAbandonsEveryRoot) {
  RuntimeSystem system = workload::GenerateRuntimeWorkload(Spec(), 3);
  ExecutorOptions options;
  options.protocol = Protocol::kGlobalSerial;
  options.seed = 5;
  options.client_abort_prob = 1.0;
  auto result = ExecuteSystem(system, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.client_aborts, system.roots.size());
  EXPECT_TRUE(result->recorded.Roots().empty());
  EXPECT_EQ(result->stats.committed_ops, 0u);
  // An empty recorded history is trivially correct.
  EXPECT_TRUE(IsCompC(result->recorded));
}

TEST(FailureInjectionTest, CompensationRestoresStoreValues) {
  // With every root abandoned, all data effects must be compensated.
  // Adds are the semantically compensatable operation class (inverse
  // add), so the workload is add-only: exact restoration is required no
  // matter how the aborted roots interleaved.
  workload::RuntimeWorkloadSpec spec = Spec();
  spec.add_fraction = 1.0;
  RuntimeSystem system = workload::GenerateRuntimeWorkload(spec, 9);
  ExecutorOptions options;
  options.protocol = Protocol::kOpenTwoPhase;
  options.seed = 21;
  options.client_abort_prob = 1.0;
  auto result = ExecuteSystem(system, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& component : system.components) {
    for (uint32_t item = 0; item < component->store().item_count(); ++item) {
      EXPECT_EQ(component->store().Read(item), 0)
          << component->name() << " item " << item;
    }
  }
}

TEST(FailureInjectionTest, LocksFullyReleasedAfterAborts) {
  RuntimeSystem system = workload::GenerateRuntimeWorkload(Spec(), 15);
  ExecutorOptions options;
  options.protocol = Protocol::kClosedTwoPhase;
  options.seed = 8;
  options.client_abort_prob = 0.6;
  auto result = ExecuteSystem(system, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& component : system.components) {
    EXPECT_EQ(component->locks().GrantCount(), 0u) << component->name();
    EXPECT_EQ(component->locks().WaiterCount(), 0u) << component->name();
  }
}

TEST(FailureInjectionTest, DeterministicUnderAborts) {
  RuntimeSystem system = workload::GenerateRuntimeWorkload(Spec(), 4);
  ExecutorOptions options;
  options.protocol = Protocol::kOpenValidated;
  options.seed = 77;
  options.client_abort_prob = 0.3;
  auto a = ExecuteSystem(system, options);
  // Reset stores between runs: re-generate the network.
  RuntimeSystem fresh = workload::GenerateRuntimeWorkload(Spec(), 4);
  auto b = ExecuteSystem(fresh, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.client_aborts, b->stats.client_aborts);
  EXPECT_EQ(a->stats.rounds, b->stats.rounds);
  EXPECT_EQ(a->recorded.NodeCount(), b->recorded.NodeCount());
}

}  // namespace
}  // namespace comptx::runtime
