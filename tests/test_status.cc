#include "util/status.h"

#include <gtest/gtest.h>

#include "util/status_or.h"

namespace comptx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad node");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad node");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad node");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "failed_precondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "already_exists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "out_of_range");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "resource_exhausted");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  COMPTX_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok = ParsePositive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_EQ(ok.value(), 7);

  StatusOr<int> err = ParsePositive(0);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> DoubleIt(int x) {
  COMPTX_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(StatusOrTest, AssignOrReturnUnwrapsAndPropagates) {
  ASSERT_TRUE(DoubleIt(21).ok());
  EXPECT_EQ(*DoubleIt(21), 42);
  EXPECT_EQ(DoubleIt(-3).status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

}  // namespace
}  // namespace comptx
