// Adversarial wire-framing tests for the epoll event loop and the v2
// binary protocol (ctest label `service`): varint/packed-event codec
// round trips, incremental FrameParser behavior on partial and hostile
// input, raw-socket clients that trickle bytes or declare absurd
// lengths, v1/v2 auto-detection on one shared port (and one shared
// connection), pipelined request/response ordering, and BATCH_APPEND
// equivalence with event-at-a-time v1 appends.  The ServiceStressTest
// case runs under TSan in CI.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/ids.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/socket.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx::service {
namespace {

// ------------------------------------------------------------- codec

TEST(VarintTest, RoundTripsBoundaryValues) {
  const std::vector<uint64_t> values = {
      0, 1, 127, 128, 129, 16383, 16384, 1u << 20, (1ull << 32) - 1,
      1ull << 32, (1ull << 63), ~0ull, kInvalidIndex};
  std::string buf;
  for (uint64_t v : values) AppendVarint(buf, v);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(ReadVarint(buf, pos, got).ok());
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncationAndOverflowAreRejected) {
  std::string buf;
  AppendVarint(buf, ~0ull);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    const std::string prefix = buf.substr(0, cut);
    size_t pos = 0;
    uint64_t v = 0;
    EXPECT_FALSE(ReadVarint(prefix, pos, v).ok()) << cut;
  }
  // An 11-byte encoding (or a 10th byte carrying bits past 2^64) is not
  // a 64-bit varint, however it is padded.
  const std::string overlong(11, '\x80');
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(ReadVarint(overlong, pos, v).ok());
}

TEST(EventCodecTest, EveryKindRoundTrips) {
  std::vector<workload::TraceEvent> events;
  {
    workload::TraceEvent e;
    e.kind = workload::TraceEventKind::kSchedule;
    e.name = "s0";
    events.push_back(e);
  }
  {
    workload::TraceEvent e;
    e.kind = workload::TraceEventKind::kRoot;
    e.schedule = 0;
    e.name = "a root with spaces";
    events.push_back(e);
  }
  {
    workload::TraceEvent e;
    e.kind = workload::TraceEventKind::kSub;
    e.parent = 1;
    e.schedule = 0;
    e.name = "";
    events.push_back(e);
  }
  {
    workload::TraceEvent e;
    e.kind = workload::TraceEventKind::kLeaf;
    e.parent = 2;
    e.name = "leaf";
    events.push_back(e);
  }
  for (auto kind : {workload::TraceEventKind::kConflict,
                    workload::TraceEventKind::kWeakOutput,
                    workload::TraceEventKind::kStrongOutput}) {
    workload::TraceEvent e;
    e.kind = kind;
    e.a = 3;
    e.b = kInvalidIndex;  // unused fields must survive verbatim
    events.push_back(e);
  }
  for (auto kind : {workload::TraceEventKind::kWeakInput,
                    workload::TraceEventKind::kStrongInput}) {
    workload::TraceEvent e;
    e.kind = kind;
    e.schedule = 0;
    e.a = 1;
    e.b = 4;
    events.push_back(e);
  }
  for (auto kind : {workload::TraceEventKind::kIntraWeak,
                    workload::TraceEventKind::kIntraStrong}) {
    workload::TraceEvent e;
    e.kind = kind;
    e.parent = 1;
    e.a = 2;
    e.b = 3;
    events.push_back(e);
  }
  {
    workload::TraceEvent e;
    e.kind = workload::TraceEventKind::kCommit;
    e.parent = 1;
    events.push_back(e);
  }

  std::string buf;
  for (const auto& e : events) AppendEventBinary(buf, e);
  size_t pos = 0;
  for (const auto& expected : events) {
    workload::TraceEvent got;
    ASSERT_TRUE(ReadEventBinary(buf, pos, got).ok());
    EXPECT_EQ(got.kind, expected.kind);
    EXPECT_EQ(got.name, expected.name);
    EXPECT_EQ(got.schedule, expected.schedule);
    EXPECT_EQ(got.parent, expected.parent);
    EXPECT_EQ(got.a, expected.a);
    EXPECT_EQ(got.b, expected.b);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(EventCodecTest, UnknownKindAndTruncationAreRejected) {
  std::string buf;
  buf.push_back(static_cast<char>(0x7f));  // no such TraceEventKind
  size_t pos = 0;
  workload::TraceEvent event;
  EXPECT_FALSE(ReadEventBinary(buf, pos, event).ok());

  workload::TraceEvent root;
  root.kind = workload::TraceEventKind::kRoot;
  root.schedule = 0;
  root.name = "hello";
  std::string packed;
  AppendEventBinary(packed, root);
  for (size_t cut = 0; cut < packed.size(); ++cut) {
    const std::string prefix = packed.substr(0, cut);
    size_t p = 0;
    workload::TraceEvent e;
    EXPECT_FALSE(ReadEventBinary(prefix, p, e).ok()) << cut;
  }
}

// ------------------------------------------------------- frame parser

std::string PingFrame(WireProtocol protocol) {
  Request ping;
  ping.kind = CommandKind::kPing;
  return EncodeRequestFrame(protocol, ping);
}

TEST(FrameParserTest, ByteAtATimeDeliveryYieldsWholeFrames) {
  for (WireProtocol protocol : {WireProtocol::kV1, WireProtocol::kV2}) {
    const std::string bytes = PingFrame(protocol);
    FrameParser parser;
    WireFrame frame;
    for (size_t i = 0; i + 1 < bytes.size(); ++i) {
      parser.Feed(&bytes[i], 1);
      auto ready = parser.Next(frame);
      ASSERT_TRUE(ready.ok()) << i;
      EXPECT_FALSE(*ready) << "frame complete after " << i + 1 << " of "
                           << bytes.size() << " bytes";
    }
    parser.Feed(&bytes[bytes.size() - 1], 1);
    auto ready = parser.Next(frame);
    ASSERT_TRUE(ready.ok());
    ASSERT_TRUE(*ready);
    EXPECT_EQ(frame.protocol, protocol);
    auto request = DecodeRequestFrame(frame);
    ASSERT_TRUE(request.ok());
    EXPECT_EQ(request->kind, CommandKind::kPing);
    EXPECT_EQ(parser.buffered(), 0u);
  }
}

TEST(FrameParserTest, MixedProtocolsInterleaveOnOneStream) {
  const std::string stream = PingFrame(WireProtocol::kV1) +
                             PingFrame(WireProtocol::kV2) +
                             PingFrame(WireProtocol::kV1);
  FrameParser parser;
  parser.Feed(stream.data(), stream.size());
  const std::vector<WireProtocol> expected = {
      WireProtocol::kV1, WireProtocol::kV2, WireProtocol::kV1};
  for (WireProtocol protocol : expected) {
    WireFrame frame;
    auto ready = parser.Next(frame);
    ASSERT_TRUE(ready.ok());
    ASSERT_TRUE(*ready);
    EXPECT_EQ(frame.protocol, protocol);
  }
  WireFrame frame;
  auto ready = parser.Next(frame);
  ASSERT_TRUE(ready.ok());
  EXPECT_FALSE(*ready);
}

TEST(FrameParserTest, HostilePrefixesAreTerminalErrors) {
  // Each case must fail without ever producing a frame.
  const std::vector<std::string> hostile = {
      "X",                      // neither a digit nor the v2 magic
      "99999999999999\n",       // v1 length overflows the prefix budget
      "10485761\n",             // v1 length above kMaxFrameBytes
      std::string("9x\n"),      // non-digit inside a v1 prefix
  };
  for (const std::string& bytes : hostile) {
    FrameParser parser;
    parser.Feed(bytes.data(), bytes.size());
    WireFrame frame;
    auto ready = parser.Next(frame);
    EXPECT_FALSE(ready.ok()) << bytes;
  }
}

TEST(FrameParserTest, HostileV2HeadersAreTerminalErrors) {
  const std::string good = PingFrame(WireProtocol::kV2);
  // Wrong magic (second byte corrupted: first byte still 'C' so the v2
  // path is entered), wrong version, non-zero flags, oversized length.
  {
    std::string bad = good;
    bad[1] = 'X';
    FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    WireFrame frame;
    EXPECT_FALSE(parser.Next(frame).ok());
  }
  {
    std::string bad = good;
    bad[4] = 9;  // version
    FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    WireFrame frame;
    EXPECT_FALSE(parser.Next(frame).ok());
  }
  {
    std::string bad = good;
    bad[6] = 1;  // flags must be zero
    FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    WireFrame frame;
    EXPECT_FALSE(parser.Next(frame).ok());
  }
  {
    std::string bad = good;
    bad[19] = 0x7f;  // length high byte: ~2GB declared payload
    FrameParser parser;
    parser.Feed(bad.data(), bad.size());
    WireFrame frame;
    EXPECT_FALSE(parser.Next(frame).ok());
  }
}

TEST(FrameParserTest, BatchCountLargerThanPayloadIsRejected) {
  // A BATCH_APPEND whose varint count promises more events than the
  // payload could hold must fail in DecodeRequestFrame, not allocate.
  WireFrame frame;
  frame.protocol = WireProtocol::kV2;
  frame.opcode = Opcode::kBatchAppend;
  frame.session = 7;
  AppendVarint(frame.payload, 1u << 30);
  EXPECT_FALSE(DecodeRequestFrame(frame).ok());
}

// ------------------------------------------------- live-socket framing

std::vector<workload::TraceEvent> GeneratedEvents(uint32_t roots,
                                                  uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.15;
  spec.execution.intra_weak_prob = 0.2;
  auto cs = workload::GenerateSystem(spec, seed);
  EXPECT_TRUE(cs.ok()) << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  auto events = workload::ParseTraceEvents(*text);
  EXPECT_TRUE(events.ok()) << events.status().ToString();
  return std::move(events).value();
}

/// A listening server plus a raw connected socket for hand-rolled frames.
struct LiveServer {
  explicit LiveServer(size_t io_threads = 1) {
    ServerOptions options;
    options.workers = 2;
    options.io_threads = io_threads;
    server = std::make_unique<CertificationServer>(options);
    EXPECT_TRUE(server->Listen(endpoint).ok());
  }
  ~LiveServer() { server->Shutdown(); }

  Socket RawConnect() {
    auto socket = Connect(endpoint);
    EXPECT_TRUE(socket.ok()) << socket.status().ToString();
    return std::move(*socket);
  }

  std::unique_ptr<CertificationServer> server;
  Endpoint endpoint;
};

StatusOr<Response> ReadResponse(int fd, FrameParser& parser) {
  auto frame = ReadWireFrame(fd, parser);
  if (!frame.ok()) return frame.status();
  return DecodeResponseFrame(*frame);
}

TEST(EventLoopFramingTest, OneBytePerWriteClientGetsServed) {
  LiveServer live;
  Socket socket = live.RawConnect();
  for (WireProtocol protocol : {WireProtocol::kV1, WireProtocol::kV2}) {
    const std::string bytes = PingFrame(protocol);
    for (char byte : bytes) {
      ASSERT_EQ(::send(socket.fd(), &byte, 1, 0), 1);
      std::this_thread::yield();
    }
    FrameParser parser;
    auto response = ReadResponse(socket.fd(), parser);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->ok);
  }
}

TEST(EventLoopFramingTest, ProtocolsAutoDetectPerFrameOnOneConnection) {
  LiveServer live;
  Socket socket = live.RawConnect();
  // v1 then v2 then v1 on the same connection: each response must come
  // back framed in its request's protocol.
  const std::string burst = PingFrame(WireProtocol::kV1) +
                            PingFrame(WireProtocol::kV2) +
                            PingFrame(WireProtocol::kV1);
  ASSERT_TRUE(WriteWireBytes(socket.fd(), burst).ok());
  FrameParser parser;
  const std::vector<WireProtocol> expected = {
      WireProtocol::kV1, WireProtocol::kV2, WireProtocol::kV1};
  for (WireProtocol protocol : expected) {
    auto frame = ReadWireFrame(socket.fd(), parser);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->protocol, protocol);
    auto response = DecodeResponseFrame(*frame);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->ok);
  }
}

TEST(EventLoopFramingTest, OversizedDeclaredLengthGetsErrorThenHangup) {
  LiveServer live;
  {
    // v1: a prefix above kMaxFrameBytes.
    Socket socket = live.RawConnect();
    const std::string huge = "999999999\n";
    ASSERT_TRUE(WriteWireBytes(socket.fd(), huge).ok());
    FrameParser parser;
    auto response = ReadResponse(socket.fd(), parser);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->ok);
    EXPECT_EQ(response->error_code, "bad_request");
    // The connection is doomed after a framing violation.
    auto eof = ReadWireFrame(socket.fd(), parser);
    EXPECT_FALSE(eof.ok());
  }
  {
    // v2: a valid header declaring a ~2GB payload.
    Socket socket = live.RawConnect();
    std::string bytes = PingFrame(WireProtocol::kV2);
    bytes[19] = 0x7f;
    ASSERT_TRUE(WriteWireBytes(socket.fd(), bytes).ok());
    FrameParser parser;
    auto response = ReadResponse(socket.fd(), parser);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->ok);
    auto eof = ReadWireFrame(socket.fd(), parser);
    EXPECT_FALSE(eof.ok());
  }
  {
    // Garbage first byte: not a digit, not the magic.
    Socket socket = live.RawConnect();
    const std::string garbage = "hello there\n";
    ASSERT_TRUE(WriteWireBytes(socket.fd(), garbage).ok());
    FrameParser parser;
    auto response = ReadResponse(socket.fd(), parser);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->ok);
    auto eof = ReadWireFrame(socket.fd(), parser);
    EXPECT_FALSE(eof.ok());
  }
}

TEST(EventLoopFramingTest, PipelinedRequestsAnswerInOrder) {
  LiveServer live;
  Socket socket = live.RawConnect();
  // OPEN + APPEND + QUERY + PING pipelined in one write: the replies
  // must come back in request order (OPEN's id is 1 on a fresh server,
  // which the APPEND/QUERY frames bake in).
  const auto events = GeneratedEvents(3, 99);
  Request open;
  open.kind = CommandKind::kOpen;
  Request append;
  append.kind = CommandKind::kAppend;
  append.session = 1;
  append.events = events;
  Request query;
  query.kind = CommandKind::kQuery;
  query.session = 1;
  Request ping;
  ping.kind = CommandKind::kPing;
  const std::string burst = EncodeRequestFrame(WireProtocol::kV2, open) +
                            EncodeRequestFrame(WireProtocol::kV2, append) +
                            EncodeRequestFrame(WireProtocol::kV2, query) +
                            EncodeRequestFrame(WireProtocol::kV2, ping);
  ASSERT_TRUE(WriteWireBytes(socket.fd(), burst).ok());

  FrameParser parser;
  auto opened = ReadResponse(socket.fd(), parser);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(opened->ok);
  ASSERT_EQ(opened->FieldInt("session"), 1u);
  auto appended = ReadResponse(socket.fd(), parser);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  ASSERT_TRUE(appended->ok);
  EXPECT_EQ(appended->FieldInt("queued"), events.size());
  auto queried = ReadResponse(socket.fd(), parser);
  ASSERT_TRUE(queried.ok()) << queried.status().ToString();
  ASSERT_TRUE(queried->ok);
  EXPECT_EQ(queried->FieldInt("accepted") + queried->FieldInt("rejected"),
            events.size());
  auto ponged = ReadResponse(socket.fd(), parser);
  ASSERT_TRUE(ponged.ok()) << ponged.status().ToString();
  EXPECT_TRUE(ponged->ok);
}

TEST(EventLoopFramingTest, BatchAppendMatchesSingleEventAppends) {
  LiveServer live;
  const auto events = GeneratedEvents(5, 1234);

  auto v1 = ServiceClient::Dial(live.endpoint, WireProtocol::kV1);
  ASSERT_TRUE(v1.ok());
  auto v1_session = v1->Open();
  ASSERT_TRUE(v1_session.ok());
  for (const auto& event : events) {
    auto queued = v1->Append(*v1_session, {event});
    ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  }
  auto v1_verdict = v1->Close(*v1_session);
  ASSERT_TRUE(v1_verdict.ok());

  auto v2 = ServiceClient::Dial(live.endpoint, WireProtocol::kV2);
  ASSERT_TRUE(v2.ok());
  auto v2_session = v2->Open();
  ASSERT_TRUE(v2_session.ok());
  auto queued = v2->Append(*v2_session, events);  // one BATCH_APPEND frame
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_EQ(*queued, events.size());
  auto v2_verdict = v2->Close(*v2_session);
  ASSERT_TRUE(v2_verdict.ok());

  EXPECT_EQ(v1_verdict->certifiable, v2_verdict->certifiable);
  EXPECT_EQ(v1_verdict->events_accepted, v2_verdict->events_accepted);
  EXPECT_EQ(v1_verdict->events_rejected, v2_verdict->events_rejected);
}

TEST(EventLoopFramingTest, StatsExposeCertifierLiveNodes) {
  LiveServer live;
  auto client = ServiceClient::Dial(live.endpoint, WireProtocol::kV2);
  ASSERT_TRUE(client.ok());
  auto session = client->Open();
  ASSERT_TRUE(session.ok());
  const auto events = GeneratedEvents(4, 77);
  ASSERT_TRUE(client->Append(*session, events).ok());
  auto verdict = client->Query(*session);  // drain barrier
  ASSERT_TRUE(verdict.ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("certifier_live_nodes"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("certifier_prune_passes"), std::string::npos);
  EXPECT_NE(stats->find("certifier_pruned_nodes"), std::string::npos);
  EXPECT_NE(stats->find("active_connections"), std::string::npos);
  // The session is live and drained: its nodes must be on the gauge.
  const size_t at = stats->find("certifier_live_nodes");
  const size_t eol = stats->find('\n', at);
  const std::string line = stats->substr(at, eol - at);
  EXPECT_EQ(line.find(" 0"), std::string::npos) << line;
  ASSERT_TRUE(client->Close(*session).ok());
}

// ------------------------------------------------------------- stress

// Named ServiceStressTest so the TSan CI job's -R regex picks it up:
// many connections, each pipelining batched appends to its own session
// while a second wave of connections interleaves PINGs, then every
// verdict is checked against the single-connection answer.
TEST(ServiceStressTest, PipelinedBatchesAcrossConnectionsStayOrdered) {
  LiveServer live(/*io_threads=*/2);
  constexpr size_t kConnections = 8;
  constexpr size_t kPipelineDepth = 4;
  const auto events = GeneratedEvents(6, 2026);

  // Reference verdict from a plain sequential client.
  service::SessionVerdict reference;
  {
    auto client = ServiceClient::Dial(live.endpoint, WireProtocol::kV2);
    ASSERT_TRUE(client.ok());
    auto session = client->Open();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(client->Append(*session, events).ok());
    auto verdict = client->Close(*session);
    ASSERT_TRUE(verdict.ok());
    reference = *verdict;
  }

  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kConnections; ++c) {
    threads.emplace_back([&, c] {
      const WireProtocol protocol =
          c % 2 == 0 ? WireProtocol::kV2 : WireProtocol::kV1;
      Socket socket = [&] {
        auto s = Connect(live.endpoint);
        EXPECT_TRUE(s.ok());
        return std::move(*s);
      }();
      FrameParser parser;
      // OPEN, then read the id.
      Request open;
      open.kind = CommandKind::kOpen;
      if (!WriteWireBytes(socket.fd(),
                          EncodeRequestFrame(protocol, open))
               .ok()) {
        ++failures;
        return;
      }
      auto opened = ReadResponse(socket.fd(), parser);
      if (!opened.ok() || !opened->ok) {
        ++failures;
        return;
      }
      const uint64_t session = opened->FieldInt("session");
      // Pipeline the whole stream as kPipelineDepth-frame bursts of
      // batched appends, reading the acks afterwards, interleaved with
      // PINGs that must answer in position.
      size_t cursor = 0;
      while (cursor < events.size()) {
        std::string burst;
        std::vector<size_t> sizes;
        for (size_t d = 0; d < kPipelineDepth && cursor < events.size();
             ++d) {
          const size_t n = std::min<size_t>(8, events.size() - cursor);
          Request append;
          append.kind = CommandKind::kAppend;
          append.session = session;
          append.events.assign(events.begin() + cursor,
                               events.begin() + cursor + n);
          burst += EncodeRequestFrame(protocol, append);
          sizes.push_back(n);
          cursor += n;
        }
        Request ping;
        ping.kind = CommandKind::kPing;
        burst += EncodeRequestFrame(protocol, ping);
        if (!WriteWireBytes(socket.fd(), burst).ok()) {
          ++failures;
          return;
        }
        for (size_t n : sizes) {
          auto ack = ReadResponse(socket.fd(), parser);
          if (!ack.ok() || !ack->ok || ack->FieldInt("queued") != n) {
            ++failures;
            return;
          }
        }
        auto pong = ReadResponse(socket.fd(), parser);
        if (!pong.ok() || !pong->ok) {
          ++failures;
          return;
        }
      }
      // CLOSE and compare with the reference verdict.
      Request close;
      close.kind = CommandKind::kClose;
      close.session = session;
      if (!WriteWireBytes(socket.fd(),
                          EncodeRequestFrame(protocol, close))
               .ok()) {
        ++failures;
        return;
      }
      auto closed = ReadResponse(socket.fd(), parser);
      if (!closed.ok() || !closed->ok ||
          (closed->FieldInt("certifiable") == 1) != reference.certifiable ||
          closed->FieldInt("accepted") != reference.events_accepted) {
        ++failures;
        return;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace comptx::service
