// ThreadPool: exactly-once index coverage, nesting, stealing under skew,
// the global pool switch, and COMPTX_THREADS parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace comptx {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.ThreadCount(), 4u);
  for (size_t n : {0ul, 1ul, 2ul, 7ul, 64ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.ParallelFor(16, [&](size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(8 * 8);
  pool.ParallelFor(8, [&](size_t i) {
    // A nested call must not deadlock waiting for the same workers; it
    // runs inline on the task that issued it.
    pool.ParallelFor(8, [&](size_t j) { hits[i * 8 + j].fetch_add(1); });
  });
  for (size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "slot " << k;
  }
}

TEST(ThreadPool, StealsSkewedWork) {
  // One shard gets almost all the work (by index ranges); with stealing the
  // wall time must be far below the serial sum.  Correctness (every index
  // exactly once) is the hard assertion; timing is not, to stay robust on
  // loaded single-core CI machines.
  ThreadPool pool(4);
  const size_t n = 64;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i) {
    // Indices in the first quarter are 30x as expensive.
    const int spins = i < n / 4 ? 30000 : 1000;
    volatile int sink = 0;
    for (int s = 0; s < spins; ++s) sink = sink + s;
    hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, MoreItemsThanThreadsAndViceVersa) {
  ThreadPool pool(8);
  std::atomic<size_t> count{0};
  pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });  // n < threads
  EXPECT_EQ(count.load(), 3u);
  count = 0;
  pool.ParallelFor(1000, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000u);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(20, [&](size_t i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), 190u);
  }
}

TEST(ThreadPool, SetGlobalThreadsSwapsThePool) {
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(ThreadPool::Global().ThreadCount(), 2u);
  std::atomic<size_t> count{0};
  ThreadPool::Global().ParallelFor(10, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global().ThreadCount(), 1u);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv) {
  ASSERT_EQ(setenv("COMPTX_THREADS", "3", 1), 0);
  EXPECT_EQ(DefaultThreadCount(), 3u);
  ASSERT_EQ(setenv("COMPTX_THREADS", "0", 1), 0);  // invalid: at least 1
  EXPECT_GE(DefaultThreadCount(), 1u);
  ASSERT_EQ(setenv("COMPTX_THREADS", "garbage", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1u);
  ASSERT_EQ(unsetenv("COMPTX_THREADS"), 0);
  EXPECT_GE(DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace comptx
