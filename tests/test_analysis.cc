// Tests for the analysis layer: builder conveniences (ExecuteInOrder,
// PropagateOrders, NodeByName), printers and statistics helpers.

#include <gtest/gtest.h>

#include "analysis/builder.h"
#include "analysis/printer.h"
#include "analysis/stats.h"
#include "core/correctness.h"
#include "test_helpers.h"

namespace comptx {
namespace {

using analysis::CompositeSystemBuilder;

TEST(BuilderTest, ExecuteInOrderDerivesMinimalOutputs) {
  CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t1 = b.Root(s, "T1");
  NodeId t2 = b.Root(s, "T2");
  NodeId x1 = b.Leaf(t1, "x1");
  NodeId x2 = b.Leaf(t1, "x2");
  NodeId y = b.Leaf(t2, "y");
  b.IntraWeak(t1, x1, x2);
  b.Conflict(x2, y);
  b.ExecuteInOrder(s, {x1, y, x2});
  const Schedule& sched = b.system().schedule(s);
  // Conflicting pair in temporal order: y before x2.
  EXPECT_TRUE(sched.weak_output.Contains(y, x2));
  EXPECT_FALSE(sched.weak_output.Contains(x2, y));
  // Intra pair honored.
  EXPECT_TRUE(sched.weak_output.Contains(x1, x2));
  // Non-conflicting unrelated pair left unordered (minimal outputs).
  EXPECT_FALSE(sched.weak_output.Contains(x1, y));
  EXPECT_FALSE(sched.weak_output.Contains(y, x1));
  EXPECT_TRUE(b.system().Validate().ok());
}

TEST(BuilderTest, ExecuteInOrderPreserveAllOrders) {
  CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t1 = b.Root(s, "T1");
  NodeId t2 = b.Root(s, "T2");
  NodeId x = b.Leaf(t1, "x");
  NodeId y = b.Leaf(t2, "y");
  b.ExecuteInOrder(s, {y, x}, /*preserve_all_orders=*/true);
  EXPECT_TRUE(b.system().schedule(s).weak_output.Contains(y, x));
}

TEST(BuilderTest, ExecuteInOrderHonorsStrongInputs) {
  CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t1 = b.Root(s, "T1");
  NodeId t2 = b.Root(s, "T2");
  NodeId x = b.Leaf(t1, "x");
  NodeId y = b.Leaf(t2, "y");
  b.StrongIn(s, t1, t2);
  b.ExecuteInOrder(s, {x, y});
  EXPECT_TRUE(b.system().schedule(s).strong_output.Contains(x, y));
  EXPECT_TRUE(b.system().Validate().ok());
}

TEST(BuilderTest, PropagateOrdersImplementsDef47) {
  CompositeSystemBuilder b;
  ScheduleId top = b.Schedule("top");
  ScheduleId bottom = b.Schedule("bottom");
  NodeId t1 = b.Root(top, "T1");
  NodeId t2 = b.Root(top, "T2");
  NodeId s1 = b.Sub(t1, bottom, "s1");
  NodeId s2 = b.Sub(t2, bottom, "s2");
  b.Leaf(s1, "x1");
  b.Leaf(s2, "x2");
  b.Conflict(s1, s2);
  b.WeakOut(s1, s2);
  // Before propagation the system violates Def 4.7...
  EXPECT_FALSE(b.system().Validate().ok());
  b.PropagateOrders();
  // ...afterwards the bottom schedule received the input order.
  EXPECT_TRUE(b.system().schedule(bottom).weak_input.Contains(s1, s2));
  EXPECT_TRUE(b.system().Validate().ok());
}

TEST(BuilderTest, NodeByNameFindsUniqueNames) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  b.Root(s, "alpha");
  NodeId beta = b.Root(s, "beta");
  EXPECT_EQ(b.NodeByName("beta"), beta);
}

TEST(PrinterTest, NodeNameFallsBackToIndex) {
  CompositeSystem cs;
  ScheduleId s = cs.AddSchedule("S");
  auto t = cs.AddRootTransaction(s, "");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(analysis::NodeName(cs, *t), "node(0)");
}

TEST(PrinterTest, DescribeSystemListsOrdersAndConflicts) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/true);
  std::string text = analysis::DescribeSystem(stack.cs);
  EXPECT_NE(text.find("conflicts: {s1,s2}"), std::string::npos);
  EXPECT_NE(text.find("weak output: x1<x2"), std::string::npos);
  EXPECT_NE(text.find("weak input: s1<s2"), std::string::npos);
  EXPECT_NE(text.find("(level 2)"), std::string::npos);
}

TEST(PrinterTest, DescribeReductionShowsFailure) {
  CompositeSystem cs = testing::MakeCrossAnomaly(/*top_conflicts=*/true);
  auto result = CheckCompC(cs);
  ASSERT_TRUE(result.ok());
  std::string text = analysis::DescribeReduction(cs, *result);
  EXPECT_NE(text.find("NOT Comp-C"), std::string::npos);
  EXPECT_NE(text.find("cycle:"), std::string::npos);
}

TEST(StatsTest, RunningStatsBasics) {
  analysis::RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(StatsTest, RunningStatsDegenerateCases) {
  analysis::RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(StatsTest, RateCounter) {
  analysis::RateCounter rate;
  EXPECT_DOUBLE_EQ(rate.rate(), 0.0);
  rate.Add(true);
  rate.Add(false);
  rate.Add(true);
  rate.Add(true);
  EXPECT_EQ(rate.total(), 4u);
  EXPECT_EQ(rate.accepted(), 3u);
  EXPECT_DOUBLE_EQ(rate.rate(), 0.75);
}

TEST(StatsTest, TextTableAlignsColumns) {
  analysis::TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer_name", "22"});
  std::string text = table.ToString();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer_name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(StatsTest, FormatDouble) {
  EXPECT_EQ(analysis::FormatDouble(0.5), "0.500");
  EXPECT_EQ(analysis::FormatDouble(1.0 / 3.0, 2), "0.33");
  EXPECT_EQ(analysis::FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace comptx
// NOTE: appended tests for the DOT front renderer.
namespace comptx {
namespace {

TEST(PrinterTest, FrontToDotRendersOrdersAndConflicts) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/true);
  auto result = CheckCompC(stack.cs);
  ASSERT_TRUE(result.ok());
  const Front& front = result->reduction.fronts[1];
  std::string dot = analysis::FrontToDot(stack.cs, front, {stack.s1});
  EXPECT_NE(dot.find("digraph front_level_1"), std::string::npos);
  EXPECT_NE(dot.find("s1"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);       // conflict.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);    // input order.
  EXPECT_NE(dot.find("lightcoral"), std::string::npos);      // highlight.
}

TEST(PrinterTest, FrontToDotOnFailureWitness) {
  CompositeSystem cs = testing::MakeCrossAnomaly(/*top_conflicts=*/true);
  auto result = CheckCompC(cs);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->correct);
  const Front& front = result->reduction.fronts.back();
  std::string dot =
      analysis::FrontToDot(cs, front, result->failure->witness.nodes);
  EXPECT_NE(dot.find("digraph front_level_"), std::string::npos);
}

}  // namespace
}  // namespace comptx
