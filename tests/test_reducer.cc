// Tests for the incremental Reducer API (step-by-step front inspection).

#include <gtest/gtest.h>

#include "analysis/figures.h"
#include "core/reduction.h"
#include "test_helpers.h"

namespace comptx {
namespace {

TEST(ReducerTest, StepsThroughAllLevels) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/true);
  auto reducer = Reducer::Create(stack.cs);
  ASSERT_TRUE(reducer.ok()) << reducer.status().ToString();
  EXPECT_EQ(reducer->order(), 2u);
  EXPECT_EQ(reducer->current().level, 0u);
  EXPECT_FALSE(reducer->Done());

  ASSERT_TRUE(reducer->Step());
  EXPECT_EQ(reducer->current().level, 1u);
  EXPECT_TRUE(reducer->current().ContainsNode(stack.s1));
  EXPECT_FALSE(reducer->Done());

  ASSERT_TRUE(reducer->Step());
  EXPECT_EQ(reducer->current().level, 2u);
  EXPECT_TRUE(reducer->Done());
  EXPECT_FALSE(reducer->Failed());
  EXPECT_EQ(reducer->current().nodes,
            (std::vector<NodeId>{stack.t1, stack.t2}));
}

TEST(ReducerTest, TransactionsAtLevelMatchesSchedules) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  auto reducer = Reducer::Create(stack.cs);
  ASSERT_TRUE(reducer.ok());
  EXPECT_EQ(reducer->TransactionsAtLevel(1),
            (std::vector<NodeId>{stack.s1, stack.s2}));
  EXPECT_EQ(reducer->TransactionsAtLevel(2),
            (std::vector<NodeId>{stack.t1, stack.t2}));
}

TEST(ReducerTest, ReportsFailureAtTheRightLevel) {
  CompositeSystem cs = testing::MakeCrossAnomaly(/*top_conflicts=*/true);
  auto reducer = Reducer::Create(cs);
  ASSERT_TRUE(reducer.ok());
  ASSERT_TRUE(reducer->Step());  // level 1 fine.
  EXPECT_FALSE(reducer->Step());
  EXPECT_TRUE(reducer->Done());
  EXPECT_TRUE(reducer->Failed());
  ASSERT_TRUE(reducer->failure().has_value());
  EXPECT_EQ(reducer->failure()->level, 2u);
}

TEST(ReducerTest, InvalidSystemFailsAtCreate) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(stack.cs.AddConflict(stack.s1, stack.s2).ok());  // unordered.
  EXPECT_FALSE(Reducer::Create(stack.cs).ok());
}

TEST(ReducerTest, AgreesWithRunReductionOnFigures) {
  for (auto make : {analysis::MakeFigure1, analysis::MakeFigure2,
                    analysis::MakeFigure3, analysis::MakeFigure4}) {
    analysis::PaperFigure fig = make();
    auto run = RunReduction(fig.system);
    ASSERT_TRUE(run.ok());
    auto reducer = Reducer::Create(fig.system);
    ASSERT_TRUE(reducer.ok());
    while (!reducer->Done() && reducer->Step()) {
    }
    EXPECT_EQ(!reducer->Failed(), run->comp_c) << fig.title;
    if (run->comp_c) {
      EXPECT_EQ(reducer->current().nodes, run->FinalFront().nodes);
      EXPECT_TRUE(reducer->current().observed == run->FinalFront().observed);
    } else {
      ASSERT_TRUE(reducer->failure().has_value());
      EXPECT_EQ(reducer->failure()->level, run->failure->level);
      EXPECT_EQ(reducer->failure()->step, run->failure->step);
    }
  }
}

}  // namespace
}  // namespace comptx
