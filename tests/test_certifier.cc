// Tests for online::Certifier: prefix agreement with batch CheckCompC on
// randomized traces over every topology shape, the paper's Figure 3/4
// fixtures, sealing + epoch pruning, and the runtime RootOrderManager
// observer hook.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/figures.h"
#include "core/correctness.h"
#include "online/certifier.h"
#include "runtime/cc_scheduler.h"
#include "util/rng.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx::online {
namespace {

ReductionOptions BatchPrefixOptions(bool forgetting = true) {
  ReductionOptions options;
  // Prefixes of well-formed executions legitimately violate the
  // completeness rules of Defs 3-4 until the remaining events arrive, so
  // the batch reference runs with validation off — the same semantics the
  // online session implements.
  options.validate = false;
  options.keep_fronts = false;
  options.forgetting = forgetting;
  return options;
}

/// Replays `text` event by event through a Certifier and asserts the
/// online verdict equals batch CheckCompC on the accepted-events prefix
/// after EVERY event.  Returns the number of accepted events.
size_t ExpectPrefixAgreement(const std::string& text,
                             const CertifierOptions& options = {},
                             const std::string& context = "") {
  auto events = workload::ParseTraceEvents(text);
  EXPECT_TRUE(events.ok()) << context << ": " << events.status().ToString();
  if (!events.ok()) return 0;

  Certifier certifier(options);
  CompositeSystem mirror;
  size_t accepted = 0;
  size_t index = 0;
  for (const workload::TraceEvent& event : *events) {
    ++index;
    if (!certifier.Ingest(event).ok()) continue;  // mirror skips rejections
    ++accepted;
    Status applied = workload::ApplyTraceEvent(mirror, event);
    EXPECT_TRUE(applied.ok()) << context << " event " << index << ": "
                              << applied.ToString();
    auto batch = CheckCompC(mirror, BatchPrefixOptions(options.forgetting));
    EXPECT_TRUE(batch.ok()) << context << " event " << index;
    EXPECT_EQ(certifier.Certifiable(), batch->correct)
        << context << ": disagreement after event " << index << " ("
        << workload::FormatTraceEvent(event) << ")";
    if (certifier.Certifiable() != batch->correct) return accepted;  // stop
  }
  return accepted;
}

TEST(Certifier, EmptySessionIsCertifiable) {
  Certifier certifier;
  EXPECT_TRUE(certifier.Certifiable());
  EXPECT_EQ(certifier.Verdict().order, 0u);
  EXPECT_TRUE(certifier.SerialWitness().empty());
}

TEST(Certifier, Figure4PrefixAgreementAndWitness) {
  auto text = workload::SaveTrace(analysis::MakeFigure4().system);
  ASSERT_TRUE(text.ok());
  ExpectPrefixAgreement(*text, {}, "figure4");

  // Full replay is certifiable with a two-root serial witness.
  auto events = workload::ParseTraceEvents(*text);
  ASSERT_TRUE(events.ok());
  Certifier certifier;
  for (const auto& event : *events) {
    ASSERT_TRUE(certifier.Ingest(event).ok());
  }
  EXPECT_TRUE(certifier.Certifiable());
  EXPECT_EQ(certifier.Verdict().order, 3u);
  EXPECT_EQ(certifier.SerialWitness().size(), 2u);
}

TEST(Certifier, Figure3DetectsTheViolation) {
  auto text = workload::SaveTrace(analysis::MakeFigure3().system);
  ASSERT_TRUE(text.ok());
  ExpectPrefixAgreement(*text, {}, "figure3");

  auto events = workload::ParseTraceEvents(*text);
  ASSERT_TRUE(events.ok());
  Certifier certifier;
  for (const auto& event : *events) {
    ASSERT_TRUE(certifier.Ingest(event).ok());
  }
  EXPECT_FALSE(certifier.Certifiable());
  ASSERT_TRUE(certifier.Verdict().failure.has_value());
  EXPECT_FALSE(certifier.Verdict().failure->description.empty());
  EXPECT_TRUE(certifier.SerialWitness().empty());
}

TEST(Certifier, Figure4WithoutForgettingFails) {
  // The E8 ablation: disabling Def 10.3 forgetting makes Figure 4
  // incorrect, online and batch alike.
  auto text = workload::SaveTrace(analysis::MakeFigure4().system);
  ASSERT_TRUE(text.ok());
  CertifierOptions options;
  options.forgetting = false;
  ExpectPrefixAgreement(*text, options, "figure4-noforget");

  auto events = workload::ParseTraceEvents(*text);
  ASSERT_TRUE(events.ok());
  Certifier certifier(options);
  for (const auto& event : *events) {
    ASSERT_TRUE(certifier.Ingest(event).ok());
  }
  EXPECT_FALSE(certifier.Certifiable());
}

/// The headline property: online == batch after every event, across >=1000
/// random traces covering all four topology shapes, with and without
/// local serialization anomalies injected.
TEST(Certifier, PrefixAgreementOnRandomTraces) {
  const std::vector<workload::TopologyKind> kinds = {
      workload::TopologyKind::kStack,
      workload::TopologyKind::kFork,
      workload::TopologyKind::kJoin,
      workload::TopologyKind::kLayeredDag,
  };
  size_t traces = 0;
  for (workload::TopologyKind kind : kinds) {
    for (uint64_t seed = 0; seed < 250; ++seed) {
      workload::WorkloadSpec spec;
      spec.topology.kind = kind;
      spec.topology.depth = 2 + static_cast<uint32_t>(seed % 2);
      spec.topology.branches = 2;
      spec.topology.roots = 2 + static_cast<uint32_t>(seed % 3);
      spec.topology.fanout = 2;
      spec.execution.conflict_prob = 0.35;
      // Half the traces inject local anomalies so the incorrect branch of
      // the verdict is exercised heavily as well.
      spec.execution.disorder_prob = (seed % 2 == 0) ? 0.0 : 0.3;
      spec.execution.intra_weak_prob = 0.25;
      spec.execution.intra_strong_prob = 0.1;

      auto cs = workload::GenerateSystem(spec, seed);
      ASSERT_TRUE(cs.ok()) << cs.status().ToString();
      auto text = workload::SaveTrace(*cs);
      ASSERT_TRUE(text.ok());
      std::string context = std::string(TopologyKindToString(kind)) +
                            "/seed=" + std::to_string(seed);
      ASSERT_GT(ExpectPrefixAgreement(*text, {}, context), 0u) << context;
      ++traces;
      if (HasFailure()) return;  // one counterexample is enough output
    }
  }
  EXPECT_EQ(traces, 1000u);
}

TEST(Certifier, RejectsEventsOnSealedSubtrees) {
  Certifier certifier;
  workload::TraceEvent event;
  event.kind = workload::TraceEventKind::kSchedule;
  event.name = "S1";
  ASSERT_TRUE(certifier.Ingest(event).ok());
  event.kind = workload::TraceEventKind::kRoot;
  event.schedule = 0;
  event.name = "T1";
  ASSERT_TRUE(certifier.Ingest(event).ok());
  event = {};
  event.kind = workload::TraceEventKind::kLeaf;
  event.parent = 0;
  event.name = "x";
  ASSERT_TRUE(certifier.Ingest(event).ok());

  ASSERT_TRUE(certifier.Commit(NodeId(0)).ok());
  ASSERT_TRUE(certifier.Commit(NodeId(0)).ok());  // idempotent

  // A new operation under the sealed root must be rejected...
  event = {};
  event.kind = workload::TraceEventKind::kLeaf;
  event.parent = 0;
  event.name = "y";
  EXPECT_FALSE(certifier.Ingest(event).ok());
  // ...while unrelated growth is still accepted.
  event = {};
  event.kind = workload::TraceEventKind::kRoot;
  event.schedule = 0;
  event.name = "T2";
  EXPECT_TRUE(certifier.Ingest(event).ok());
  EXPECT_EQ(certifier.Stats().events_rejected, 1u);
}

TEST(Certifier, PruningRemovesQuiescentCommittedSubtrees) {
  // Two independent roots with a conflict-free history: after committing
  // T1, its subtree has no incoming edges anywhere and must be pruned.
  Certifier certifier;
  workload::TraceEvent event;
  event.kind = workload::TraceEventKind::kSchedule;
  event.name = "S1";
  ASSERT_TRUE(certifier.Ingest(event).ok());
  for (const char* root : {"T1", "T2"}) {
    event = {};
    event.kind = workload::TraceEventKind::kRoot;
    event.schedule = 0;
    event.name = root;
    ASSERT_TRUE(certifier.Ingest(event).ok());
  }
  for (auto [parent, name] : {std::pair{0u, "x"}, {1u, "y"}}) {
    event = {};
    event.kind = workload::TraceEventKind::kLeaf;
    event.parent = parent;
    event.name = name;
    ASSERT_TRUE(certifier.Ingest(event).ok());
  }

  ASSERT_TRUE(certifier.Commit(NodeId(0)).ok());
  CertifierStats stats = certifier.Stats();
  EXPECT_EQ(stats.pruned_nodes, 2u);  // T1 and its leaf
  EXPECT_EQ(stats.live_nodes, 2u);    // T2 and its leaf
  EXPECT_TRUE(certifier.Certifiable());
  // The witness only lists live roots.
  std::vector<NodeId> witness = certifier.SerialWitness();
  ASSERT_EQ(witness.size(), 1u);
  EXPECT_EQ(witness[0], NodeId(1));
}

TEST(Certifier, CommitAllRootsOnRandomTracePreservesVerdict) {
  // Ingest a full random trace, then commit every root; pruning must never
  // flip the verdict, and the verdict must still match batch on the full
  // system.
  for (uint64_t seed = 0; seed < 25; ++seed) {
    workload::WorkloadSpec spec;
    spec.topology.kind = workload::TopologyKind::kLayeredDag;
    spec.topology.depth = 3;
    spec.topology.roots = 3;
    spec.execution.conflict_prob = 0.3;
    spec.execution.disorder_prob = (seed % 2 == 0) ? 0.0 : 0.3;
    auto cs = workload::GenerateSystem(spec, 5000 + seed);
    ASSERT_TRUE(cs.ok());
    auto text = workload::SaveTrace(*cs);
    ASSERT_TRUE(text.ok());
    auto events = workload::ParseTraceEvents(*text);
    ASSERT_TRUE(events.ok());

    Certifier certifier;
    for (const auto& event : *events) {
      ASSERT_TRUE(certifier.Ingest(event).ok());
    }
    auto batch = CheckCompC(*cs, BatchPrefixOptions());
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(certifier.Certifiable(), batch->correct) << "seed " << seed;

    for (NodeId root : cs->Roots()) {
      ASSERT_TRUE(certifier.Commit(root).ok());
    }
    certifier.Prune();
    EXPECT_EQ(certifier.Certifiable(), batch->correct)
        << "pruning flipped the verdict, seed " << seed;
    if (batch->correct) {
      EXPECT_GT(certifier.Stats().pruned_nodes, 0u) << "seed " << seed;
    }
  }
}

TEST(Certifier, RejectsRecursiveInvocation) {
  Certifier certifier;
  workload::TraceEvent event;
  event.kind = workload::TraceEventKind::kSchedule;
  event.name = "S1";
  ASSERT_TRUE(certifier.Ingest(event).ok());
  event.name = "S2";
  ASSERT_TRUE(certifier.Ingest(event).ok());
  event = {};
  event.kind = workload::TraceEventKind::kRoot;
  event.schedule = 0;
  event.name = "T1";
  ASSERT_TRUE(certifier.Ingest(event).ok());
  event = {};
  event.kind = workload::TraceEventKind::kSub;
  event.parent = 0;
  event.schedule = 1;
  event.name = "t11";
  ASSERT_TRUE(certifier.Ingest(event).ok());
  // t11 runs on S2; invoking S1 from it would close S1 -> S2 -> S1.
  event = {};
  event.kind = workload::TraceEventKind::kSub;
  event.parent = 1;
  event.schedule = 0;
  event.name = "t111";
  EXPECT_FALSE(certifier.Ingest(event).ok());
  // The session survives and stays usable.
  EXPECT_TRUE(certifier.Certifiable());
  event = {};
  event.kind = workload::TraceEventKind::kLeaf;
  event.parent = 1;
  event.name = "x";
  EXPECT_TRUE(certifier.Ingest(event).ok());
}

class RecordingObserver : public runtime::RootOrderObserver {
 public:
  void OnEdgesAccepted(
      const std::vector<std::pair<uint32_t, uint32_t>>& added) override {
    for (const auto& edge : added) edges.push_back(edge);
    ++batches;
  }
  void OnRootRemoved(uint32_t root) override { removed.push_back(root); }

  std::vector<std::pair<uint32_t, uint32_t>> edges;
  std::vector<uint32_t> removed;
  int batches = 0;
};

TEST(RootOrderObserver, NotifiedOfAcceptedEdgesOnly) {
  runtime::RootOrderManager manager;
  RecordingObserver observer;
  manager.set_observer(&observer);

  // Duplicates and self-loops are filtered from the notification.
  EXPECT_TRUE(manager.TryAddEdges({{1, 2}, {1, 1}, {1, 2}, {2, 3}}));
  ASSERT_EQ(observer.edges.size(), 2u);
  EXPECT_EQ(observer.edges[0], (std::pair<uint32_t, uint32_t>{1, 2}));
  EXPECT_EQ(observer.edges[1], (std::pair<uint32_t, uint32_t>{2, 3}));
  EXPECT_EQ(observer.batches, 1);

  // A rejected batch (would close 1 -> 2 -> 3 -> 1) notifies nothing.
  EXPECT_FALSE(manager.TryAddEdges({{3, 1}}));
  EXPECT_EQ(observer.batches, 1);

  // A fully redundant batch notifies nothing either.
  EXPECT_TRUE(manager.TryAddEdges({{1, 2}}));
  EXPECT_EQ(observer.batches, 1);

  manager.RemoveRoot(2);
  ASSERT_EQ(observer.removed.size(), 1u);
  EXPECT_EQ(observer.removed[0], 2u);
  EXPECT_EQ(manager.EdgeCount(), 0u);

  // Detaching stops notifications.
  manager.set_observer(nullptr);
  EXPECT_TRUE(manager.TryAddEdges({{5, 6}}));
  EXPECT_EQ(observer.batches, 1);
}

/// The observer is how a runtime streams its serialization decisions into
/// an online certifier session: each accepted root-order edge becomes a
/// conflicting, weak-output-ordered pair between the roots' designated
/// ticket operations, whose pulled-up observed order then constrains the
/// top-level front.  This adapter test closes the loop.
class CertifierBridge : public runtime::RootOrderObserver {
 public:
  CertifierBridge(Certifier* certifier, std::vector<uint32_t> ticket_op)
      : certifier_(certifier), ticket_op_(std::move(ticket_op)) {}

  void OnEdgesAccepted(
      const std::vector<std::pair<uint32_t, uint32_t>>& added) override {
    for (const auto& [from, to] : added) {
      workload::TraceEvent event;
      event.kind = workload::TraceEventKind::kConflict;
      event.a = ticket_op_[from];
      event.b = ticket_op_[to];
      Status status = certifier_->Ingest(event);
      EXPECT_TRUE(status.ok()) << status.ToString();
      event.kind = workload::TraceEventKind::kWeakOutput;
      status = certifier_->Ingest(event);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }
  void OnRootRemoved(uint32_t) override {}

 private:
  Certifier* certifier_;
  std::vector<uint32_t> ticket_op_;  // runtime root index -> leaf node id
};

TEST(RootOrderObserver, BridgesRuntimeDecisionsIntoCertifier) {
  // Three roots, each with one leaf (its ticket operation) on a shared
  // schedule.  The runtime decides T2 < T0 < T1; the bridged certifier
  // stays certifiable and its serial witness lists the roots in exactly
  // that order (forcing a reorder: T2 was created last).
  Certifier certifier;
  workload::TraceEvent event;
  event.kind = workload::TraceEventKind::kSchedule;
  event.name = "S1";
  ASSERT_TRUE(certifier.Ingest(event).ok());
  std::vector<uint32_t> roots, tickets;
  for (const char* name : {"T0", "T1", "T2"}) {
    event = {};
    event.kind = workload::TraceEventKind::kRoot;
    event.schedule = 0;
    event.name = name;
    ASSERT_TRUE(certifier.Ingest(event).ok());
    roots.push_back(static_cast<uint32_t>(certifier.system().NodeCount() - 1));
    event = {};
    event.kind = workload::TraceEventKind::kLeaf;
    event.parent = roots.back();
    event.name = std::string("x") + name;
    ASSERT_TRUE(certifier.Ingest(event).ok());
    tickets.push_back(
        static_cast<uint32_t>(certifier.system().NodeCount() - 1));
  }

  runtime::RootOrderManager manager;
  CertifierBridge bridge(&certifier, tickets);
  manager.set_observer(&bridge);

  EXPECT_TRUE(manager.TryAddEdges({{2, 0}, {0, 1}}));
  EXPECT_TRUE(certifier.Certifiable());

  std::vector<NodeId> witness = certifier.SerialWitness();
  ASSERT_EQ(witness.size(), 3u);
  EXPECT_EQ(witness[0], NodeId(roots[2]));
  EXPECT_EQ(witness[1], NodeId(roots[0]));
  EXPECT_EQ(witness[2], NodeId(roots[1]));

  // The runtime refuses 1 -> 2 (would close T2 < T0 < T1 < T2); nothing
  // reaches the certifier and the verdict is unchanged.
  EXPECT_FALSE(manager.TryAddEdges({{1, 2}}));
  EXPECT_TRUE(certifier.Certifiable());
  EXPECT_EQ(certifier.SerialWitness().size(), 3u);
}

}  // namespace
}  // namespace comptx::online
