#include <gtest/gtest.h>

#include "analysis/builder.h"
#include "analysis/figures.h"
#include "core/composite_system.h"
#include "test_helpers.h"

namespace comptx {
namespace {

TEST(ValidateTest, WellFormedStackPasses) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/true);
  EXPECT_TRUE(stack.cs.Validate().ok()) << stack.cs.Validate().ToString();
}

TEST(ValidateTest, AllFiguresValid) {
  EXPECT_TRUE(analysis::MakeFigure1().system.Validate().ok());
  EXPECT_TRUE(analysis::MakeFigure2().system.Validate().ok());
  EXPECT_TRUE(analysis::MakeFigure3().system.Validate().ok());
  EXPECT_TRUE(analysis::MakeFigure4().system.Validate().ok());
}

TEST(ValidateTest, UnorderedConflictRejected) {
  // Def 3.1c: conflicting operations must be weak-output ordered.
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(stack.cs.AddConflict(stack.s1, stack.s2).ok());
  Status status = stack.cs.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("left unordered"), std::string::npos);
}

TEST(ValidateTest, ConflictOrderedBothWaysRejected) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(stack.cs.AddWeakOutput(stack.x2, stack.x1).ok());
  Status status = stack.cs.Validate();
  EXPECT_FALSE(status.ok());
}

TEST(ValidateTest, ConflictAgainstInputOrderRejected) {
  // Def 3.1a: weak input s2 -> s1, but the conflicting leaves are ordered
  // x1 (of s1) before x2 (of s2).
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(
      stack.cs.AddWeakInput(ScheduleId(1), stack.s2, stack.s1).ok());
  Status status = stack.cs.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("against the weak input order"),
            std::string::npos);
}

TEST(ValidateTest, IntraOrderMustBeHonored) {
  // Def 3.2: a transaction's intra order must appear in the output order.
  analysis::CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t = b.Root(s, "T");
  NodeId x = b.Leaf(t, "x");
  NodeId y = b.Leaf(t, "y");
  b.IntraWeak(t, x, y);
  CompositeSystem cs = std::move(b.Take());
  Status status = cs.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("intra-transaction"), std::string::npos);
  ASSERT_TRUE(cs.AddWeakOutput(x, y).ok());
  EXPECT_TRUE(cs.Validate().ok());
}

TEST(ValidateTest, StrongInputForcesStrongOutputs) {
  // Def 3.3: strong input order requires all operation pairs strongly
  // ordered in the output.
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(
      stack.cs.AddStrongInput(ScheduleId(1), stack.s1, stack.s2).ok());
  Status status = stack.cs.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("Def 3.3"), std::string::npos);
  ASSERT_TRUE(stack.cs.AddStrongOutput(stack.x1, stack.x2).ok());
  EXPECT_TRUE(stack.cs.Validate().ok());
}

TEST(ValidateTest, OutputOrderMustPropagateToCallee) {
  // Def 4.7: the top schedule orders s1 before s2 (conflicting), both
  // transactions of SB, but SB's input order was not told.
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(stack.cs.AddConflict(stack.s1, stack.s2).ok());
  ASSERT_TRUE(stack.cs.AddWeakOutput(stack.s1, stack.s2).ok());
  Status status = stack.cs.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("Def 4.7"), std::string::npos);
  ASSERT_TRUE(
      stack.cs.AddWeakInput(ScheduleId(1), stack.s1, stack.s2).ok());
  EXPECT_TRUE(stack.cs.Validate().ok());
}

TEST(ValidateTest, CyclicWeakOutputRejected) {
  analysis::CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t1 = b.Root(s, "T1");
  NodeId t2 = b.Root(s, "T2");
  NodeId x = b.Leaf(t1, "x");
  NodeId y = b.Leaf(t2, "y");
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.AddWeakOutput(x, y).ok());
  ASSERT_TRUE(cs.AddWeakOutput(y, x).ok());
  Status status = cs.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cyclic"), std::string::npos);
}

TEST(ValidateTest, CyclicInputOrderRejected) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(
      stack.cs.AddWeakInput(ScheduleId(1), stack.s1, stack.s2).ok());
  ASSERT_TRUE(
      stack.cs.AddWeakInput(ScheduleId(1), stack.s2, stack.s1).ok());
  EXPECT_FALSE(stack.cs.Validate().ok());
}

TEST(ValidateTest, StrongIntraOutsideWeakIntraRejected) {
  analysis::CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t = b.Root(s, "T");
  NodeId x = b.Leaf(t, "x");
  NodeId y = b.Leaf(t, "y");
  CompositeSystem cs = std::move(b.Take());
  // Bypass the typed mutators to inject the inconsistency.
  cs.mutable_node(t).strong_intra.Add(x, y);
  EXPECT_FALSE(cs.Validate().ok());
}

}  // namespace
}  // namespace comptx
