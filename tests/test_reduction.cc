#include "core/reduction.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/builder.h"
#include "core/calculation.h"
#include "core/correctness.h"
#include "test_helpers.h"

namespace comptx {
namespace {

TEST(ReductionTest, SingleScheduleSerializableIsCompC) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  auto result = RunReduction(stack.cs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->comp_c);
  EXPECT_EQ(result->order, 2u);
  ASSERT_EQ(result->fronts.size(), 3u);  // levels 0, 1, 2.
  // The final front holds exactly the roots.
  EXPECT_EQ(result->FinalFront().nodes,
            (std::vector<NodeId>{stack.t1, stack.t2}));
}

TEST(ReductionTest, ObservedOrderPulledUpThroughLevels) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/true);
  auto result = RunReduction(stack.cs);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->comp_c);
  // Level 1: conflict at SB orders s1 before s2.
  EXPECT_TRUE(result->fronts[1].observed.Contains(stack.s1, stack.s2));
  // Level 2: the top conflict keeps the order alive at the roots.
  EXPECT_TRUE(result->fronts[2].observed.Contains(stack.t1, stack.t2));
}

TEST(ReductionTest, ForgettingDropsCommutingPairOrders) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  auto result = RunReduction(stack.cs);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->comp_c);
  EXPECT_TRUE(result->fronts[1].observed.Contains(stack.s1, stack.s2));
  // Without a conflict at ST, the order is forgotten at the root level.
  EXPECT_FALSE(result->fronts[2].observed.Contains(stack.t1, stack.t2));
}

TEST(ReductionTest, CrossAnomalyRejectedWhenTopConflicts) {
  CompositeSystem cs = testing::MakeCrossAnomaly(/*top_conflicts=*/true);
  auto result = RunReduction(cs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->comp_c);
  ASSERT_TRUE(result->failure.has_value());
  EXPECT_EQ(result->failure->level, 2u);
  EXPECT_FALSE(result->failure->witness.nodes.empty());
}

TEST(ReductionTest, CrossAnomalyAcceptedWhenTopCommutes) {
  // The same opposite serialization orders, but the top schedule knows the
  // subtransaction pairs commute: both orders are forgotten (paper §3.7).
  CompositeSystem cs = testing::MakeCrossAnomaly(/*top_conflicts=*/false);
  auto result = RunReduction(cs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->comp_c);
}

TEST(ReductionTest, ForgettingAblationRejectsFig4Shape) {
  // With forgetting disabled, the commuting pair's orders are pulled up
  // anyway and the opposite directions clash (E8 ablation).
  CompositeSystem cs = testing::MakeCrossAnomaly(/*top_conflicts=*/false);
  ReductionOptions options;
  options.forgetting = false;
  auto result = RunReduction(cs, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->comp_c);
}

TEST(ReductionTest, IntraGroupContradictionFailsCalculation) {
  // Exercise Def 14's intra check directly: the schedule serialized the
  // conflicting leaves y before x, but an externally observed order (as if
  // pulled up from another interaction) says x before y.  No isolated
  // execution of s1 can satisfy both.
  analysis::CompositeSystemBuilder b;
  ScheduleId top = b.Schedule("ST");
  ScheduleId bottom = b.Schedule("SB");
  NodeId t1 = b.Root(top, "T1");
  b.Root(top, "T2");
  NodeId s1 = b.Sub(t1, bottom, "s1");
  NodeId x = b.Leaf(s1, "x");
  NodeId y = b.Leaf(s1, "y");
  b.Conflict(x, y);
  b.WeakOut(y, x);
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.Validate().ok()) << cs.Validate().ToString();
  SystemContext ctx(cs);
  Front front;
  front.level = 0;
  front.nodes = {x, y};
  std::sort(front.nodes.begin(), front.nodes.end());
  front.observed.Add(x, y);  // injected contradiction.
  front.conflicts.Add(x, y);
  auto violation = FindCalculationViolation(ctx, front, {s1});
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("no calculation"),
            std::string::npos);
}

TEST(ReductionTest, StrongOrdersBlockReordering) {
  // Same sandwich, but created by strong orders instead of conflicts: a
  // strong temporal chain x1 << x2 at SB pinned by strong intra orders...
  // here simply: leaves of s1 strongly ordered around s2's leaf.
  analysis::CompositeSystemBuilder b;
  ScheduleId top = b.Schedule("ST");
  ScheduleId bottom = b.Schedule("SB");
  NodeId t1 = b.Root(top, "T1");
  NodeId t2 = b.Root(top, "T2");
  NodeId s1 = b.Sub(t1, bottom, "s1");
  NodeId s2 = b.Sub(t2, bottom, "s2");
  NodeId x = b.Leaf(s1, "x");
  NodeId y = b.Leaf(s1, "y");
  NodeId z = b.Leaf(s2, "z");
  // Conflicts order x < z < y; the calculation must interleave s2 into
  // s1, which the grouping forbids.
  b.Conflict(x, z);
  b.WeakOut(x, z);
  b.Conflict(z, y);
  b.WeakOut(z, y);
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.Validate().ok());
  auto result = RunReduction(cs);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->comp_c);
  EXPECT_EQ(result->failure->step, ReductionFailureStep::kCalculation);
}

TEST(ReductionTest, RootsAtDifferentLevelsPropagate) {
  // A root directly at the leaf schedule coexists with a two-level root.
  analysis::CompositeSystemBuilder b;
  ScheduleId top = b.Schedule("ST");
  ScheduleId bottom = b.Schedule("SB");
  NodeId t1 = b.Root(top, "T1");
  NodeId t2 = b.Root(bottom, "T2");  // level-1 root.
  NodeId s1 = b.Sub(t1, bottom, "s1");
  NodeId x1 = b.Leaf(s1, "x1");
  NodeId x2 = b.Leaf(t2, "x2");
  b.Conflict(x1, x2);
  b.WeakOut(x1, x2);
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.Validate().ok());
  auto result = RunReduction(cs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->comp_c);
  std::vector<NodeId> final_nodes = result->FinalFront().nodes;
  std::vector<NodeId> roots = {t1, t2};
  std::sort(roots.begin(), roots.end());
  EXPECT_EQ(final_nodes, roots);
  // The conflict at SB relates the two roots in the observed order.
  EXPECT_TRUE(result->FinalFront().observed.Contains(s1, t2) ||
              result->FinalFront().observed.Contains(t1, t2));
}

TEST(ReductionTest, EmptySystemIsTriviallyCorrect) {
  CompositeSystem cs;
  auto result = RunReduction(cs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->comp_c);
  EXPECT_EQ(result->order, 0u);
}

TEST(ReductionTest, KeepFrontsFalseKeepsOnlyFinal) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ReductionOptions options;
  options.keep_fronts = false;
  auto result = RunReduction(stack.cs, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->comp_c);
  EXPECT_EQ(result->fronts.size(), 1u);
  EXPECT_EQ(result->FinalFront().level, 2u);
}

TEST(ReductionTest, InvalidSystemReportsStatus) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(stack.cs.AddConflict(stack.s1, stack.s2).ok());  // unordered.
  auto result = RunReduction(stack.cs);
  EXPECT_FALSE(result.ok());
}

TEST(CompCTest, SerialWitnessRespectsObservedOrder) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/false, /*top_conflict=*/true);
  auto result = CheckCompC(stack.cs);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->correct);
  // T2's work serialized first, so the witness must be T2, T1.
  EXPECT_EQ(result->serial_order,
            (std::vector<NodeId>{stack.t2, stack.t1}));
}

TEST(CompCTest, IsCompCConvenience) {
  EXPECT_TRUE(IsCompC(testing::MakeCrossAnomaly(false)));
  EXPECT_FALSE(IsCompC(testing::MakeCrossAnomaly(true)));
}

}  // namespace
}  // namespace comptx
