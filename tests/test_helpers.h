#ifndef COMPTX_TESTS_TEST_HELPERS_H_
#define COMPTX_TESTS_TEST_HELPERS_H_

#include "analysis/builder.h"
#include "core/composite_system.h"
#include "util/logging.h"

namespace comptx::testing {

/// A minimal two-level stack: top schedule ST with roots T1, T2 each
/// invoking one subtransaction at the bottom schedule SB; the
/// subtransactions have conflicting leaves x1, x2.
///
/// `t1_first` picks the leaf serialization direction; `top_conflict`
/// declares the subtransaction pair conflicting at ST (with matching weak
/// output t1-before-t2 when true).
struct TwoLevelStack {
  CompositeSystem cs;
  NodeId t1, t2;    // roots
  NodeId s1, s2;    // subtransactions
  NodeId x1, x2;    // leaves
};

inline TwoLevelStack MakeTwoLevelStack(bool t1_first, bool top_conflict) {
  analysis::CompositeSystemBuilder b;
  ScheduleId top = b.Schedule("ST");
  ScheduleId bottom = b.Schedule("SB");
  TwoLevelStack out;
  out.t1 = b.Root(top, "T1");
  out.t2 = b.Root(top, "T2");
  out.s1 = b.Sub(out.t1, bottom, "s1");
  out.s2 = b.Sub(out.t2, bottom, "s2");
  out.x1 = b.Leaf(out.s1, "x1");
  out.x2 = b.Leaf(out.s2, "x2");
  b.Conflict(out.x1, out.x2);
  if (t1_first) {
    b.WeakOut(out.x1, out.x2);
  } else {
    b.WeakOut(out.x2, out.x1);
  }
  if (top_conflict) {
    b.Conflict(out.s1, out.s2);
    if (t1_first) {
      b.WeakOut(out.s1, out.s2);
      b.WeakIn(bottom, out.s1, out.s2);
    } else {
      b.WeakOut(out.s2, out.s1);
      b.WeakIn(bottom, out.s2, out.s1);
    }
  }
  out.cs = std::move(b.Take());
  return out;
}

/// The classic cross-component anomaly: two roots, two leaf schedules, the
/// two schedules serialize the roots in opposite directions, and the top
/// schedule declares both subtransaction pairs conflicting (so nothing is
/// forgotten).  Not Comp-C.
inline CompositeSystem MakeCrossAnomaly(bool top_conflicts) {
  analysis::CompositeSystemBuilder b;
  ScheduleId top = b.Schedule("ST");
  ScheduleId left = b.Schedule("SL");
  ScheduleId right = b.Schedule("SR");
  NodeId t1 = b.Root(top, "T1");
  NodeId t2 = b.Root(top, "T2");
  NodeId a1 = b.Sub(t1, left, "a1");
  NodeId a2 = b.Sub(t2, left, "a2");
  NodeId b1 = b.Sub(t1, right, "b1");
  NodeId b2 = b.Sub(t2, right, "b2");
  NodeId xa1 = b.Leaf(a1, "xa1");
  NodeId xa2 = b.Leaf(a2, "xa2");
  NodeId xb1 = b.Leaf(b1, "xb1");
  NodeId xb2 = b.Leaf(b2, "xb2");
  b.Conflict(xa1, xa2);
  b.WeakOut(xa1, xa2);  // left says T1 before T2.
  b.Conflict(xb2, xb1);
  b.WeakOut(xb2, xb1);  // right says T2 before T1.
  if (top_conflicts) {
    b.Conflict(a1, a2);
    b.WeakOut(a1, a2);
    b.WeakIn(left, a1, a2);
    b.Conflict(b2, b1);
    b.WeakOut(b2, b1);
    b.WeakIn(right, b2, b1);
  }
  return std::move(b.Take());
}

/// The forgotten-order demo for the semantic conflict layer: the
/// MakeCrossAnomaly(true) shape — two roots serialized in opposite
/// directions by two leaf schedules, both subtransaction pairs declared
/// conflicting at the top — which the raw bits reject (the top schedule
/// observes T1 -> T2 and T2 -> T1).  With `tag`, the left pair a1, a2 is
/// tagged as commuting counter increments on one instance: the spec
/// erases that conflict, its orders are forgotten on pull-up, only the
/// right pair's T2 -> T1 survives, and the execution is Comp-C.
struct SemanticCrossDemo {
  CompositeSystem cs;
  NodeId a1, a2;      // the (possibly) commuting top-level pair
  uint32_t inc = 0;   // global class index of counter.inc (when tagged)
};

inline SemanticCrossDemo MakeSemanticCrossDemo(bool tag) {
  analysis::CompositeSystemBuilder b;
  ScheduleId top = b.Schedule("ST");
  ScheduleId left = b.Schedule("SL");
  ScheduleId right = b.Schedule("SR");
  NodeId t1 = b.Root(top, "T1");
  NodeId t2 = b.Root(top, "T2");
  SemanticCrossDemo out;
  out.a1 = b.Sub(t1, left, "a1");
  out.a2 = b.Sub(t2, left, "a2");
  NodeId b1 = b.Sub(t1, right, "b1");
  NodeId b2 = b.Sub(t2, right, "b2");
  NodeId xa1 = b.Leaf(out.a1, "xa1");
  NodeId xa2 = b.Leaf(out.a2, "xa2");
  NodeId xb1 = b.Leaf(b1, "xb1");
  NodeId xb2 = b.Leaf(b2, "xb2");
  b.Conflict(xa1, xa2);
  b.WeakOut(xa1, xa2);  // left says T1 before T2.
  b.Conflict(xb2, xb1);
  b.WeakOut(xb2, xb1);  // right says T2 before T1.
  b.Conflict(out.a1, out.a2);
  b.WeakOut(out.a1, out.a2);
  b.WeakIn(left, out.a1, out.a2);
  b.Conflict(b2, b1);
  b.WeakOut(b2, b1);
  b.WeakIn(right, b2, b1);
  out.cs = std::move(b.Take());
  if (tag) {
    uint32_t counter = out.cs.DeclareAdt("counter").value();
    out.inc = out.cs.DeclareAdtOp(counter, "inc").value();
    COMPTX_CHECK(out.cs.DeclareCommute(out.inc, out.inc).ok());
    COMPTX_CHECK(out.cs.TagOperation(out.a1, out.inc, 0).ok());
    COMPTX_CHECK(out.cs.TagOperation(out.a2, out.inc, 0).ok());
  }
  return out;
}

}  // namespace comptx::testing

#endif  // COMPTX_TESTS_TEST_HELPERS_H_
