// Cross-protocol invariants on identical workloads:
//  * every protocol commits exactly the same operations (no lost work);
//  * global serial and conservative timestamp admission serialize in the
//    same (timestamp) order, so they must leave *identical* store states
//    — equivalence of executions made observable;
//  * safe protocols' recorded schedules are all Comp-C with serial
//    witnesses consistent with some total root order.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/correctness.h"
#include "runtime/system_executor.h"
#include "workload/program_gen.h"

namespace comptx::runtime {
namespace {

workload::RuntimeWorkloadSpec Spec(uint64_t variant) {
  workload::RuntimeWorkloadSpec spec;
  spec.layers = 3;
  spec.components_per_layer = 2;
  spec.items_per_component = 6;
  spec.services_per_component = 2;
  spec.steps_per_service = 3;
  spec.invoke_fraction = 0.5 + 0.1 * double(variant % 3);
  spec.num_roots = 6;
  return spec;
}

/// Runs `protocol` on a fresh instantiation of the workload and returns
/// the execution result plus the final store image.
struct Outcome {
  ExecutionResult result;
  std::vector<std::vector<int64_t>> stores;
};

Outcome RunProtocol(uint64_t workload_seed, Protocol protocol, uint64_t exec_seed) {
  RuntimeSystem system =
      workload::GenerateRuntimeWorkload(Spec(workload_seed), workload_seed);
  ExecutorOptions options;
  options.protocol = protocol;
  options.seed = exec_seed;
  auto result = ExecuteSystem(system, options);
  EXPECT_TRUE(result.ok()) << ProtocolToString(protocol) << ": "
                           << result.status().ToString();
  Outcome outcome{std::move(result).value(), {}};
  for (const auto& component : system.components) {
    std::vector<int64_t> values;
    for (uint32_t item = 0; item < component->store().item_count(); ++item) {
      values.push_back(component->store().Read(item));
    }
    outcome.stores.push_back(std::move(values));
  }
  return outcome;
}

TEST(ProtocolPropertiesTest, AllProtocolsCommitTheSameWork) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    uint64_t reference_ops = 0;
    bool first = true;
    for (Protocol protocol :
         {Protocol::kGlobalSerial, Protocol::kClosedTwoPhase,
          Protocol::kOpenTwoPhase, Protocol::kOpenValidated,
          Protocol::kConservativeTimestamp}) {
      Outcome outcome = RunProtocol(seed, protocol, seed * 7 + 1);
      if (first) {
        reference_ops = outcome.result.stats.committed_ops;
        first = false;
      } else {
        EXPECT_EQ(outcome.result.stats.committed_ops, reference_ops)
            << ProtocolToString(protocol) << " seed " << seed;
      }
    }
  }
}

TEST(ProtocolPropertiesTest, SerialAndConservativeTsLeaveIdenticalStores) {
  // Both serialize conflicting work in root-index order, so the final
  // database images must match exactly — observable execution
  // equivalence, not just an abstract verdict.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Outcome serial = RunProtocol(seed, Protocol::kGlobalSerial, seed * 3 + 5);
    Outcome conservative =
        RunProtocol(seed, Protocol::kConservativeTimestamp, seed * 11 + 2);
    ASSERT_EQ(serial.stores.size(), conservative.stores.size());
    for (size_t c = 0; c < serial.stores.size(); ++c) {
      EXPECT_EQ(serial.stores[c], conservative.stores[c])
          << "component " << c << " seed " << seed;
    }
  }
}

TEST(ProtocolPropertiesTest, SafeProtocolWitnessesAreRootPermutations) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (Protocol protocol :
         {Protocol::kClosedTwoPhase, Protocol::kOpenValidated,
          Protocol::kConservativeTimestamp}) {
      Outcome outcome = RunProtocol(seed, protocol, seed * 19 + 3);
      auto verdict = CheckCompC(outcome.result.recorded);
      ASSERT_TRUE(verdict.ok());
      ASSERT_TRUE(verdict->correct)
          << ProtocolToString(protocol) << " seed " << seed;
      std::vector<NodeId> roots = outcome.result.recorded.Roots();
      std::vector<NodeId> witness = verdict->serial_order;
      std::sort(roots.begin(), roots.end());
      std::sort(witness.begin(), witness.end());
      EXPECT_EQ(roots, witness);
    }
  }
}

}  // namespace
}  // namespace comptx::runtime
