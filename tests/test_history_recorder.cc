// Direct tests for the runtime -> formal-model bridge: staged recording,
// abort/commit discipline, and the structure of the built system.

#include "runtime/history_recorder.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/invocation_graph.h"

namespace comptx::runtime {
namespace {

/// Two components: a front office invoking a ledger.
RuntimeSystem MakeNetwork() {
  RuntimeSystem system;
  {
    std::vector<Program> services;
    Program entry;
    entry.steps.push_back(ProgramStep::Local(OpType::kRead, 0));
    entry.steps.push_back(ProgramStep::Invoke(1, 0));
    services.push_back(entry);
    system.components.push_back(std::make_unique<Component>(
        0, "front", 2, std::move(services),
        std::vector<std::vector<bool>>{{true}}));
  }
  {
    std::vector<Program> services;
    services.push_back(Program{{ProgramStep::Local(OpType::kWrite, 0)}});
    system.components.push_back(std::make_unique<Component>(
        1, "ledger", 2, std::move(services),
        std::vector<std::vector<bool>>{{true}}));
  }
  system.roots.push_back({0, 0});
  system.roots.push_back({0, 0});
  return system;
}

TEST(HistoryRecorderTest, BuildsForestMatchingStaging) {
  RuntimeSystem network = MakeNetwork();
  HistoryRecorder recorder(network);
  uint64_t seq = 0;

  auto root0 = recorder.BeginRoot(0, 0, 0);
  recorder.RecordLocalOp(root0, OpType::kRead, 0, ++seq);
  auto sub0 = recorder.BeginSub(root0, 1, 0);
  recorder.RecordLocalOp(sub0, OpType::kWrite, 0, ++seq);
  recorder.CommitNode(sub0, ++seq);
  recorder.CommitNode(root0, ++seq);
  recorder.CommitRoot(0);

  auto root1 = recorder.BeginRoot(1, 0, 0);
  recorder.RecordLocalOp(root1, OpType::kRead, 0, ++seq);
  auto sub1 = recorder.BeginSub(root1, 1, 0);
  recorder.RecordLocalOp(sub1, OpType::kWrite, 0, ++seq);
  recorder.CommitNode(sub1, ++seq);
  recorder.CommitNode(root1, ++seq);
  recorder.CommitRoot(1);

  auto cs = recorder.BuildSystem();
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  EXPECT_EQ(cs->ScheduleCount(), 2u);
  EXPECT_EQ(cs->Roots().size(), 2u);
  // Per root: one read leaf + one subtransaction with one write leaf.
  EXPECT_EQ(cs->Leaves().size(), 4u);
  EXPECT_TRUE(cs->Validate().ok()) << cs->Validate().ToString();

  // The two roots' reads conflict with nothing (read/read), but the two
  // subtransactions conflict via the service matrix and the writes via
  // the item, both ordered by seq: root0's side first.
  auto ig = BuildInvocationGraph(*cs);
  ASSERT_TRUE(ig.ok());
  const Schedule& front = cs->schedule(ScheduleId(0));
  const Schedule& ledger = cs->schedule(ScheduleId(1));
  EXPECT_EQ(front.conflicts.PairCount(), 1u);   // the two invocations.
  EXPECT_EQ(ledger.conflicts.PairCount(), 1u);  // the two writes.
  // Conflict order (1 pair) + the two per-root intra chains (strong, so
  // also weak) = 3 weak output pairs at the front office.
  EXPECT_EQ(front.weak_output.PairCount(), 3u);
  EXPECT_EQ(ledger.weak_output.PairCount(), 1u);
  // Def 4.7: the front's conflict order arrived as the ledger's input.
  EXPECT_EQ(ledger.weak_input.PairCount(), 1u);
}

TEST(HistoryRecorderTest, AbortedAttemptsAreInvisible) {
  RuntimeSystem network = MakeNetwork();
  HistoryRecorder recorder(network);
  uint64_t seq = 0;

  // Root 0: first attempt aborted, second committed.
  auto attempt1 = recorder.BeginRoot(0, 0, 0);
  recorder.RecordLocalOp(attempt1, OpType::kRead, 0, ++seq);
  recorder.AbortRoot(0);
  auto attempt2 = recorder.BeginRoot(0, 0, 0);
  recorder.RecordLocalOp(attempt2, OpType::kRead, 1, ++seq);
  recorder.CommitNode(attempt2, ++seq);
  recorder.CommitRoot(0);
  // Root 1: never commits.
  auto never = recorder.BeginRoot(1, 0, 0);
  recorder.RecordLocalOp(never, OpType::kWrite, 0, ++seq);
  recorder.AbortRoot(1);

  auto cs = recorder.BuildSystem();
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->Roots().size(), 1u);
  ASSERT_EQ(cs->Leaves().size(), 1u);
  // The committed leaf is the second attempt's (item 1).
  EXPECT_NE(cs->node(cs->Leaves()[0]).name.find("i1"), std::string::npos);
}

TEST(HistoryRecorderTest, IntraChainsAreStrong) {
  RuntimeSystem network = MakeNetwork();
  HistoryRecorder recorder(network);
  uint64_t seq = 0;
  auto root = recorder.BeginRoot(0, 0, 0);
  recorder.RecordLocalOp(root, OpType::kRead, 0, ++seq);
  auto sub = recorder.BeginSub(root, 1, 0);
  recorder.CommitNode(sub, ++seq);
  recorder.CommitNode(root, ++seq);
  recorder.CommitRoot(0);
  auto cs = recorder.BuildSystem();
  ASSERT_TRUE(cs.ok());
  NodeId r = cs->Roots()[0];
  const Node& root_node = cs->node(r);
  ASSERT_EQ(root_node.children.size(), 2u);
  EXPECT_TRUE(root_node.strong_intra.Contains(root_node.children[0],
                                              root_node.children[1]));
}

TEST(HistoryRecorderTest, EmptyHistoryBuildsEmptySystem) {
  RuntimeSystem network = MakeNetwork();
  HistoryRecorder recorder(network);
  auto cs = recorder.BuildSystem();
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->ScheduleCount(), 2u);  // schedules exist, no transactions.
  EXPECT_TRUE(cs->Roots().empty());
  EXPECT_TRUE(cs->Validate().ok());
}

}  // namespace
}  // namespace comptx::runtime
