// Machine-checked versions of the paper's Theorems 2-4: on randomly
// generated valid executions over the special configurations, the
// special-case criteria (SCC, FCC, JCC) must agree exactly with the
// general Comp-C decision procedure.  These sweeps are the strongest
// cross-validation of the reduction engine's formalization choices
// (DESIGN.md §3).

#include <gtest/gtest.h>

#include "core/correctness.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/scc.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

struct TheoremCase {
  workload::TopologyKind kind;
  uint64_t seed;
  double conflict_prob;
  double disorder_prob;
};

void PrintTo(const TheoremCase& c, std::ostream* os) {
  *os << workload::TopologyKindToString(c.kind) << "_seed" << c.seed << "_c"
      << int(c.conflict_prob * 100) << "_d" << int(c.disorder_prob * 100);
}

class TheoremEquivalenceTest : public ::testing::TestWithParam<TheoremCase> {
 protected:
  CompositeSystem Generate() {
    const TheoremCase& param = GetParam();
    workload::WorkloadSpec spec;
    spec.topology.kind = param.kind;
    spec.topology.depth = 3;
    spec.topology.branches = 3;
    spec.topology.roots = 4;
    spec.topology.fanout = 2;
    spec.execution.conflict_prob = param.conflict_prob;
    spec.execution.disorder_prob = param.disorder_prob;
    auto cs = workload::GenerateSystem(spec, param.seed);
    EXPECT_TRUE(cs.ok()) << cs.status().ToString();
    return std::move(cs).value();
  }
};

using SccTheoremTest = TheoremEquivalenceTest;
using FccTheoremTest = TheoremEquivalenceTest;
using JccTheoremTest = TheoremEquivalenceTest;

TEST_P(SccTheoremTest, Theorem2SccIffCompC) {
  CompositeSystem cs = Generate();
  ASSERT_TRUE(criteria::IsStackSystem(cs));
  auto scc = criteria::IsStackConflictConsistent(cs);
  ASSERT_TRUE(scc.ok());
  EXPECT_EQ(*scc, IsCompC(cs));
}

TEST_P(FccTheoremTest, Theorem3FccIffCompC) {
  CompositeSystem cs = Generate();
  ASSERT_TRUE(criteria::IsForkSystem(cs));
  auto fcc = criteria::IsForkConflictConsistent(cs);
  ASSERT_TRUE(fcc.ok());
  EXPECT_EQ(*fcc, IsCompC(cs));
}

TEST_P(JccTheoremTest, Theorem4JccIffCompC) {
  CompositeSystem cs = Generate();
  ASSERT_TRUE(criteria::IsJoinSystem(cs));
  auto jcc = criteria::IsJoinConflictConsistent(cs);
  ASSERT_TRUE(jcc.ok());
  EXPECT_EQ(*jcc, IsCompC(cs));
}

std::vector<TheoremCase> MakeCases(workload::TopologyKind kind) {
  std::vector<TheoremCase> cases;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    for (double conflict : {0.1, 0.4, 0.8}) {
      for (double disorder : {0.0, 0.5}) {
        cases.push_back(TheoremCase{kind, seed, conflict, disorder});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomStacks, SccTheoremTest,
    ::testing::ValuesIn(MakeCases(workload::TopologyKind::kStack)));

INSTANTIATE_TEST_SUITE_P(
    RandomForks, FccTheoremTest,
    ::testing::ValuesIn(MakeCases(workload::TopologyKind::kFork)));

INSTANTIATE_TEST_SUITE_P(
    RandomJoins, JccTheoremTest,
    ::testing::ValuesIn(MakeCases(workload::TopologyKind::kJoin)));

}  // namespace
}  // namespace comptx
