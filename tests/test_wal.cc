// Tests for the src/durability subsystem (ctest label `durability`):
// CRC framing, WAL write/read round trips, torn-write and bit-flip
// robustness of the reader (it must never crash and must report the
// precise truncation point), snapshot encode/decode, certifier state
// capture/restore equivalence, WAL compaction, and the offline recovery
// path (ReadSessionDurableState + RebuildCertifier + VerifyRecovery).
// The process-kill crash drill lives in test_crash_recovery.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/correctness.h"
#include "durability/manager.h"
#include "durability/recovery.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "online/certifier.h"
#include "online/state_io.h"
#include "util/string_util.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx::durability {
namespace {

namespace fs = std::filesystem;

/// A per-process scratch directory (ctest runs cases in parallel as
/// separate processes).
fs::path Scratch() {
  static const fs::path dir = [] {
    fs::path p = fs::path(::testing::TempDir()) /
                 StrCat("comptx_wal_", static_cast<unsigned long>(::getpid()));
    fs::create_directories(p);
    return p;
  }();
  return dir;
}

std::string ReadBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

std::vector<workload::TraceEvent> GeneratedEvents(uint32_t roots,
                                                  uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.15;
  spec.execution.intra_weak_prob = 0.2;
  auto cs = workload::GenerateSystem(spec, seed);
  EXPECT_TRUE(cs.ok()) << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  auto events = workload::ParseTraceEvents(*text);
  EXPECT_TRUE(events.ok()) << events.status().ToString();
  return std::move(events).value();
}

/// Batch ground truth, exactly as the online certifier treats a stream.
bool BatchVerdict(const std::vector<workload::TraceEvent>& events) {
  CompositeSystem cs;
  for (const auto& event : events) {
    (void)workload::ApplyTraceEvent(cs, event);
  }
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  auto result = CheckCompC(cs, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->correct;
}

/// Builds a clean WAL at `path` out of `records` via the writer, fsynced.
std::unique_ptr<WalWriter> BuildWal(const fs::path& path,
                                    const std::vector<WalRecord>& records,
                                    Counters* counters) {
  auto writer = WalWriter::Create(path.string(), FsyncPolicy::kNone, counters);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (const WalRecord& record : records) {
    auto lsn = (*writer)->Append(record);
    EXPECT_TRUE(lsn.ok()) << lsn.status().ToString();
  }
  EXPECT_TRUE((*writer)->SyncNow().ok());
  return std::move(writer).value();
}

std::vector<WalRecord> SampleRecords(size_t appends) {
  std::vector<WalRecord> records;
  WalRecord open;
  open.type = WalRecordType::kOpen;
  open.options = "forgetting=true epoch_interval=8";
  records.push_back(open);
  const auto events = GeneratedEvents(4, 77);
  uint64_t seq = 1;
  size_t cursor = 0;
  for (size_t i = 0; i < appends && cursor < events.size(); ++i) {
    WalRecord append;
    append.type = WalRecordType::kAppend;
    append.seq = seq;
    const size_t n = std::min<size_t>(3 + i, events.size() - cursor);
    append.events.assign(events.begin() + cursor, events.begin() + cursor + n);
    cursor += n;
    seq += n;
    records.push_back(append);
  }
  WalRecord seal;
  seal.type = WalRecordType::kSeal;
  seal.seq = seq - 1;
  seal.accepted = seq - 1;
  seal.rejected = 0;
  seal.certifiable = true;
  records.push_back(seal);
  return records;
}

void ExpectSameRecord(const WalRecord& got, const WalRecord& want,
                      size_t lsn) {
  EXPECT_EQ(got.type, want.type) << "lsn " << lsn;
  EXPECT_EQ(got.seq, want.seq) << "lsn " << lsn;
  EXPECT_EQ(got.options, want.options) << "lsn " << lsn;
  EXPECT_EQ(got.accepted, want.accepted) << "lsn " << lsn;
  EXPECT_EQ(got.rejected, want.rejected) << "lsn " << lsn;
  EXPECT_EQ(got.certifiable, want.certifiable) << "lsn " << lsn;
  ASSERT_EQ(got.events.size(), want.events.size()) << "lsn " << lsn;
  for (size_t i = 0; i < got.events.size(); ++i) {
    EXPECT_EQ(workload::FormatTraceEvent(got.events[i]),
              workload::FormatTraceEvent(want.events[i]))
        << "lsn " << lsn << " event " << i;
  }
}

// ----------------------------------------------------------------- crc

TEST(Crc32Test, MatchesTheStandardCheckValue) {
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Sensitive to every byte.
  EXPECT_NE(Crc32("123456789", 9), Crc32("123456788", 9));
  EXPECT_NE(Crc32("123456789", 9), Crc32("123456789", 8));
}

// ------------------------------------------------------ codec round trip

TEST(WalCodecTest, AllRecordTypesRoundTripThroughTheReader) {
  const fs::path path = Scratch() / "roundtrip.wal";
  std::vector<WalRecord> records = SampleRecords(4);
  WalRecord evict;
  evict.type = WalRecordType::kEvict;
  evict.seq = 17;
  records.push_back(evict);
  WalRecord resume;
  resume.type = WalRecordType::kResume;
  resume.seq = 17;
  records.push_back(resume);
  WalRecord close;
  close.type = WalRecordType::kClose;
  close.seq = 29;
  records.push_back(close);

  Counters counters;
  std::string bytes(kWalMagic, sizeof(kWalMagic));
  for (const WalRecord& record : records) bytes += EncodeWalRecord(record);
  WriteBytes(path, bytes);

  auto scan = ReadWalFile(path.string());
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->clean) << scan->damage;
  EXPECT_EQ(scan->valid_bytes, bytes.size());
  ASSERT_EQ(scan->records.size(), records.size());
  EXPECT_EQ(scan->truncation_lsn, records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectSameRecord(scan->records[i], records[i], i);
  }
}

TEST(WalWriterTest, CreateAppendReadBackAndCounters) {
  const fs::path path = Scratch() / "writer.wal";
  Counters counters;
  const std::vector<WalRecord> records = SampleRecords(3);
  auto writer = BuildWal(path, records, &counters);
  EXPECT_EQ(writer->next_lsn(), records.size());

  auto scan = ReadWalFile(path.string());
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->clean) << scan->damage;
  ASSERT_EQ(scan->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectSameRecord(scan->records[i], records[i], i);
  }
  // 3 of the records are APPENDs; every byte written (magic header
  // included) is accounted.
  EXPECT_EQ(counters.wal_appends.load(), 3u);
  EXPECT_EQ(counters.wal_bytes.load(), ReadBytes(path).size());
  EXPECT_GE(counters.fsyncs.load(), 1u);
}

TEST(WalWriterTest, SyncForAckOnlyFsyncsUnderAlways) {
  Counters counters;
  auto writer = WalWriter::Create((Scratch() / "acknone.wal").string(),
                                  FsyncPolicy::kNone, &counters);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(SampleRecords(1)[0]).ok());
  ASSERT_TRUE((*writer)->SyncForAck().ok());
  EXPECT_EQ(counters.fsyncs.load(), 0u);

  auto always = WalWriter::Create((Scratch() / "ackalways.wal").string(),
                                  FsyncPolicy::kAlways, &counters);
  ASSERT_TRUE(always.ok());
  ASSERT_TRUE((*always)->Append(SampleRecords(1)[0]).ok());
  ASSERT_TRUE((*always)->SyncForAck().ok());
  EXPECT_GE(counters.fsyncs.load(), 1u);
}

// ------------------------------------------------- torn and corrupt tails

TEST(WalReaderTest, EveryTruncationPointYieldsThePrefixAndThePreciseLsn) {
  const fs::path clean = Scratch() / "sweep.wal";
  Counters counters;
  const std::vector<WalRecord> records = SampleRecords(4);
  BuildWal(clean, records, &counters);
  const std::string bytes = ReadBytes(clean);

  // Frame boundaries: offset just past each frame (EncodeWalRecord
  // returns the whole frame, header included).
  std::vector<size_t> boundaries;
  {
    size_t offset = sizeof(kWalMagic);
    for (const WalRecord& record : records) {
      offset += EncodeWalRecord(record).size();
      boundaries.push_back(offset);
    }
    ASSERT_EQ(offset, bytes.size());
  }

  const fs::path torn = Scratch() / "sweep_torn.wal";
  for (size_t len = sizeof(kWalMagic); len < bytes.size(); ++len) {
    WriteBytes(torn, bytes.substr(0, len));
    auto scan = ReadWalFile(torn.string());
    ASSERT_TRUE(scan.ok()) << "len " << len << ": "
                           << scan.status().ToString();
    // The result is exactly the fully contained frames.
    size_t contained = 0;
    while (contained < boundaries.size() && boundaries[contained] <= len) {
      ++contained;
    }
    EXPECT_EQ(scan->records.size(), contained) << "len " << len;
    EXPECT_EQ(scan->truncation_lsn, contained) << "len " << len;
    const size_t valid =
        contained == 0 ? sizeof(kWalMagic) : boundaries[contained - 1];
    EXPECT_EQ(scan->valid_bytes, valid) << "len " << len;
    EXPECT_EQ(scan->clean, valid == len) << "len " << len;
    if (!scan->clean) {
      EXPECT_FALSE(scan->damage.empty()) << "len " << len;
      // Repair cuts the tail; the re-read is clean and identical.
      ASSERT_TRUE(RepairWalFile(torn.string(), *scan).ok()) << "len " << len;
      auto again = ReadWalFile(torn.string());
      ASSERT_TRUE(again.ok());
      EXPECT_TRUE(again->clean);
      EXPECT_EQ(again->records.size(), contained);
    }
  }
}

TEST(WalReaderTest, BitFlipsStopTheScanAtTheDamagedFrame) {
  const fs::path clean = Scratch() / "flip.wal";
  Counters counters;
  const std::vector<WalRecord> records = SampleRecords(4);
  BuildWal(clean, records, &counters);
  const std::string bytes = ReadBytes(clean);

  std::vector<size_t> boundaries;  // offset just past each frame
  {
    size_t offset = sizeof(kWalMagic);
    for (const WalRecord& record : records) {
      offset += EncodeWalRecord(record).size();
      boundaries.push_back(offset);
    }
  }
  const auto frame_of = [&](size_t offset) {
    size_t frame = 0;
    while (boundaries[frame] <= offset) ++frame;
    return frame;
  };

  const fs::path flipped = Scratch() / "flip_bad.wal";
  for (size_t offset = sizeof(kWalMagic); offset < bytes.size(); ++offset) {
    std::string damaged = bytes;
    damaged[offset] = static_cast<char>(damaged[offset] ^ 0xFF);
    WriteBytes(flipped, damaged);
    auto scan = ReadWalFile(flipped.string());
    ASSERT_TRUE(scan.ok()) << "offset " << offset;
    // A flip in frame i leaves exactly the frames before i readable (a
    // corrupted frame passing its own CRC would need a 2^-32 collision).
    EXPECT_EQ(scan->records.size(), frame_of(offset)) << "offset " << offset;
    EXPECT_FALSE(scan->clean) << "offset " << offset;
    EXPECT_FALSE(scan->damage.empty()) << "offset " << offset;
  }
}

TEST(WalReaderTest, ZeroFilledTailsAndHolesAreDetected) {
  const fs::path clean = Scratch() / "zeros.wal";
  Counters counters;
  const std::vector<WalRecord> records = SampleRecords(3);
  BuildWal(clean, records, &counters);
  const std::string bytes = ReadBytes(clean);

  // A zero-extended tail (a filesystem that allocated but never wrote):
  // all real records survive, the tail is reported as damage.
  const fs::path extended = Scratch() / "zeros_tail.wal";
  WriteBytes(extended, bytes + std::string(512, '\0'));
  auto scan = ReadWalFile(extended.string());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), records.size());
  EXPECT_FALSE(scan->clean);
  EXPECT_EQ(scan->valid_bytes, bytes.size());
  ASSERT_TRUE(RepairWalFile(extended.string(), *scan).ok());
  EXPECT_EQ(ReadBytes(extended).size(), bytes.size());

  // A zero-filled hole mid-file: the scan stops at the hole's frame.
  const fs::path holed = Scratch() / "zeros_hole.wal";
  std::string damaged = bytes;
  const size_t hole_at = bytes.size() / 2;
  for (size_t i = hole_at; i < bytes.size(); ++i) damaged[i] = '\0';
  WriteBytes(holed, damaged);
  auto hole_scan = ReadWalFile(holed.string());
  ASSERT_TRUE(hole_scan.ok());
  EXPECT_LT(hole_scan->records.size(), records.size());
  EXPECT_FALSE(hole_scan->clean);
  EXPECT_LE(hole_scan->valid_bytes, hole_at);
}

TEST(WalReaderTest, GarbageAndEmptyFilesNeverCrash) {
  const fs::path missing = Scratch() / "missing.wal";
  EXPECT_FALSE(ReadWalFile(missing.string()).ok());

  const fs::path empty = Scratch() / "empty.wal";
  WriteBytes(empty, "");
  EXPECT_FALSE(ReadWalFile(empty.string()).ok());  // no magic: not a WAL

  const fs::path short_magic = Scratch() / "short.wal";
  WriteBytes(short_magic, "comp");
  EXPECT_FALSE(ReadWalFile(short_magic.string()).ok());

  const fs::path wrong_magic = Scratch() / "wrong.wal";
  WriteBytes(wrong_magic, "NOTAWAL!" + std::string(100, 'x'));
  EXPECT_FALSE(ReadWalFile(wrong_magic.string()).ok());

  // Valid magic followed by garbage: zero records, damage reported.
  const fs::path garbage = Scratch() / "garbage.wal";
  WriteBytes(garbage,
             std::string(kWalMagic, sizeof(kWalMagic)) +
                 "\xde\xad\xbe\xef garbage that is not a frame at all");
  auto scan = ReadWalFile(garbage.string());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->records.empty());
  EXPECT_FALSE(scan->clean);
  EXPECT_EQ(scan->valid_bytes, sizeof(kWalMagic));

  // A frame length past the sanity cap is corruption, not an allocation.
  const fs::path huge = Scratch() / "huge.wal";
  std::string huge_bytes(kWalMagic, sizeof(kWalMagic));
  const uint32_t huge_len = kMaxWalPayloadBytes + 1;
  for (int shift = 0; shift < 32; shift += 8) {
    huge_bytes.push_back(static_cast<char>((huge_len >> shift) & 0xFF));
  }
  huge_bytes += std::string(64, 'z');
  WriteBytes(huge, huge_bytes);
  auto huge_scan = ReadWalFile(huge.string());
  ASSERT_TRUE(huge_scan.ok());
  EXPECT_TRUE(huge_scan->records.empty());
  EXPECT_FALSE(huge_scan->clean);
}

// ------------------------------------------------------------- snapshots

TEST(SnapshotTest, RoundTripsAndRejectsCorruption) {
  const auto events = GeneratedEvents(6, 909);
  online::CertifierOptions copts;
  online::Certifier certifier(copts);
  for (const auto& event : events) (void)certifier.Ingest(event);

  Snapshot snapshot;
  snapshot.session_id = 42;
  snapshot.event_seq = events.size();
  snapshot.options = "epoch_interval=16 auto_prune=false";
  auto state = online::CaptureCertifierState(certifier);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  snapshot.state = *state;

  const std::string bytes = EncodeSnapshot(snapshot);
  auto decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->session_id, 42u);
  EXPECT_EQ(decoded->event_seq, events.size());
  EXPECT_EQ(decoded->options, snapshot.options);
  EXPECT_EQ(decoded->state.trace, state->trace);
  EXPECT_EQ(decoded->state.sealed, state->sealed);
  EXPECT_EQ(decoded->state.accepted, state->accepted);
  EXPECT_EQ(decoded->state.rejected, state->rejected);
  EXPECT_EQ(decoded->state.certifiable, state->certifiable);

  // All-or-nothing: every single-byte flip makes the decode fail.
  for (size_t offset = 0; offset < bytes.size(); offset += 7) {
    std::string damaged = bytes;
    damaged[offset] = static_cast<char>(damaged[offset] ^ 0x55);
    EXPECT_FALSE(DecodeSnapshot(damaged).ok()) << "offset " << offset;
  }
  EXPECT_FALSE(DecodeSnapshot(bytes.substr(0, bytes.size() / 2)).ok());
  EXPECT_FALSE(DecodeSnapshot("").ok());

  // File round trip + NotFound for a missing path.
  const fs::path path = Scratch() / "s42.snap";
  ASSERT_TRUE(WriteSnapshotFile(path.string(), snapshot).ok());
  auto read = ReadSnapshotFile(path.string());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->state.trace, state->trace);
  auto absent = ReadSnapshotFile((Scratch() / "absent.snap").string());
  EXPECT_EQ(absent.status().code(), StatusCode::kNotFound);
}

// -------------------------------------------- certifier state round trip

TEST(StateIoTest, CaptureRestoreIsReplayEquivalent) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    const auto events = GeneratedEvents(8, seed);
    online::CertifierOptions copts;
    copts.epoch_interval = 8;
    online::Certifier original(copts);
    const size_t half = events.size() / 2;
    for (size_t i = 0; i < half; ++i) (void)original.Ingest(events[i]);
    // Seal a couple of roots so the sealed list is exercised too.
    auto roots = original.system().Roots();
    for (size_t i = 0; i < roots.size() && i < 2; ++i) {
      ASSERT_TRUE(original.Commit(roots[i]).ok());
    }

    auto state = online::CaptureCertifierState(original);
    ASSERT_TRUE(state.ok()) << state.status().ToString();
    auto restored = online::RestoreCertifierState(*state, copts);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();

    // Identical verdict and counters at the capture point...
    EXPECT_EQ((*restored)->Certifiable(), original.Certifiable());
    EXPECT_EQ((*restored)->Stats().events_accepted,
              original.Stats().events_accepted);
    EXPECT_EQ((*restored)->Stats().events_rejected,
              original.Stats().events_rejected);

    // ...and identical behavior on the rest of the stream: the restored
    // session and the original must accept/reject and judge the suffix
    // exactly alike (replay equivalence, DESIGN.md §11.3).
    for (size_t i = half; i < events.size(); ++i) {
      const bool a = original.Ingest(events[i]).ok();
      const bool b = (*restored)->Ingest(events[i]).ok();
      EXPECT_EQ(a, b) << "seed " << seed << " event " << i;
    }
    EXPECT_EQ((*restored)->Certifiable(), original.Certifiable())
        << "seed " << seed;
    EXPECT_EQ((*restored)->Stats().events_accepted,
              original.Stats().events_accepted);
  }
}

TEST(StateIoTest, CorruptTraceFailsTheRestore) {
  online::CertifierState state;
  state.trace = "this is not a trace\n";
  EXPECT_FALSE(
      online::RestoreCertifierState(state, online::CertifierOptions{}).ok());
}

// ------------------------------------------------- manager and compaction

TEST(ManagerTest, SnapshotCompactsTheWalPastTheWatermark) {
  const fs::path dir = Scratch() / "compact";
  Options options;
  options.dir = dir.string();
  options.fsync = FsyncPolicy::kNone;
  options.snapshot_events = 0;  // snapshots triggered manually here
  Counters counters;
  auto manager = Manager::Start(options, &counters);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  auto log = (*manager)->CreateLog(7, "epoch_interval=8");
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  const auto events = GeneratedEvents(6, 303);
  online::Certifier certifier{online::CertifierOptions{}};
  const size_t half = events.size() / 2;
  auto feed = [&](size_t from, size_t to) {
    std::vector<workload::TraceEvent> batch(events.begin() + from,
                                            events.begin() + to);
    ASSERT_TRUE((*log)->LogAppend(batch).ok());
    for (size_t i = from; i < to; ++i) (void)certifier.Ingest(events[i]);
    (*log)->OnIngested(to - from);
  };
  feed(0, half);
  ASSERT_TRUE((*log)->WriteSnapshot(certifier).ok());
  feed(half, events.size());

  // On disk now: snapshot at `half`, WAL = OPEN + SEAL + post-half
  // appends (every pre-watermark APPEND compacted away).
  auto scan = ReadWalFile(WalPath(dir.string(), 7));
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->clean) << scan->damage;
  ASSERT_GE(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0].type, WalRecordType::kOpen);
  EXPECT_EQ(scan->records[1].type, WalRecordType::kSeal);
  EXPECT_EQ(scan->records[1].seq, half);
  size_t suffix_events = 0;
  for (size_t i = 2; i < scan->records.size(); ++i) {
    EXPECT_EQ(scan->records[i].type, WalRecordType::kAppend);
    EXPECT_GT(scan->records[i].seq, half);
    suffix_events += scan->records[i].events.size();
  }
  EXPECT_EQ(suffix_events, events.size() - half);
  EXPECT_EQ(counters.snapshots_written.load(), 1u);
  EXPECT_GT(counters.records_truncated.load(), 0u);

  auto snapshot = ReadSnapshotFile(SnapshotPath(dir.string(), 7));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->session_id, 7u);
  EXPECT_EQ(snapshot->event_seq, half);

  // CLOSE removes both files.
  ASSERT_TRUE((*log)->MarkClosedAndRemove().ok());
  EXPECT_FALSE(fs::exists(WalPath(dir.string(), 7)));
  EXPECT_FALSE(fs::exists(SnapshotPath(dir.string(), 7)));
}

// --------------------------------------------------------------- recovery

TEST(RecoveryTest, SnapshotPlusSuffixRebuildsTheExactSession) {
  const fs::path dir = Scratch() / "recover";
  Options options;
  options.dir = dir.string();
  options.fsync = FsyncPolicy::kNone;
  options.snapshot_events = 0;
  Counters counters;

  const auto events = GeneratedEvents(8, 404);
  const size_t third = events.size() / 3;
  {
    auto manager = Manager::Start(options, &counters);
    ASSERT_TRUE(manager.ok());
    auto log = (*manager)->CreateLog(3, "");
    ASSERT_TRUE(log.ok());
    online::Certifier certifier{online::CertifierOptions{}};
    auto feed = [&](size_t from, size_t to) {
      std::vector<workload::TraceEvent> batch(events.begin() + from,
                                              events.begin() + to);
      ASSERT_TRUE((*log)->LogAppend(batch).ok());
      for (size_t i = from; i < to; ++i) (void)certifier.Ingest(events[i]);
      (*log)->OnIngested(to - from);
    };
    feed(0, third);
    ASSERT_TRUE((*log)->WriteSnapshot(certifier).ok());
    feed(third, events.size());
    // Manager and log drop here without any lifecycle marker — exactly a
    // process death after the last append.
  }

  auto state = ReadSessionDurableState(dir.string(), 3);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_FALSE(state->closed);
  EXPECT_FALSE(state->evicted);
  EXPECT_TRUE(state->has_snapshot);
  EXPECT_EQ(state->snapshot.event_seq, third);
  EXPECT_EQ(state->event_seq, events.size());
  EXPECT_EQ(state->SuffixEvents().size(), events.size() - third);

  auto certifier =
      RebuildCertifier(*state, online::CertifierOptions{});
  ASSERT_TRUE(certifier.ok()) << certifier.status().ToString();
  EXPECT_TRUE(VerifyRecovery(**certifier, events.size()).ok());
  EXPECT_EQ((*certifier)->Certifiable(), BatchVerdict(events));
  const auto stats = (*certifier)->Stats();
  EXPECT_EQ(stats.events_accepted + stats.events_rejected, events.size());
}

TEST(RecoveryTest, LifecycleMarkersDriveTheStateMachine) {
  const fs::path dir = Scratch() / "lifecycle";
  Options options;
  options.dir = dir.string();
  options.fsync = FsyncPolicy::kNone;
  options.snapshot_events = 0;
  Counters counters;
  auto manager = Manager::Start(options, &counters);
  ASSERT_TRUE(manager.ok());

  const auto events = GeneratedEvents(4, 505);
  online::Certifier certifier{online::CertifierOptions{}};
  for (const auto& event : events) (void)certifier.Ingest(event);

  // Evicted session: EVICT is the last marker -> resumable, not live.
  auto log = (*manager)->CreateLog(11, "");
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->LogAppend(events).ok());
  (*log)->OnIngested(events.size());
  ASSERT_TRUE((*log)->PersistEvicted(certifier).ok());
  auto evicted = ReadSessionDurableState(dir.string(), 11);
  ASSERT_TRUE(evicted.ok());
  EXPECT_TRUE(evicted->evicted);
  EXPECT_FALSE(evicted->closed);

  // Resuming appends a RESUME marker: live again.
  auto adopted = (*manager)->AdoptLog(*evicted, /*resume=*/true);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  auto resumed = ReadSessionDurableState(dir.string(), 11);
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed->evicted);
  EXPECT_EQ(resumed->event_seq, events.size());

  // ListDurableSessionIds sees the session until CLOSE removes it.
  auto ids = ListDurableSessionIds(dir.string());
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], 11u);
  ASSERT_TRUE((*adopted)->MarkClosedAndRemove().ok());
  EXPECT_TRUE(ListDurableSessionIds(dir.string()).empty());
  EXPECT_EQ(ReadSessionDurableState(dir.string(), 11).status().code(),
            StatusCode::kNotFound);
}

TEST(RecoveryTest, AnAckedOpenAloneSurvivesButARecordlessFileDoesNot) {
  const fs::path dir = Scratch() / "open_only";
  Options options;
  options.dir = dir.string();
  options.fsync = FsyncPolicy::kNone;
  options.snapshot_events = 0;
  Counters counters;
  auto manager = Manager::Start(options, &counters);
  ASSERT_TRUE(manager.ok());

  // Default options, zero events: the fsynced OPEN is the only record,
  // and CreateLog acked it — recovery must keep this session even
  // though it has no snapshot, no events and an empty options string.
  auto log = (*manager)->CreateLog(21, "");
  ASSERT_TRUE(log.ok());
  auto state = ReadSessionDurableState(dir.string(), 21);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->event_seq, 0u);
  EXPECT_FALSE(state->Empty());

  // A WAL that died before its OPEN frame completed was never acked:
  // magic only, zero valid records — that is the discardable shape.
  WriteBytes(WalPath(dir.string(), 22), std::string("comptxw1", 8));
  auto unacked = ReadSessionDurableState(dir.string(), 22);
  ASSERT_TRUE(unacked.ok()) << unacked.status().ToString();
  EXPECT_TRUE(unacked->Empty());
}

TEST(RecoveryTest, TornTailIsRepairedOnAdoptAndTheSuffixSurvives) {
  const fs::path dir = Scratch() / "torn_adopt";
  Options options;
  options.dir = dir.string();
  options.fsync = FsyncPolicy::kNone;
  options.snapshot_events = 0;
  Counters counters;

  const auto events = GeneratedEvents(6, 606);
  {
    auto manager = Manager::Start(options, &counters);
    ASSERT_TRUE(manager.ok());
    auto log = (*manager)->CreateLog(5, "epoch_interval=8");
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->LogAppend(events).ok());
  }
  // Tear the tail mid-frame: the last append loses its end.
  const std::string wal_path = WalPath(dir.string(), 5);
  const std::string bytes = ReadBytes(wal_path);
  WriteBytes(wal_path, bytes.substr(0, bytes.size() - 3));

  auto state = ReadSessionDurableState(dir.string(), 5);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_FALSE(state->wal_scan.clean);
  // The one append frame is the torn one: no events survive, but the
  // durable OPEN still names the session.
  EXPECT_EQ(state->event_seq, 0u);
  EXPECT_FALSE(state->Empty());

  auto manager = Manager::Start(options, &counters);
  ASSERT_TRUE(manager.ok());
  const uint64_t truncated_before = counters.records_truncated.load();
  auto adopted = (*manager)->AdoptLog(*state, /*resume=*/false);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_GT(counters.records_truncated.load(), truncated_before);
  // The repaired file is clean and appendable.
  ASSERT_TRUE((*adopted)->LogAppend(events).ok());
  auto rescan = ReadWalFile(wal_path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_TRUE(rescan->clean) << rescan->damage;
}

TEST(RecoveryTest, VerifyRecoveryCatchesMissingEvents) {
  const auto events = GeneratedEvents(4, 707);
  online::Certifier certifier{online::CertifierOptions{}};
  for (const auto& event : events) (void)certifier.Ingest(event);
  EXPECT_TRUE(VerifyRecovery(certifier, events.size()).ok());
  // Claiming more durable events than the certifier absorbed must fail.
  EXPECT_FALSE(VerifyRecovery(certifier, events.size() + 1).ok());
}

}  // namespace
}  // namespace comptx::durability
