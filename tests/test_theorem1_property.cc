// Property suite for Theorems 1-4: whenever the reduction succeeds, the
// serial front built from the topological witness must level-N-contain
// the final front (the "if" direction's construction); whenever it
// fails, the reported witness must be a genuine cycle in the relations
// the failing step examined.  On randomized stack/fork/join
// configurations the specialized criteria SCC/FCC/JCC must coincide with
// Comp-C exactly (Theorems 2, 3 and 4).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/calculation.h"
#include "core/correctness.h"
#include "core/serial_front.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/scc.h"
#include "util/string_util.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

struct Case {
  workload::TopologyKind kind;
  uint64_t seed;
};

void PrintTo(const Case& c, std::ostream* os) {
  *os << workload::TopologyKindToString(c.kind) << "_seed" << c.seed;
}

class Theorem1PropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(Theorem1PropertyTest, WitnessOrFailureIsGenuine) {
  workload::WorkloadSpec spec;
  spec.topology.kind = GetParam().kind;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = 4;
  spec.execution.conflict_prob = 0.25;
  spec.execution.disorder_prob = 0.5;
  spec.execution.intra_weak_prob = 0.3;
  spec.execution.intra_strong_prob = 0.2;
  auto cs = workload::GenerateSystem(spec, GetParam().seed);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();

  auto result = CheckCompC(*cs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  if (result->correct) {
    // Theorem 1 "if": the topologically sorted serial front contains the
    // reduced execution.
    const Front& final_front = result->reduction.FinalFront();
    EXPECT_EQ(final_front.level, result->order);
    Front serial = MakeSerialFront(final_front, result->serial_order);
    EXPECT_TRUE(IsSerialFront(serial));
    EXPECT_TRUE(LevelContains(serial, final_front));
    // The witness is a permutation of the roots.
    std::vector<NodeId> roots = cs->Roots();
    std::vector<NodeId> witness = result->serial_order;
    std::sort(roots.begin(), roots.end());
    std::sort(witness.begin(), witness.end());
    EXPECT_EQ(roots, witness);
  } else {
    ASSERT_TRUE(result->failure.has_value());
    const ReductionFailure& failure = *result->failure;
    EXPECT_GE(failure.witness.nodes.size(), 1u);
    EXPECT_FALSE(failure.witness.description.empty());
    if (failure.step == ReductionFailureStep::kConflictConsistency) {
      // The cycle's consecutive members must be related by observed or
      // input orders of the offending front (the last front kept).
      const Front& front = result->reduction.fronts.back();
      const auto& cycle = failure.witness.nodes;
      for (size_t i = 0; i < cycle.size(); ++i) {
        NodeId a = cycle[i];
        NodeId b = cycle[(i + 1) % cycle.size()];
        EXPECT_TRUE(front.observed.Contains(a, b) ||
                    front.weak_input.Contains(a, b) ||
                    front.strong_input.Contains(a, b))
            << "cycle edge " << i << " not in the front's relations";
      }
    }
  }
}

std::vector<Case> MakeCases() {
  std::vector<Case> cases;
  for (auto kind :
       {workload::TopologyKind::kStack, workload::TopologyKind::kFork,
        workload::TopologyKind::kJoin, workload::TopologyKind::kLayeredDag}) {
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      cases.push_back(Case{kind, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, Theorem1PropertyTest,
                         ::testing::ValuesIn(MakeCases()));

/// Theorems 2-4 as randomized properties: on the single-meet
/// configurations the specialized conflict-consistency criteria decide
/// exactly Comp-C.  The parameter kind picks both the generator shape and
/// the theorem under test.
class CriteriaTheoremPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(CriteriaTheoremPropertyTest, SpecializedCriterionEqualsCompC) {
  workload::WorkloadSpec spec;
  spec.topology.kind = GetParam().kind;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = 4;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.35;
  spec.execution.disorder_prob = 0.45;
  spec.execution.intra_weak_prob = 0.3;
  spec.execution.intra_strong_prob = 0.15;
  const std::string repro = StrCat("seed ", GetParam().seed, " (",
                                   workload::DescribeWorkloadSpec(spec), ")");
  auto cs = workload::GenerateSystem(spec, GetParam().seed);
  ASSERT_TRUE(cs.ok()) << repro << ": " << cs.status().ToString();
  const bool comp_c = IsCompC(*cs);
  switch (GetParam().kind) {
    case workload::TopologyKind::kStack: {
      ASSERT_TRUE(criteria::IsStackSystem(*cs)) << repro;
      auto scc = criteria::IsStackConflictConsistent(*cs);
      ASSERT_TRUE(scc.ok()) << repro << ": " << scc.status().ToString();
      EXPECT_EQ(*scc, comp_c) << "Theorem 2 (SCC = Comp-C on stacks): "
                              << repro;
      break;
    }
    case workload::TopologyKind::kFork: {
      ASSERT_TRUE(criteria::IsForkSystem(*cs)) << repro;
      auto fcc = criteria::IsForkConflictConsistent(*cs);
      ASSERT_TRUE(fcc.ok()) << repro << ": " << fcc.status().ToString();
      EXPECT_EQ(*fcc, comp_c) << "Theorem 3 (FCC = Comp-C on forks): "
                              << repro;
      break;
    }
    case workload::TopologyKind::kJoin: {
      ASSERT_TRUE(criteria::IsJoinSystem(*cs)) << repro;
      auto jcc = criteria::IsJoinConflictConsistent(*cs);
      ASSERT_TRUE(jcc.ok()) << repro << ": " << jcc.status().ToString();
      EXPECT_EQ(*jcc, comp_c) << "Theorem 4 (JCC = Comp-C on joins): "
                              << repro;
      break;
    }
    default:
      FAIL() << "unexpected topology kind: " << repro;
  }
}

std::vector<Case> MakeSingleMeetCases() {
  std::vector<Case> cases;
  for (auto kind :
       {workload::TopologyKind::kStack, workload::TopologyKind::kFork,
        workload::TopologyKind::kJoin}) {
    for (uint64_t seed = 1; seed <= 30; ++seed) {
      cases.push_back(Case{kind, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(SingleMeetTopologies, CriteriaTheoremPropertyTest,
                         ::testing::ValuesIn(MakeSingleMeetCases()));

}  // namespace
}  // namespace comptx
