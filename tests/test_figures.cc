#include "analysis/figures.h"

#include <gtest/gtest.h>

#include "analysis/printer.h"
#include "core/correctness.h"

namespace comptx {
namespace {

using analysis::MakeFigure1;
using analysis::MakeFigure2;
using analysis::MakeFigure3;
using analysis::MakeFigure4;
using analysis::PaperFigure;

TEST(Figure1Test, IsCompCGeneralSystem) {
  PaperFigure fig = MakeFigure1();
  ASSERT_TRUE(fig.system.Validate().ok())
      << fig.system.Validate().ToString();
  auto result = CheckCompC(fig.system);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->correct);
  EXPECT_EQ(result->order, 3u);
  EXPECT_EQ(result->serial_order.size(), 5u);  // five roots.
}

TEST(Figure2Test, ObservedOrderRelatesRootsAcrossSchedules) {
  PaperFigure fig = MakeFigure2();
  auto result = CheckCompC(fig.system);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->correct);
  // At the final front, T1 is observed-before T2 and T3 even though the
  // roots share no schedule.
  const Front& final_front = result->reduction.FinalFront();
  std::vector<NodeId> roots = fig.system.Roots();
  ASSERT_EQ(roots.size(), 3u);
  EXPECT_TRUE(final_front.observed.Contains(roots[0], roots[1]));
  EXPECT_TRUE(final_front.observed.Contains(roots[0], roots[2]));
  EXPECT_FALSE(final_front.observed.Contains(roots[1], roots[0]));
  // The cross-schedule pairs are generalized conflicts (Def 11.2).
  EXPECT_TRUE(final_front.conflicts.Contains(roots[0], roots[1]));
  // Serial witness starts with T1.
  EXPECT_EQ(result->serial_order.front(), roots[0]);
}

TEST(Figure3Test, ReductionFailsAtTopLevel) {
  PaperFigure fig = MakeFigure3();
  auto result = CheckCompC(fig.system);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->correct);
  ASSERT_TRUE(result->failure.has_value());
  EXPECT_EQ(result->failure->level, 3u);
  EXPECT_EQ(result->failure->step, ReductionFailureStep::kCalculation);
  // The witness cycle names the two roots.
  EXPECT_EQ(result->failure->witness.nodes.size(), 2u);
}

TEST(Figure4Test, ForgettingMakesItCorrect) {
  PaperFigure fig = MakeFigure4();
  auto result = CheckCompC(fig.system);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->correct);
  // Branch B's order survives: T2 serialized before T1.
  ASSERT_EQ(result->serial_order.size(), 2u);
  EXPECT_EQ(fig.system.node(result->serial_order[0]).name, "T2");
  EXPECT_EQ(fig.system.node(result->serial_order[1]).name, "T1");
}

TEST(Figure4Test, WithoutForgettingItIsIncorrect) {
  PaperFigure fig = MakeFigure4();
  ReductionOptions options;
  options.forgetting = false;
  auto result = CheckCompC(fig.system, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->correct);
}

TEST(FigurePrinterTest, DescriptionsRender) {
  PaperFigure fig = MakeFigure4();
  std::string description = analysis::DescribeSystem(fig.system);
  EXPECT_NE(description.find("S1"), std::string::npos);
  EXPECT_NE(description.find("forest"), std::string::npos);
  auto result = CheckCompC(fig.system);
  ASSERT_TRUE(result.ok());
  std::string trace = analysis::DescribeReduction(fig.system, *result);
  EXPECT_NE(trace.find("front level 0"), std::string::npos);
  EXPECT_NE(trace.find("Comp-C"), std::string::npos);
  std::string dot = analysis::ForestToDot(fig.system);
  EXPECT_NE(dot.find("digraph forest"), std::string::npos);
}

}  // namespace
}  // namespace comptx
