// Cross-validation of the reduction engine against the independent
// hierarchical-demand oracle (criteria/oracle.h) on random small systems
// of every topology.  The two implementations share no code path beyond
// the data model.
//
// The exact relationship (see DESIGN.md §3): Comp-C implies
// oracle-correctness (the reduction is sound), but not conversely —
// Def 11.2 pessimistically treats cross-schedule observed pairs as
// conflicts, so the level-by-level reduction can reject executions whose
// orders a schedule further up would have vouched irrelevant.  On the
// special configurations with a unique meet (stack, fork, join) the two
// coincide; the strictness gap appears only on general DAGs.

#include "criteria/oracle.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/sweep.h"
#include "core/correctness.h"
#include "test_helpers.h"
#include "util/string_util.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

TEST(OracleTest, AcceptsCleanStack) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/true);
  auto verdict = criteria::HierarchicalSerializabilityOracle(stack.cs);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
}

TEST(OracleTest, RejectsCrossAnomaly) {
  auto verdict = criteria::HierarchicalSerializabilityOracle(
      testing::MakeCrossAnomaly(/*top_conflicts=*/true));
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(*verdict);
}

TEST(OracleTest, ForgettingAcceptsCommutingTop) {
  auto verdict = criteria::HierarchicalSerializabilityOracle(
      testing::MakeCrossAnomaly(/*top_conflicts=*/false));
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
}

TEST(OracleTest, RejectsInvalidSystems) {
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(stack.cs.AddConflict(stack.s1, stack.s2).ok());
  EXPECT_FALSE(
      criteria::HierarchicalSerializabilityOracle(stack.cs).ok());
}

struct OracleCase {
  workload::TopologyKind kind;
  uint64_t seed;
};

void PrintTo(const OracleCase& c, std::ostream* os) {
  *os << workload::TopologyKindToString(c.kind) << "_seed" << c.seed;
}

class OracleAgreementTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleAgreementTest, EngineMatchesOracle) {
  workload::WorkloadSpec spec;
  spec.topology.kind = GetParam().kind;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = 3;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.35;
  spec.execution.disorder_prob = 0.3;
  spec.execution.intra_weak_prob = 0.3;
  spec.execution.intra_strong_prob = 0.2;
  // Seed + generator parameters: everything needed to regenerate the
  // failing execution outside the test.
  const std::string repro = StrCat("seed ", GetParam().seed, " (",
                                   workload::DescribeWorkloadSpec(spec), ")");
  auto cs = workload::GenerateSystem(spec, GetParam().seed);
  ASSERT_TRUE(cs.ok()) << repro << ": " << cs.status().ToString();
  auto oracle = criteria::HierarchicalSerializabilityOracle(*cs);
  ASSERT_TRUE(oracle.ok()) << repro << ": " << oracle.status().ToString();
  const bool comp_c = IsCompC(*cs);
  // Soundness always: an accepted execution has a serial witness.
  if (comp_c) EXPECT_TRUE(*oracle) << repro;
  // On the single-meet configurations the criteria coincide exactly;
  // general DAGs may exhibit the documented conservatism gap.
  if (GetParam().kind != workload::TopologyKind::kLayeredDag) {
    EXPECT_EQ(*oracle, comp_c) << repro;
  }
}

TEST(OracleTest, BatchSweepAgreesWithOracle) {
  // The same engine-vs-oracle cross-check, driven as one batch: the
  // engine side goes through the pool-backed sweep driver, the oracle
  // side fans out through ParallelMap, and verdicts are compared
  // pairwise.  Catches any sweep-level aggregation mixing up systems.
  std::vector<CompositeSystem> systems;
  std::vector<bool> single_meet;
  std::vector<std::string> repro;  // seed + generator params per system
  for (auto kind :
       {workload::TopologyKind::kStack, workload::TopologyKind::kFork,
        workload::TopologyKind::kJoin, workload::TopologyKind::kLayeredDag}) {
    for (uint64_t seed = 61; seed <= 66; ++seed) {
      workload::WorkloadSpec spec;
      spec.topology.kind = kind;
      spec.topology.depth = 3;
      spec.topology.branches = 2;
      spec.topology.roots = 3;
      spec.topology.fanout = 2;
      spec.execution.conflict_prob = 0.35;
      spec.execution.disorder_prob = 0.3;
      spec.execution.intra_weak_prob = 0.3;
      spec.execution.intra_strong_prob = 0.2;
      auto cs = workload::GenerateSystem(spec, seed);
      ASSERT_TRUE(cs.ok()) << "seed " << seed << " ("
                           << workload::DescribeWorkloadSpec(spec)
                           << "): " << cs.status().ToString();
      systems.push_back(*std::move(cs));
      single_meet.push_back(kind != workload::TopologyKind::kLayeredDag);
      repro.push_back(StrCat("seed ", seed, " (",
                             workload::DescribeWorkloadSpec(spec), ")"));
    }
  }
  std::vector<const CompositeSystem*> pointers;
  for (const CompositeSystem& cs : systems) pointers.push_back(&cs);

  const std::vector<analysis::SweepVerdict> engine =
      analysis::SweepCompC(pointers);
  const std::vector<bool> oracle =
      analysis::ParallelMap<bool>(systems.size(), [&](size_t i) {
        auto verdict = criteria::HierarchicalSerializabilityOracle(systems[i]);
        EXPECT_TRUE(verdict.ok()) << verdict.status().ToString();
        return verdict.ok() && *verdict;
      });
  ASSERT_EQ(engine.size(), systems.size());
  for (size_t i = 0; i < systems.size(); ++i) {
    ASSERT_TRUE(engine[i].ok) << repro[i] << ": " << engine[i].status_message;
    if (engine[i].comp_c) EXPECT_TRUE(oracle[i]) << repro[i];
    if (single_meet[i]) EXPECT_EQ(oracle[i], engine[i].comp_c) << repro[i];
  }
}

std::vector<OracleCase> MakeOracleCases() {
  std::vector<OracleCase> cases;
  for (auto kind :
       {workload::TopologyKind::kStack, workload::TopologyKind::kFork,
        workload::TopologyKind::kJoin, workload::TopologyKind::kLayeredDag}) {
    for (uint64_t seed = 1; seed <= 40; ++seed) {
      cases.push_back(OracleCase{kind, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, OracleAgreementTest,
                         ::testing::ValuesIn(MakeOracleCases()));

}  // namespace
}  // namespace comptx
