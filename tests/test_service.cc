// Tests for the src/service subsystem (ctest label `service`): metrics
// primitives, wire-protocol round trips, the in-process server API
// checked against the batch Comp-C checker, admission control, idle
// eviction, drain-on-shutdown accounting, the TCP loopback path through
// ServiceClient, and two concurrency suites (ServiceStress,
// CertifierConcurrency) that the TSan CI job runs under
// -DCOMPTX_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/correctness.h"
#include "durability/recovery.h"
#include "online/certifier.h"
#include "util/string_util.h"
#include "service/client.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/session_manager.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx::service {
namespace {

// ------------------------------------------------------------- metrics

TEST(LatencyHistogramTest, BucketMappingIsMonotoneAndInverts) {
  size_t prev = 0;
  for (uint64_t v : {0ull, 1ull, 2ull, 15ull, 16ull, 17ull, 100ull, 1000ull,
                     12345ull, 1000000ull, 123456789ull}) {
    const size_t bucket = LatencyHistogram::BucketFor(v);
    EXPECT_GE(bucket, prev) << v;
    EXPECT_GE(LatencyHistogram::BucketUpperBound(bucket), v) << v;
    prev = bucket;
  }
}

TEST(LatencyHistogramTest, QuantilesBoundRelativeError) {
  LatencyHistogram hist;
  for (uint64_t v = 1; v <= 10000; ++v) hist.Record(v);
  const auto snap = hist.Snap();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_GE(snap.max, 10000u);
  // Log-linear buckets with 16 sub-buckets: <= 1/16 relative error, and
  // the reported value is a bucket upper bound (never an underestimate).
  EXPECT_GE(snap.p50, 5000u);
  EXPECT_LE(snap.p50, 5000u + 5000u / 16 + 1);
  EXPECT_GE(snap.p99, 9900u);
  EXPECT_LE(snap.p99, 9900u + 9900u / 16 + 1);
  EXPECT_NEAR(snap.mean, 5000.5, 1.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram hist;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (size_t i = 0; i < kPerThread; ++i) hist.Record(t * 100 + 1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.Snap().count, kThreads * kPerThread);
}

TEST(StripedCounterTest, ConcurrentAddsSumExactly) {
  StripedCounter counter;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

// ------------------------------------------------------------ protocol

TEST(ProtocolTest, RequestsRoundTrip) {
  Request open;
  open.kind = CommandKind::kOpen;
  open.options = "forgetting=true queue_capacity=64";
  auto parsed = ParseRequest(FormatRequest(open));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, CommandKind::kOpen);
  EXPECT_EQ(parsed->options, open.options);

  Request append;
  append.kind = CommandKind::kAppend;
  append.session = 42;
  workload::TraceEvent e;
  e.kind = workload::TraceEventKind::kSchedule;
  e.name = "S";
  append.events.push_back(e);
  e = {};
  e.kind = workload::TraceEventKind::kRoot;
  e.schedule = 0;
  e.name = "T";
  append.events.push_back(e);
  parsed = ParseRequest(FormatRequest(append));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->session, 42u);
  ASSERT_EQ(parsed->events.size(), 2u);
  EXPECT_EQ(parsed->events[1].name, "T");

  for (CommandKind kind : {CommandKind::kQuery, CommandKind::kClose,
                           CommandKind::kStats, CommandKind::kPing,
                           CommandKind::kShutdown}) {
    Request request;
    request.kind = kind;
    request.session = 7;
    parsed = ParseRequest(FormatRequest(request));
    ASSERT_TRUE(parsed.ok()) << CommandKindToString(kind);
    EXPECT_EQ(parsed->kind, kind);
  }
}

TEST(ProtocolTest, ResponsesRoundTrip) {
  Response ok = OkResponse();
  ok.fields.emplace_back("session", "9");
  ok.fields.emplace_back("certifiable", "true");
  ok.body = "some body\nsecond line\n";
  auto parsed = ParseResponse(FormatResponse(ok));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->FieldInt("session"), 9u);
  EXPECT_EQ(parsed->Field("certifiable"), "true");
  EXPECT_EQ(parsed->body, ok.body);

  Response err = ErrorResponse("not_found", "no session 12");
  parsed = ParseResponse(FormatResponse(err));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->error_code, "not_found");
  EXPECT_EQ(parsed->error_message, "no session 12");
}

TEST(ProtocolTest, MalformedPayloadsAreRejected) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("FROBNICATE 1").ok());
  EXPECT_FALSE(ParseRequest("APPEND").ok());          // missing session
  EXPECT_FALSE(ParseRequest("APPEND 1\nend").ok());   // "end" is not an event
  EXPECT_FALSE(ParseResponse("MAYBE ok").ok());
}

TEST(SessionOptionsTest, ParseOverridesDefaults) {
  SessionOptions defaults;
  defaults.queue_capacity = 128;
  auto parsed = ParseSessionOptions(
      "forgetting=false queue_capacity=16 epoch_interval=3", defaults);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->certifier.forgetting);
  EXPECT_EQ(parsed->queue_capacity, 16u);
  EXPECT_EQ(parsed->certifier.epoch_interval, 3u);
  EXPECT_FALSE(ParseSessionOptions("queue_capacity=banana", defaults).ok());
  EXPECT_FALSE(ParseSessionOptions("no_such_option=1", defaults).ok());
}

// ------------------------------------------------------------- helpers

std::vector<workload::TraceEvent> GeneratedEvents(uint32_t roots,
                                                  uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.15;
  spec.execution.intra_weak_prob = 0.2;
  auto cs = workload::GenerateSystem(spec, seed);
  EXPECT_TRUE(cs.ok()) << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  auto events = workload::ParseTraceEvents(*text);
  EXPECT_TRUE(events.ok()) << events.status().ToString();
  return std::move(events).value();
}

/// Single-threaded ground truth: batch-replay + CheckCompC (the
/// single-trace kernel of SweepCompC), validation off exactly as the
/// online certifier treats a stream.
bool BatchVerdict(const std::vector<workload::TraceEvent>& events) {
  CompositeSystem cs;
  for (const auto& event : events) {
    EXPECT_TRUE(workload::ApplyTraceEvent(cs, event).ok());
  }
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  auto result = CheckCompC(cs, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->correct;
}

// ------------------------------------------------- in-process server

TEST(CertificationServerTest, OpenAppendQueryCloseMatchesBatch) {
  ServerOptions options;
  options.workers = 2;
  CertificationServer server(options);
  const auto events = GeneratedEvents(8, 101);
  auto session = server.Open();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE(server.Append(*session, events).ok());
  auto verdict = server.Query(*session);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(verdict->events_accepted, events.size());
  EXPECT_EQ(verdict->events_rejected, 0u);
  EXPECT_EQ(verdict->certifiable, BatchVerdict(events));
  auto closed = server.Close(*session);
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_EQ(closed->certifiable, verdict->certifiable);
  // The slot is gone: every further command answers not_found.
  EXPECT_FALSE(server.Query(*session).ok());
  EXPECT_FALSE(server.Append(*session, events).ok());
  server.Shutdown();
}

TEST(CertificationServerTest, AdmissionControlRefusesBeyondMaxSessions) {
  ServerOptions options;
  options.workers = 1;
  options.max_sessions = 2;
  CertificationServer server(options);
  auto first = server.Open();
  auto second = server.Open();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  Request open;
  open.kind = CommandKind::kOpen;
  Response refused = server.Handle(open);
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error_code, "session_limit");
  // Closing one frees the slot.
  ASSERT_TRUE(server.Close(*first).ok());
  EXPECT_TRUE(server.Open().ok());
  server.Shutdown();
}

TEST(CertificationServerTest, BadSessionOptionsAreABadRequest) {
  CertificationServer server(ServerOptions{});
  Request open;
  open.kind = CommandKind::kOpen;
  open.options = "queue_capacity=banana";
  Response response = server.Handle(open);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, "bad_request");
  server.Shutdown();
}

TEST(CertificationServerTest, IdleSessionsAreEvicted) {
  ServerOptions options;
  options.workers = 1;
  options.idle_timeout_ms = 1;
  CertificationServer server(options);
  auto session = server.Open();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(server.Append(*session, GeneratedEvents(2, 7)).ok());
  ASSERT_TRUE(server.Query(*session).ok());  // drain, then go idle
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // The background ticker may beat the explicit sweep to the eviction;
  // either way the session is evicted exactly once.
  server.EvictIdleNow();
  EXPECT_FALSE(server.Query(*session).ok());
  EXPECT_EQ(server.metrics().sessions_evicted.Value(), 1u);
  EXPECT_EQ(server.SessionCount(), 0u);
  server.Shutdown();
}

TEST(CertificationServerTest, ShutdownDrainsEveryQueuedEvent) {
  ServerOptions options;
  options.workers = 2;
  options.batch_size = 8;  // force many run-queue hand-offs
  CertificationServer server(options);
  std::vector<uint64_t> ids;
  for (int s = 0; s < 6; ++s) {
    auto session = server.Open();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(server.Append(*session, GeneratedEvents(8, 200 + s)).ok());
    ids.push_back(*session);
  }
  server.Shutdown();  // graceful: queued events certify before teardown
  EXPECT_EQ(server.metrics().events_enqueued.Value(),
            server.metrics().events_processed.Value() +
                server.metrics().events_rejected.Value());
  EXPECT_EQ(server.metrics().queue_depth.load(), 0);
  // After shutdown every command is refused.
  Request open;
  open.kind = CommandKind::kOpen;
  EXPECT_EQ(server.Handle(open).error_code, "shutting_down");
}

TEST(CertificationServerTest, RejectedEventsAreCountedNotFatal) {
  CertificationServer server(ServerOptions{});
  auto session = server.Open();
  ASSERT_TRUE(session.ok());
  workload::TraceEvent bogus;
  bogus.kind = workload::TraceEventKind::kConflict;
  bogus.a = 100;  // no such node: the certifier rejects it
  bogus.b = 101;
  auto events = GeneratedEvents(2, 11);
  events.push_back(bogus);
  ASSERT_TRUE(server.Append(*session, events).ok());
  auto verdict = server.Query(*session);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(verdict->events_accepted, events.size() - 1);
  EXPECT_EQ(verdict->events_rejected, 1u);
  server.Shutdown();
  // A workload with a real rejection keeps the counters consistent:
  // events_processed counts successful ingests only.
  EXPECT_EQ(server.metrics().events_rejected.Value(), 1u);
  EXPECT_EQ(server.metrics().events_enqueued.Value(),
            server.metrics().events_processed.Value() +
                server.metrics().events_rejected.Value());
}

// Regression: an APPEND carrying more events than the queue capacity
// into an idle session must schedule the pushed prefix before blocking
// for space — otherwise the producer waits forever for a drain no
// worker was asked to perform (this test hung before the fix).
TEST(CertificationServerTest, AppendLargerThanQueueCapacityDoesNotDeadlock) {
  ServerOptions options;
  options.workers = 1;
  options.batch_size = 1;
  options.session.queue_capacity = 1;
  CertificationServer server(options);
  auto session = server.Open();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  const auto events = GeneratedEvents(6, 99);
  ASSERT_GT(events.size(), 1u);
  ASSERT_TRUE(server.Append(*session, events).ok());
  auto verdict = server.Query(*session);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(verdict->events_accepted + verdict->events_rejected,
            events.size());
  EXPECT_EQ(verdict->certifiable, BatchVerdict(events));
  EXPECT_GT(server.metrics().backpressure_waits.Value(), 0u);
  server.Shutdown();
}

// Eviction closes the session in the same critical section as the idle
// check, so an enqueue can only ever lose the race by failing loudly
// (session_closing), never by landing an acknowledged event in an
// evicted session.
TEST(SessionTest, CloseIfIdleIsAtomicWithTheIdleCheck) {
  ServiceMetrics metrics;
  Session session(1, SessionOptions{}, &metrics);
  // A session with recent activity is not evictable...
  EXPECT_FALSE(session.CloseIfIdle(std::chrono::steady_clock::now() -
                                   std::chrono::hours(1)));
  Status enqueued =
      session.Enqueue(GeneratedEvents(2, 13), /*schedule=*/[] {});
  ASSERT_TRUE(enqueued.ok()) << enqueued.ToString();
  // ...nor is one with queued events, regardless of the cutoff.
  EXPECT_FALSE(session.CloseIfIdle(std::chrono::steady_clock::now() +
                                   std::chrono::hours(1)));
  while (session.ProcessBatch(16)) {
  }
  EXPECT_TRUE(session.CloseIfIdle(std::chrono::steady_clock::now() +
                                  std::chrono::hours(1)));
  // Once closing, a racing producer fails instead of losing its events.
  Status refused =
      session.Enqueue(GeneratedEvents(2, 13), /*schedule=*/[] {});
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------- TCP loopback

TEST(ServiceLoopbackTest, FullProtocolOverTcp) {
  ServerOptions options;
  options.workers = 2;
  CertificationServer server(options);
  Endpoint endpoint;  // 127.0.0.1, ephemeral port
  ASSERT_TRUE(server.Listen(endpoint).ok());
  ASSERT_GT(endpoint.port, 0);

  auto client = ServiceClient::Dial(endpoint);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->Ping().ok());

  const auto events = GeneratedEvents(6, 33);
  auto session = client->Open("queue_capacity=512");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto queued = client->Append(*session, events);
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();
  EXPECT_EQ(*queued, events.size());

  auto verdict = client->Query(*session);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(verdict->events_accepted, events.size());
  EXPECT_EQ(verdict->certifiable, BatchVerdict(events));

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("events_processed"), std::string::npos) << *stats;

  auto closed = client->Close(*session);
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  auto missing = client->Query(*session);
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("not_found"), std::string::npos)
      << missing.status().ToString();
  server.Shutdown();
}

TEST(ServiceLoopbackTest, ShutdownCommandDrainsAndRefusesNewWork) {
  CertificationServer server(ServerOptions{});
  Endpoint endpoint;
  ASSERT_TRUE(server.Listen(endpoint).ok());
  auto client = ServiceClient::Dial(endpoint);
  ASSERT_TRUE(client.ok());
  auto session = client->Open();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(client->Append(*session, GeneratedEvents(4, 55)).ok());
  ASSERT_TRUE(client->Shutdown().ok());
  server.WaitShutdown();
  server.Shutdown();
  EXPECT_EQ(server.metrics().events_enqueued.Value(),
            server.metrics().events_processed.Value() +
                server.metrics().events_rejected.Value());
}

// --------------------------------------------------------- concurrency

// The acceptance configuration: >= 64 sessions fed from >= 8 client
// threads through the in-process API, every verdict identical to a
// single-threaded batch replay of the same events.  Runs under TSan in
// CI (ctest -R ServiceStress).
TEST(ServiceStressTest, SixtyFourSessionsEightThreadsMatchBatchReplay) {
  constexpr size_t kSessions = 64;
  constexpr size_t kThreads = 8;
  ServerOptions options;
  options.workers = 4;
  options.batch_size = 16;        // many hand-offs per session
  options.session.queue_capacity = 64;  // exercise backpressure
  CertificationServer server(options);

  struct Work {
    uint64_t id = 0;
    std::vector<workload::TraceEvent> events;
  };
  std::vector<Work> work(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    auto session = server.Open();
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    work[s].id = *session;
    work[s].events = GeneratedEvents(4 + s % 5, 1000 + s);
  }

  // Each thread owns a disjoint slice of sessions (in-process Append is
  // synchronous, so per-session ordering needs per-session ownership)
  // and interleaves appends across them in small chunks.
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      constexpr size_t kChunk = 24;
      bool progress = true;
      std::vector<size_t> cursors(kSessions, 0);
      while (progress) {
        progress = false;
        for (size_t s = t; s < kSessions; s += kThreads) {
          Work& w = work[s];
          size_t& cursor = cursors[s];
          if (cursor >= w.events.size()) continue;
          const size_t n = std::min(kChunk, w.events.size() - cursor);
          std::vector<workload::TraceEvent> chunk(
              w.events.begin() + cursor, w.events.begin() + cursor + n);
          cursor += n;
          if (!server.Append(w.id, std::move(chunk)).ok()) {
            failures.fetch_add(1);
            return;
          }
          progress = true;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0u);

  size_t mismatches = 0;
  for (const Work& w : work) {
    auto verdict = server.Close(w.id);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_EQ(verdict->events_accepted + verdict->events_rejected,
              w.events.size());
    if (verdict->certifiable != BatchVerdict(w.events)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
  server.Shutdown();
  EXPECT_EQ(server.metrics().events_enqueued.Value(),
            server.metrics().events_processed.Value() +
                server.metrics().events_rejected.Value());
}

// The certifier's documented threading contract (online/certifier.h):
// one ingesting thread, any number of concurrent Verdict/Stats readers.
// TSan validates the internal locking (ctest -R CertifierConcurrency).
TEST(CertifierConcurrencyTest, ConcurrentReadersSeeConsistentVerdicts) {
  const auto events = GeneratedEvents(16, 77);
  online::Certifier certifier;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&certifier, &done] {
      // do-while: on a single-core box the writer may finish before this
      // thread is first scheduled; every reader still polls at least once.
      do {
        online::CertifierVerdict verdict = certifier.Verdict();
        online::CertifierStats stats = certifier.Stats();
        // Sanity on the concurrently-read snapshot: a reader never sees
        // more accepted events than the stream holds.
        ASSERT_LE(stats.events_accepted, 1u << 20);
        ASSERT_LE(verdict.order, 1u << 20);
      } while (!done.load(std::memory_order_acquire));
    });
  }
  size_t accepted = 0;
  for (const auto& event : events) {
    if (certifier.Ingest(event).ok()) ++accepted;
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(certifier.Stats().events_accepted, accepted);
  EXPECT_EQ(certifier.Certifiable(), BatchVerdict(events));
}

// ------------------------------------------------- durable sessions

/// A fresh durability directory per test case.
std::string DurabilityDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      StrCat("comptx_svc_dur_", static_cast<unsigned long>(::getpid())) /
      name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(DurableServerTest, SessionsSurviveRestartWithConsistentCounters) {
  const std::string dir = DurabilityDir("restart");
  ServerOptions options;
  options.workers = 2;
  options.durability.dir = dir;
  options.durability.fsync = durability::FsyncPolicy::kNone;
  options.durability.snapshot_events = 16;  // some sessions will compact

  std::vector<uint64_t> ids;
  std::vector<std::vector<workload::TraceEvent>> streams;
  {
    CertificationServer server(options);
    ASSERT_TRUE(server.InitStatus().ok()) << server.InitStatus();
    for (int s = 0; s < 3; ++s) {
      auto events = GeneratedEvents(6, 900 + s);
      auto id = server.Open();
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ASSERT_TRUE(server.Append(*id, events).ok());
      ids.push_back(*id);
      streams.push_back(std::move(events));
    }
    server.Shutdown();  // graceful: drains + snapshots every session
  }

  options.durability.verify_recovery = true;
  CertificationServer server(options);
  ASSERT_TRUE(server.InitStatus().ok()) << server.InitStatus();
  EXPECT_EQ(server.SessionCount(), 3u);
  EXPECT_EQ(server.metrics().durability.sessions_recovered.load(), 3u);
  for (size_t s = 0; s < ids.size(); ++s) {
    auto verdict = server.Query(ids[s]);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_EQ(verdict->events_accepted + verdict->events_rejected,
              streams[s].size());
    EXPECT_EQ(verdict->certifiable, BatchVerdict(streams[s]));
    ASSERT_TRUE(server.Close(ids[s]).ok());
  }
  // The pipeline invariant holds across the restart: recovered events
  // re-enter all three counters, so the books still balance.
  EXPECT_EQ(server.metrics().events_enqueued.Value(),
            server.metrics().events_processed.Value() +
                server.metrics().events_rejected.Value());
  // STATS surfaces the durability counter block.
  Request stats;
  stats.kind = CommandKind::kStats;
  const Response response = server.Handle(stats);
  ASSERT_TRUE(response.ok);
  for (const char* key :
       {"wal_appends", "wal_append_events", "wal_bytes", "fsyncs",
        "snapshots_written", "sessions_recovered", "records_truncated"}) {
    EXPECT_NE(response.body.find(key), std::string::npos) << key;
  }
  server.Shutdown();
  // Every session was closed: the directory is empty again.
  EXPECT_TRUE(durability::ListDurableSessionIds(dir).empty());
}

TEST(DurableServerTest, EvictionPersistsAndResumeRestoresTheVerdict) {
  const std::string dir = DurabilityDir("evict");
  ServerOptions options;
  options.workers = 1;
  options.idle_timeout_ms = 1;
  options.durability.dir = dir;
  options.durability.fsync = durability::FsyncPolicy::kNone;
  CertificationServer server(options);
  ASSERT_TRUE(server.InitStatus().ok()) << server.InitStatus();

  const auto events = GeneratedEvents(8, 4321);
  const size_t half = events.size() / 2;
  auto id = server.Open("epoch_interval=16");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(
      server
          .Append(*id, {events.begin(), events.begin() +
                                            static_cast<ptrdiff_t>(half)})
          .ok());
  ASSERT_TRUE(server.Query(*id).ok());  // drain, then go idle
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // The ticker may beat the explicit sweep; either way the session is
  // evicted exactly once and persisted to disk first.
  server.EvictIdleNow();
  EXPECT_EQ(server.metrics().sessions_evicted.Value(), 1u);
  EXPECT_FALSE(server.Query(*id).ok());  // no longer live...
  ASSERT_EQ(durability::ListDurableSessionIds(dir).size(), 1u);  // ...but kept

  // Resuming a live session is an error only once it IS live again.
  auto resumed = server.Open(StrCat("resume=", *id));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(*resumed, *id);  // same id: the client's stream continues
  EXPECT_FALSE(server.Open(StrCat("resume=", *id)).ok());  // already live
  EXPECT_FALSE(server.Open("resume=99999").ok());          // never existed

  ASSERT_TRUE(
      server
          .Append(*id, {events.begin() + static_cast<ptrdiff_t>(half),
                        events.end()})
          .ok());
  auto verdict = server.Close(*id);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(verdict->events_accepted + verdict->events_rejected,
            events.size());
  EXPECT_EQ(verdict->certifiable, BatchVerdict(events));
  // CLOSE removed the durable files; the id cannot be resumed again.
  EXPECT_TRUE(durability::ListDurableSessionIds(dir).empty());
  EXPECT_FALSE(server.Open(StrCat("resume=", *id)).ok());
  server.Shutdown();
}

TEST(DurableServerTest, ResumeWithoutDurabilityIsABadRequest) {
  CertificationServer server(ServerOptions{});
  auto resumed = server.Open("resume=1");
  EXPECT_FALSE(resumed.ok());
  server.Shutdown();
}

}  // namespace
}  // namespace comptx::service
