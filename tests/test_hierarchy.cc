// Empirical containment checks for the correctness-class hierarchy the
// paper claims in §1/§4: OPSR ⊆ LLSR, and on stack architectures both are
// contained in SCC (= Comp-C by Theorem 2).  Violations of these
// containments on any generated execution are bugs.

#include <gtest/gtest.h>

#include "core/correctness.h"
#include "criteria/compare.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

struct HierarchyCase {
  workload::TopologyKind kind;
  uint64_t seed;
  double conflict_prob;
};

void PrintTo(const HierarchyCase& c, std::ostream* os) {
  *os << workload::TopologyKindToString(c.kind) << "_seed" << c.seed << "_c"
      << int(c.conflict_prob * 100);
}

class HierarchyTest : public ::testing::TestWithParam<HierarchyCase> {};

TEST_P(HierarchyTest, ContainmentsHold) {
  workload::WorkloadSpec spec;
  spec.topology.kind = GetParam().kind;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = 4;
  spec.execution.conflict_prob = GetParam().conflict_prob;
  spec.execution.disorder_prob = 0.4;
  auto cs = workload::GenerateSystem(spec, GetParam().seed);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  auto verdicts = criteria::EvaluateAllCriteria(*cs);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();

  // OPSR preserves strictly more orders than LLSR pulls up.
  if (verdicts->opsr) {
    EXPECT_TRUE(verdicts->llsr) << "OPSR must imply LLSR";
  }
  // LLSR pulls every order up unconditionally; Comp-C only drops orders
  // that a common schedule vouches are irrelevant, so LLSR acceptance
  // implies Comp-C acceptance.
  if (verdicts->llsr) {
    EXPECT_TRUE(verdicts->comp_c) << "LLSR must imply Comp-C";
  }
  // On the special shapes the special criteria must equal Comp-C
  // (Theorems 2-4; also covered by test_theorems at other parameters).
  if (verdicts->scc) EXPECT_EQ(*verdicts->scc, verdicts->comp_c);
  if (verdicts->fcc) EXPECT_EQ(*verdicts->fcc, verdicts->comp_c);
  if (verdicts->jcc) EXPECT_EQ(*verdicts->jcc, verdicts->comp_c);
}

std::vector<HierarchyCase> MakeCases() {
  std::vector<HierarchyCase> cases;
  for (auto kind :
       {workload::TopologyKind::kStack, workload::TopologyKind::kFork,
        workload::TopologyKind::kJoin, workload::TopologyKind::kLayeredDag}) {
    for (uint64_t seed = 1; seed <= 15; ++seed) {
      for (double conflict : {0.2, 0.6}) {
        cases.push_back(HierarchyCase{kind, seed, conflict});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, HierarchyTest,
                         ::testing::ValuesIn(MakeCases()));

TEST(HierarchyGapTest, CompCAcceptsStrictlyMoreThanLLSR) {
  // At moderate conflict rates with deep trees, there must exist
  // executions accepted by Comp-C but rejected by LLSR (the forgetting
  // gap) — otherwise the paper's headline claim has no witness.
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = 3;
  spec.execution.conflict_prob = 0.1;
  spec.execution.disorder_prob = 0.6;
  int gap = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    auto cs = workload::GenerateSystem(spec, seed);
    ASSERT_TRUE(cs.ok());
    auto verdicts = criteria::EvaluateAllCriteria(*cs);
    ASSERT_TRUE(verdicts.ok());
    if (verdicts->comp_c && !verdicts->llsr) ++gap;
  }
  EXPECT_GT(gap, 0);
}

}  // namespace
}  // namespace comptx
