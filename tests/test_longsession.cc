// Long-lived session suite (ctest label `online`): proves the O(window)
// hot-path claims of DESIGN.md §13 at the certifier layer.
//
//   * commit_through watermark semantics: text + wire round trips, exact
//     equivalence with the corresponding kCommit sequence, monotonicity,
//     and rejection of watermarks past the created-root count;
//   * IngestBatch equivalence: arbitrary batch splits produce the same
//     per-event statuses, verdicts and stats as sequential Ingest;
//   * MonotonicArena unit behavior (the allocator behind batch mode);
//   * the 500-trace property sweep: a pruned certifier (watermarks
//     interleaved at safe positions) stays prefix-identical to an
//     unpruned certifier and to analysis::BatchPrefixVerdicts, with
//     seed + workload-spec repro strings on failure;
//   * the soak: a 1M-event streaming-window session (10M under
//     COMPTX_SOAK=1, the nightly ASan job) with live-node count bounded
//     by the window, RSS growth bounded per event, and sampled-prefix
//     verdicts equal to the batch oracle at oracle-feasible scales.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sweep.h"
#include "core/correctness.h"
#include "online/certifier.h"
#include "service/protocol.h"
#include "util/arena.h"
#include "util/string_util.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx::online {
namespace {

ReductionOptions BatchPrefixOptions() {
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  options.forgetting = true;
  return options;
}

std::vector<workload::TraceEvent> GeneratedEvents(
    const workload::WorkloadSpec& spec, uint64_t seed) {
  auto cs = workload::GenerateSystem(spec, seed);
  EXPECT_TRUE(cs.ok()) << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  auto events = workload::ParseTraceEvents(*text);
  EXPECT_TRUE(events.ok()) << events.status().ToString();
  return std::move(events).value();
}

/// Interleaves cumulative commit_through watermarks (one per `window`
/// roots) at the earliest position where no later event references the
/// covered roots' subtrees — the same placement rule comptx_load's
/// --commit-window uses, and the only placement that cannot turn a
/// later event into a sealed-subtree rejection.
std::vector<workload::TraceEvent> InterleaveWatermarks(
    const std::vector<workload::TraceEvent>& events, size_t window) {
  std::vector<size_t> node_root;   // node index -> root ordinal
  std::vector<size_t> last_touch;  // root ordinal -> last event index
  auto touch = [&](uint32_t node, size_t i) {
    if (node < node_root.size()) last_touch[node_root[node]] = i;
  };
  for (size_t i = 0; i < events.size(); ++i) {
    const workload::TraceEvent& e = events[i];
    switch (e.kind) {
      case workload::TraceEventKind::kRoot:
        node_root.push_back(last_touch.size());
        last_touch.push_back(i);
        break;
      case workload::TraceEventKind::kSub:
      case workload::TraceEventKind::kLeaf:
        if (e.parent < node_root.size()) {
          node_root.push_back(node_root[e.parent]);
          last_touch[node_root.back()] = i;
        }
        break;
      case workload::TraceEventKind::kIntraWeak:
      case workload::TraceEventKind::kIntraStrong:
        touch(e.parent, i);
        touch(e.a, i);
        touch(e.b, i);
        break;
      case workload::TraceEventKind::kConflict:
      case workload::TraceEventKind::kWeakOutput:
      case workload::TraceEventKind::kStrongOutput:
      case workload::TraceEventKind::kWeakInput:
      case workload::TraceEventKind::kStrongInput:
        touch(e.a, i);
        touch(e.b, i);
        break;
      case workload::TraceEventKind::kCommit:
        touch(e.parent, i);
        break;
      default:
        break;
    }
  }
  std::vector<std::pair<size_t, uint64_t>> inserts;  // (after index, k)
  size_t horizon = 0;
  for (size_t k = window; k <= last_touch.size(); k += window) {
    for (size_t r = k - window; r < k; ++r) {
      horizon = std::max(horizon, last_touch[r]);
    }
    inserts.emplace_back(horizon, static_cast<uint64_t>(k));
  }
  std::vector<workload::TraceEvent> out;
  out.reserve(events.size() + inserts.size());
  size_t next = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    out.push_back(events[i]);
    while (next < inserts.size() && inserts[next].first == i) {
      workload::TraceEvent mark;
      mark.kind = workload::TraceEventKind::kCommitThrough;
      mark.a = static_cast<uint32_t>(inserts[next].second);
      out.push_back(mark);
      ++next;
    }
  }
  return out;
}

// ------------------------------------------------- watermark semantics

TEST(CommitThrough, TextAndWireRoundTrips) {
  workload::TraceEvent mark;
  mark.kind = workload::TraceEventKind::kCommitThrough;
  mark.a = 12345;

  // Trace text format.
  const std::string line = workload::FormatTraceEvent(mark);
  EXPECT_EQ(line, "commit_through 12345");
  auto parsed = workload::ParseTraceEvents("comptx-trace v1\n" + line +
                                           "\nend\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->front().kind, workload::TraceEventKind::kCommitThrough);
  EXPECT_EQ(parsed->front().a, 12345u);

  // Both wire protocols, through the real frame codec.
  for (service::WireProtocol protocol :
       {service::WireProtocol::kV1, service::WireProtocol::kV2}) {
    service::Request append;
    append.kind = service::CommandKind::kAppend;
    append.session = 7;
    append.events.push_back(mark);
    const std::string bytes = service::EncodeRequestFrame(protocol, append);
    service::FrameParser reader;
    reader.Feed(bytes.data(), bytes.size());
    service::WireFrame frame;
    auto have = reader.Next(frame);
    ASSERT_TRUE(have.ok() && *have) << static_cast<int>(protocol);
    auto decoded = service::DecodeRequestFrame(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->events.size(), 1u);
    EXPECT_EQ(decoded->events[0].kind,
              workload::TraceEventKind::kCommitThrough);
    EXPECT_EQ(decoded->events[0].a, 12345u);
  }
}

TEST(CommitThrough, EqualsExplicitCommitSequence) {
  // On random traces, a trailing commit_through K must leave the
  // certifier in the same observable state as committing the first K
  // roots explicitly: same verdict, same seal/prune counters, same
  // witness.
  for (uint64_t seed = 0; seed < 40; ++seed) {
    workload::WorkloadSpec spec;
    spec.topology.kind = workload::TopologyKind::kLayeredDag;
    spec.topology.depth = 2 + static_cast<uint32_t>(seed % 2);
    spec.topology.branches = 2;
    spec.topology.roots = 3;
    spec.topology.fanout = 2;
    spec.execution.conflict_prob = 0.3;
    const auto events = GeneratedEvents(spec, 9000 + seed);
    ASSERT_FALSE(events.empty());

    Certifier by_watermark;
    Certifier by_commits;
    std::vector<NodeId> roots;
    for (const auto& event : events) {
      (void)by_watermark.Ingest(event);
      (void)by_commits.Ingest(event);
    }
    roots = by_commits.system().Roots();
    const uint64_t k = roots.size() - 1;  // leave one root live

    workload::TraceEvent mark;
    mark.kind = workload::TraceEventKind::kCommitThrough;
    mark.a = static_cast<uint32_t>(k);
    ASSERT_TRUE(by_watermark.Ingest(mark).ok()) << "seed " << seed;
    for (uint64_t i = 0; i < k; ++i) {
      ASSERT_TRUE(by_commits.Commit(roots[i]).ok()) << "seed " << seed;
    }
    by_watermark.Prune();
    by_commits.Prune();

    EXPECT_EQ(by_watermark.Certifiable(), by_commits.Certifiable())
        << "seed " << seed;
    const CertifierStats a = by_watermark.Stats();
    const CertifierStats b = by_commits.Stats();
    EXPECT_EQ(a.sealed_roots, b.sealed_roots) << "seed " << seed;
    EXPECT_EQ(a.pruned_nodes, b.pruned_nodes) << "seed " << seed;
    EXPECT_EQ(a.live_nodes, b.live_nodes) << "seed " << seed;
    EXPECT_EQ(by_watermark.SerialWitness(), by_commits.SerialWitness())
        << "seed " << seed;
    // Only the watermark session reports a watermark; explicit commits
    // do not move it.
    EXPECT_EQ(a.commit_watermark, k) << "seed " << seed;
    EXPECT_EQ(b.commit_watermark, 0u) << "seed " << seed;
  }
}

TEST(CommitThrough, RejectsWatermarkPastCreatedRoots) {
  Certifier certifier;
  workload::TraceEvent e;
  e.kind = workload::TraceEventKind::kSchedule;
  e.name = "S";
  ASSERT_TRUE(certifier.Ingest(e).ok());
  e = {};
  e.kind = workload::TraceEventKind::kRoot;
  e.schedule = 0;
  e.name = "T";
  ASSERT_TRUE(certifier.Ingest(e).ok());

  workload::TraceEvent mark;
  mark.kind = workload::TraceEventKind::kCommitThrough;
  mark.a = 2;  // only one root exists
  EXPECT_FALSE(certifier.Ingest(mark).ok());
  EXPECT_EQ(certifier.Stats().commit_watermark, 0u);

  mark.a = 1;
  EXPECT_TRUE(certifier.Ingest(mark).ok());
  EXPECT_EQ(certifier.Stats().commit_watermark, 1u);
  EXPECT_EQ(certifier.Stats().sealed_roots, 1u);

  // Watermarks are cumulative and monotone: replaying an older (or the
  // same) one is an accepted no-op.
  mark.a = 0;
  EXPECT_TRUE(certifier.Ingest(mark).ok());
  EXPECT_EQ(certifier.Stats().commit_watermark, 1u);
  EXPECT_EQ(certifier.Stats().sealed_roots, 1u);
}

// ------------------------------------------------ batch-path equivalence

TEST(IngestBatch, MatchesSequentialIngestOnRandomTraces) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    workload::WorkloadSpec spec;
    spec.topology.kind = (seed % 2 == 0) ? workload::TopologyKind::kLayeredDag
                                         : workload::TopologyKind::kFork;
    spec.topology.depth = 2 + static_cast<uint32_t>(seed % 2);
    spec.topology.branches = 2;
    spec.topology.roots = 2 + static_cast<uint32_t>(seed % 3);
    spec.topology.fanout = 2;
    spec.execution.conflict_prob = 0.3;
    spec.execution.disorder_prob = (seed % 2 == 0) ? 0.0 : 0.3;
    auto events = GeneratedEvents(spec, 4200 + seed);
    // Watermarks in the middle of the batch exercise the deferred-prune
    // epilogue.
    events = InterleaveWatermarks(events, 2);
    const std::string repro =
        StrCat(workload::DescribeWorkloadSpec(spec), " seed=", 4200 + seed);

    Certifier sequential;
    std::vector<bool> expected_ok;
    std::vector<bool> expected_verdict;
    for (const auto& event : events) {
      expected_ok.push_back(sequential.Ingest(event).ok());
      expected_verdict.push_back(sequential.Certifiable());
    }

    // Split the same stream into batches of varying size (the seed picks
    // the split), including batches holding the whole stream.
    const size_t batch_size = 1 + (seed % 2 == 0 ? seed % 7 : events.size());
    Certifier batched;
    size_t cursor = 0;
    while (cursor < events.size()) {
      const size_t n = std::min(batch_size, events.size() - cursor);
      std::vector<workload::TraceEvent> chunk(events.begin() + cursor,
                                              events.begin() + cursor + n);
      std::vector<Status> statuses;
      const size_t rejected = batched.IngestBatch(chunk, &statuses);
      ASSERT_EQ(statuses.size(), n) << repro;
      size_t rejected_expected = 0;
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(statuses[i].ok(), !!expected_ok[cursor + i])
            << repro << " event " << cursor + i << ": "
            << statuses[i].ToString();
        if (!expected_ok[cursor + i]) ++rejected_expected;
      }
      EXPECT_EQ(rejected, rejected_expected) << repro;
      cursor += n;
    }

    EXPECT_EQ(batched.Certifiable(), expected_verdict.back()) << repro;
    const CertifierStats a = batched.Stats();
    const CertifierStats b = sequential.Stats();
    EXPECT_EQ(a.events_accepted, b.events_accepted) << repro;
    EXPECT_EQ(a.events_rejected, b.events_rejected) << repro;
    EXPECT_EQ(a.sealed_roots, b.sealed_roots) << repro;
    EXPECT_EQ(a.pruned_nodes, b.pruned_nodes) << repro;
    EXPECT_EQ(a.live_nodes, b.live_nodes) << repro;
    // The witness is *a* valid serial order of the live roots, not a
    // canonical one — batch edge flushing may break Pearce-Kelly ties
    // differently — so compare the root sets, not the sequences.
    std::vector<NodeId> wa = batched.SerialWitness();
    std::vector<NodeId> wb = sequential.SerialWitness();
    auto by_index = [](NodeId x, NodeId y) { return x.index() < y.index(); };
    std::sort(wa.begin(), wa.end(), by_index);
    std::sort(wb.begin(), wb.end(), by_index);
    EXPECT_EQ(wa, wb) << repro;
  }
}

// ---------------------------------------------------------- arena unit

TEST(MonotonicArena, ReusesCapacityAcrossResets) {
  MonotonicArena arena;
  EXPECT_EQ(arena.UsedBytes(), 0u);
  void* first = arena.Allocate(64, 8);
  ASSERT_NE(first, nullptr);
  EXPECT_GE(arena.UsedBytes(), 64u);
  const size_t capacity_after_growth = [&] {
    for (int i = 0; i < 1000; ++i) arena.Allocate(128, 8);
    return arena.CapacityBytes();
  }();
  arena.Reset();
  EXPECT_EQ(arena.UsedBytes(), 0u);
  // Reset keeps the chunks: steady-state allocation must not grow.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 1000; ++i) arena.Allocate(128, 8);
    EXPECT_EQ(arena.CapacityBytes(), capacity_after_growth)
        << "round " << round;
    arena.Reset();
  }
  arena.Release();
  EXPECT_EQ(arena.CapacityBytes(), 0u);
}

TEST(MonotonicArena, AlignsAndServesOversizedBlocks) {
  MonotonicArena arena;
  // The arena's contract tops out at new[] alignment (fresh chunk bases
  // are not over-aligned), which covers every POD the certifier stores.
  for (size_t align : {size_t{1}, size_t{2}, size_t{8},
                       alignof(std::max_align_t)}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
  }
  // Larger than any chunk the arena would grow to on its own.
  void* big = arena.Allocate(1 << 22, 16);
  ASSERT_NE(big, nullptr);
  memset(big, 0xAB, 1 << 22);

  std::vector<int, ArenaAllocator<int>> vec{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 10000; ++i) vec.push_back(i);
  EXPECT_EQ(vec[9999], 9999);
}

// ----------------------------------------------------- property sweep

/// The 500-trace sweep: pruned (safe interleaved watermarks, aggressive
/// epoch cadence) and unpruned certifier verdicts are prefix-identical
/// to each other and to the batch oracle after every accepted event.
TEST(LongSessionProperty, PrunedVerdictsPrefixIdenticalToOracle) {
  const std::vector<workload::TopologyKind> kinds = {
      workload::TopologyKind::kStack,
      workload::TopologyKind::kFork,
      workload::TopologyKind::kJoin,
      workload::TopologyKind::kLayeredDag,
  };
  size_t traces = 0;
  uint64_t pruned_nodes_total = 0;
  for (workload::TopologyKind kind : kinds) {
    for (uint64_t seed = 0; seed < 125; ++seed) {
      workload::WorkloadSpec spec;
      spec.topology.kind = kind;
      spec.topology.depth = 2 + static_cast<uint32_t>(seed % 2);
      spec.topology.branches = 2;
      spec.topology.roots = 2 + static_cast<uint32_t>(seed % 3);
      spec.topology.fanout = 2;
      spec.execution.conflict_prob = 0.3;
      spec.execution.disorder_prob = (seed % 2 == 0) ? 0.0 : 0.3;
      const uint64_t full_seed = 77000 + seed * 4 + uint64_t(kind);
      const std::string repro =
          StrCat(workload::DescribeWorkloadSpec(spec), " seed=", full_seed);

      const auto raw = GeneratedEvents(spec, full_seed);
      ASSERT_FALSE(raw.empty()) << repro;

      // Accepted subsequence via an unpruned reference session, with its
      // per-accepted-event verdicts.
      CertifierOptions unpruned_options;
      unpruned_options.auto_prune = false;
      unpruned_options.epoch_interval = 0;
      Certifier unpruned(unpruned_options);
      std::vector<workload::TraceEvent> accepted;
      std::vector<bool> unpruned_verdicts;
      for (const auto& event : raw) {
        if (!unpruned.Ingest(event).ok()) continue;
        accepted.push_back(event);
        unpruned_verdicts.push_back(unpruned.Certifiable());
      }

      auto oracle = analysis::BatchPrefixVerdicts(accepted,
                                                  BatchPrefixOptions());
      ASSERT_TRUE(oracle.ok()) << repro << ": " << oracle.status().ToString();
      ASSERT_EQ(oracle->size(), accepted.size()) << repro;
      for (size_t i = 0; i < accepted.size(); ++i) {
        ASSERT_EQ(!!unpruned_verdicts[i], !!(*oracle)[i])
            << repro << ": unpruned diverges from oracle after accepted "
            << "event " << i + 1 << " ("
            << workload::FormatTraceEvent(accepted[i]) << ")";
      }

      // Pruned session: watermark every other root, epoch cadence of one
      // event, so sealing + pruning interleave as densely as possible.
      CertifierOptions pruned_options;
      pruned_options.auto_prune = true;
      pruned_options.epoch_interval = 1;
      Certifier pruned(pruned_options);
      const auto marked = InterleaveWatermarks(accepted, 2);
      size_t accepted_index = 0;
      for (const auto& event : marked) {
        Status status = pruned.Ingest(event);
        ASSERT_TRUE(status.ok())
            << repro << ": pruned session rejected "
            << workload::FormatTraceEvent(event) << ": " << status.ToString();
        if (event.kind == workload::TraceEventKind::kCommitThrough) continue;
        ASSERT_EQ(pruned.Certifiable(), !!(*oracle)[accepted_index])
            << repro << ": pruned diverges from oracle after accepted event "
            << accepted_index + 1 << " ("
            << workload::FormatTraceEvent(event) << ")";
        ++accepted_index;
      }
      ASSERT_EQ(accepted_index, accepted.size()) << repro;
      pruned_nodes_total += pruned.Stats().pruned_nodes;
      ++traces;
    }
  }
  EXPECT_EQ(traces, 500u);
  // The sweep must actually exercise pruning, not just tolerate it.
  EXPECT_GT(pruned_nodes_total, 0u);
}

// -------------------------------------------------------------- soak

uint64_t ReadVmRssBytes() {
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "VmRSS:") {
      uint64_t kb = 0;
      in >> kb;
      return kb * 1024;
    }
    in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  }
  return 0;
}

/// Streaming-window chain: roots forever, each conflicting with (and
/// weak-output-ordered after) its predecessor's leaf, one cumulative
/// watermark per `window` roots lagging the stream by `window`.  Same
/// shape as bench_longsession (E15) and comptx_load --commit-window.
class WindowStream {
 public:
  explicit WindowStream(uint32_t window) : window_(window) {}

  void NextRoot(std::vector<workload::TraceEvent>& out) {
    using workload::TraceEvent;
    using workload::TraceEventKind;
    TraceEvent e;
    if (roots_ == 0) {
      e.kind = TraceEventKind::kSchedule;
      e.name = "S";
      out.push_back(e);
    }
    e = {};
    e.kind = TraceEventKind::kRoot;
    e.schedule = 0;
    e.name = "T" + std::to_string(roots_);
    out.push_back(e);
    const uint32_t root = next_id_++;
    e = {};
    e.kind = TraceEventKind::kLeaf;
    e.parent = root;
    e.name = "x" + std::to_string(roots_);
    out.push_back(e);
    const uint32_t leaf = next_id_++;
    if (prev_leaf_ != kInvalidIndex) {
      e = {};
      e.kind = TraceEventKind::kConflict;
      e.a = prev_leaf_;
      e.b = leaf;
      out.push_back(e);
      e.kind = TraceEventKind::kWeakOutput;
      out.push_back(e);
    }
    prev_leaf_ = leaf;
    ++roots_;
    if (roots_ % window_ == 0 && roots_ > window_) {
      e = {};
      e.kind = TraceEventKind::kCommitThrough;
      e.a = roots_ - window_;
      out.push_back(e);
    }
  }

 private:
  const uint32_t window_;
  uint64_t roots_ = 0;
  uint32_t next_id_ = 0;
  uint32_t prev_leaf_ = kInvalidIndex;
};

TEST(LongSessionSoak, MillionEventWindowStaysFlatAndAgreesWithOracle) {
  // 1M events by default; COMPTX_SOAK=1 (the nightly ASan job) runs the
  // full 10M-event version.
  const bool soak = [] {
    const char* env = std::getenv("COMPTX_SOAK");
    return env != nullptr && env[0] == '1';
  }();
  const uint64_t total_events = soak ? 10'000'000ull : 1'000'000ull;
  constexpr uint32_t kWindow = 32;   // roots per watermark
  constexpr size_t kBatch = 256;     // service drain-worker batch size
  // The live window holds kWindow roots of 2 nodes each plus up to a
  // window of not-yet-sealed successors; 6x is comfortable headroom
  // whose violation still means "live state scales with history".
  constexpr uint64_t kLiveBound = 6ull * (kWindow + 1) * 2;

  const uint64_t rss_before = ReadVmRssBytes();

  Certifier certifier;  // defaults: forgetting, auto_prune, epoch cadence
  WindowStream stream(kWindow);
  CompositeSystem mirror;  // batch-oracle mirror of accepted events
  std::vector<uint64_t> oracle_samples = {1000, 4000, 16000};
  size_t next_sample = 0;
  uint64_t ingested = 0;
  uint64_t live_high_water = 0;
  std::vector<workload::TraceEvent> chunk;
  while (ingested < total_events) {
    chunk.clear();
    while (chunk.size() < kBatch) stream.NextRoot(chunk);
    const size_t rejected = certifier.IngestBatch(chunk);
    ASSERT_EQ(rejected, 0u) << "after ~" << ingested << " events";
    // The mirror stays cheap: ApplyTraceEvent only, no per-event check.
    for (const auto& event : chunk) {
      ASSERT_TRUE(workload::ApplyTraceEvent(mirror, event).ok());
    }
    ingested += chunk.size();

    if (ingested % (64 * kBatch) < kBatch) {
      const CertifierStats stats = certifier.Stats();
      live_high_water = std::max<uint64_t>(live_high_water, stats.live_nodes);
      ASSERT_LE(stats.live_nodes, kLiveBound)
          << "live state grew past the window after " << ingested
          << " events (pruned=" << stats.pruned_nodes << ")";
      ASSERT_TRUE(certifier.Certifiable()) << "after " << ingested;
    }
    // Sampled-prefix oracle agreement, at scales where the quadratic
    // batch check is still feasible.
    if (next_sample < oracle_samples.size() &&
        ingested >= oracle_samples[next_sample]) {
      auto batch = CheckCompC(mirror, BatchPrefixOptions());
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      ASSERT_EQ(certifier.Certifiable(), batch->correct)
          << "oracle disagreement at " << ingested << " events";
      ++next_sample;
    }
  }
  ASSERT_EQ(next_sample, oracle_samples.size());

  const CertifierStats stats = certifier.Stats();
  EXPECT_TRUE(certifier.Certifiable());
  EXPECT_GT(stats.prune_passes, 0u);
  EXPECT_GT(stats.commit_watermark, 0u);
  // Nearly the whole history must have been reclaimed.
  EXPECT_GT(stats.pruned_nodes, (ingested / 4) * 2 * 9 / 10);
  EXPECT_LE(live_high_water, kLiveBound);

  // Memory high-water: the certifier's derived state is O(window); only
  // the append-only CompositeSystem (ours and the mirror's) grows with
  // the stream, at a small constant per event.  A super-linear structure
  // (or an unpruned graph) blows through this immediately.
  const uint64_t rss_after = ReadVmRssBytes();
  if (rss_before > 0 && rss_after > rss_before) {
    const uint64_t growth = rss_after - rss_before;
    EXPECT_LT(growth / total_events, 1200u)
        << "RSS grew " << growth << " bytes over " << total_events
        << " events";
  }
}

}  // namespace
}  // namespace comptx::online
