// Tests for the static configuration analyzer and spec linter
// (src/staticcheck): exact CTX codes on the documented edge cases, exact
// SAFE/UNSAFE verdicts on the theorem shapes, and — the conformance
// requirement — static SAFE/UNSAFE never contradicting the dynamic
// reduction on a large fuzzed sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/builder.h"
#include "analysis/figures.h"
#include "analysis/sweep.h"
#include "core/correctness.h"
#include "core/validate.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/scc.h"
#include "staticcheck/analyzer.h"
#include "staticcheck/lint.h"
#include "test_helpers.h"
#include "testing/events.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace comptx {
namespace {

using staticcheck::ConfigShape;
using staticcheck::SafetyVerdict;
using workload::TopologyKind;

std::vector<DiagCode> Codes(const std::vector<Diagnostic>& diags) {
  std::vector<DiagCode> codes;
  codes.reserve(diags.size());
  for (const Diagnostic& d : diags) codes.push_back(d.code);
  return codes;
}

bool HasCode(const std::vector<Diagnostic>& diags, DiagCode code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

std::string Render(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += FormatDiagnostic(d);
    out += '\n';
  }
  return out;
}

workload::WorkloadSpec MakeSpec(TopologyKind kind, uint32_t depth) {
  workload::WorkloadSpec spec;
  spec.topology.kind = kind;
  spec.topology.depth = depth;
  spec.topology.branches = 2;
  spec.topology.roots = 3;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.35;
  spec.execution.disorder_prob = 0.3;
  spec.execution.intra_weak_prob = 0.2;
  spec.execution.intra_strong_prob = 0.1;
  return spec;
}

// ------------------------------------------------------------- analyzer

TEST(AnalyzerTest, EmptySystemIsVacuouslySafe) {
  CompositeSystem cs;
  staticcheck::StaticAnalysis analysis = staticcheck::AnalyzeConfiguration(cs);
  EXPECT_EQ(analysis.verdict, SafetyVerdict::kSafe);
  EXPECT_EQ(analysis.shape, ConfigShape::kEmpty);
  EXPECT_EQ(analysis.order, 0u);
}

TEST(AnalyzerTest, SingleRootSingleLeafIsSafe) {
  analysis::CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t = b.Root(s, "T");
  b.Leaf(t, "op");
  CompositeSystem cs = std::move(b.Take());
  ASSERT_TRUE(cs.Validate().ok());
  staticcheck::StaticAnalysis analysis = staticcheck::AnalyzeConfiguration(cs);
  EXPECT_TRUE(analysis.well_formed);
  EXPECT_EQ(analysis.verdict, SafetyVerdict::kSafe) << analysis.reason;
  EXPECT_EQ(analysis.order, 1u);
}

TEST(AnalyzerTest, IllFormedSystemIsReportedNotDecided) {
  // A conflict without the weak output order Def 3.1 demands.
  testing::TwoLevelStack stack =
      testing::MakeTwoLevelStack(/*t1_first=*/true, /*top_conflict=*/false);
  ASSERT_TRUE(stack.cs.AddConflict(stack.s1, stack.s2).ok());
  staticcheck::StaticAnalysis analysis =
      staticcheck::AnalyzeConfiguration(stack.cs);
  EXPECT_FALSE(analysis.well_formed);
  EXPECT_EQ(analysis.verdict, SafetyVerdict::kNeedsDynamic);
  EXPECT_TRUE(HasErrors(analysis.diagnostics))
      << Render(analysis.diagnostics);
}

TEST(AnalyzerTest, TwoLevelStackVerdictIsExact) {
  for (bool t1_first : {true, false}) {
    testing::TwoLevelStack stack =
        testing::MakeTwoLevelStack(t1_first, /*top_conflict=*/true);
    ASSERT_TRUE(stack.cs.Validate().ok());
    staticcheck::StaticAnalysis analysis =
        staticcheck::AnalyzeConfiguration(stack.cs);
    EXPECT_EQ(analysis.shape, ConfigShape::kStack);
    const bool comp_c = IsCompC(stack.cs);
    EXPECT_EQ(analysis.verdict,
              comp_c ? SafetyVerdict::kSafe : SafetyVerdict::kUnsafe)
        << analysis.reason;
  }
}

TEST(AnalyzerTest, Figure4NeedsDynamicWithSharedSchedulerExplanations) {
  analysis::PaperFigure fig = analysis::MakeFigure4();
  staticcheck::StaticAnalysis analysis =
      staticcheck::AnalyzeConfiguration(fig.system);
  ASSERT_TRUE(analysis.well_formed) << Render(analysis.diagnostics);
  // The forgotten order of Fig 4 is exactly what no structural theorem
  // sees: the analyzer must hand this one to the reduction, and the
  // reduction accepts it.
  EXPECT_EQ(analysis.verdict, SafetyVerdict::kNeedsDynamic)
      << analysis.reason;
  EXPECT_EQ(analysis.schedules.size(), fig.system.ScheduleCount());
  const bool any_hazard = std::any_of(
      analysis.schedules.begin(), analysis.schedules.end(),
      [](const staticcheck::ScheduleExplanation& s) {
        return s.meet && s.pulled_up_cross_conflicts > 0;
      });
  EXPECT_TRUE(any_hazard);
  EXPECT_TRUE(IsCompC(fig.system));
}

TEST(AnalyzerTest, Figure3IsNeverCalledSafe) {
  analysis::PaperFigure fig = analysis::MakeFigure3();
  staticcheck::StaticAnalysis analysis =
      staticcheck::AnalyzeConfiguration(fig.system);
  ASSERT_TRUE(analysis.well_formed) << Render(analysis.diagnostics);
  EXPECT_FALSE(IsCompC(fig.system));
  EXPECT_NE(analysis.verdict, SafetyVerdict::kSafe) << analysis.reason;
}

TEST(AnalyzerTest, TheoremShapesAreDecidedExactly) {
  // On stacks, forks and joins the analyzer must always decide, and the
  // verdict must equal the theorem criterion it implements.
  const TopologyKind kinds[] = {TopologyKind::kStack, TopologyKind::kFork,
                                TopologyKind::kJoin};
  for (TopologyKind kind : kinds) {
    const workload::WorkloadSpec spec = MakeSpec(kind, 3);
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      auto cs = workload::GenerateSystem(spec, seed);
      ASSERT_TRUE(cs.ok()) << cs.status().ToString();
      staticcheck::StaticAnalysis analysis =
          staticcheck::AnalyzeConfiguration(*cs);
      ASSERT_TRUE(analysis.well_formed) << Render(analysis.diagnostics);
      ASSERT_NE(analysis.verdict, SafetyVerdict::kNeedsDynamic)
          << workload::DescribeWorkloadSpec(spec) << " seed " << seed << ": "
          << analysis.reason;
      EXPECT_EQ(analysis.verdict == SafetyVerdict::kSafe, IsCompC(*cs))
          << workload::DescribeWorkloadSpec(spec) << " seed " << seed << ": "
          << analysis.reason;
    }
  }
}

// The acceptance sweep: 1000 fuzzed traces across every topology kind;
// whenever the analyzer decides, its verdict must agree with the dynamic
// reduction — SAFE and UNSAFE are exact claims, never heuristics.
TEST(AnalyzerTest, StaticVerdictNeverContradictsDynamicOn1000Traces) {
  const TopologyKind kinds[] = {TopologyKind::kStack, TopologyKind::kFork,
                                TopologyKind::kJoin,
                                TopologyKind::kLayeredDag};
  uint32_t decided = 0;
  uint32_t total = 0;
  for (TopologyKind kind : kinds) {
    for (uint32_t depth = 2; depth <= 3; ++depth) {
      const workload::WorkloadSpec spec = MakeSpec(kind, depth);
      for (uint64_t seed = 1; seed <= 125; ++seed) {
        auto cs = workload::GenerateSystem(spec, seed);
        ASSERT_TRUE(cs.ok()) << cs.status().ToString();
        ++total;
        staticcheck::AnalyzerOptions options;
        options.assume_valid = true;  // GenerateSystem validates.
        staticcheck::StaticAnalysis analysis =
            staticcheck::AnalyzeConfiguration(*cs, options);
        if (analysis.verdict == SafetyVerdict::kNeedsDynamic) continue;
        ++decided;
        EXPECT_EQ(analysis.verdict == SafetyVerdict::kSafe, IsCompC(*cs))
            << workload::DescribeWorkloadSpec(spec) << " seed " << seed
            << ": static says "
            << staticcheck::SafetyVerdictToString(analysis.verdict)
            << " (shape " << staticcheck::ConfigShapeToString(analysis.shape)
            << "); reason: " << analysis.reason;
      }
    }
  }
  EXPECT_EQ(total, 1000u);
  // The sweep must actually exercise the fast path, not skip everything.
  EXPECT_GT(decided, total / 4) << "static analyzer decided " << decided
                                << " of " << total << " traces";
}

// --------------------------------------------------------- sweep fast path

TEST(SweepFastPathTest, ParanoidSweepMatchesPlainSweep) {
  std::vector<CompositeSystem> owned;
  for (TopologyKind kind :
       {TopologyKind::kStack, TopologyKind::kFork, TopologyKind::kJoin,
        TopologyKind::kLayeredDag}) {
    const workload::WorkloadSpec spec = MakeSpec(kind, 3);
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      auto cs = workload::GenerateSystem(spec, seed);
      ASSERT_TRUE(cs.ok()) << cs.status().ToString();
      owned.push_back(*std::move(cs));
    }
  }
  std::vector<const CompositeSystem*> systems;
  for (const CompositeSystem& cs : owned) systems.push_back(&cs);

  std::vector<analysis::SweepVerdict> plain = analysis::SweepCompC(systems);
  analysis::SweepOptions options;
  options.static_fast_path = true;
  options.paranoid = true;
  std::vector<analysis::SweepVerdict> fast =
      analysis::SweepCompC(systems, options);
  ASSERT_EQ(plain.size(), fast.size());
  size_t static_decided = 0;
  for (size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(plain[i].ok) << i << ": " << plain[i].status_message;
    ASSERT_TRUE(fast[i].ok) << i << ": " << fast[i].status_message;
    EXPECT_EQ(plain[i].comp_c, fast[i].comp_c) << "system " << i;
    EXPECT_EQ(plain[i].order, fast[i].order) << "system " << i;
    static_decided += fast[i].static_fast_path ? 1 : 0;
  }
  EXPECT_GT(static_decided, 0u);
}

TEST(SweepFastPathTest, AblationDisablesTheFastPath) {
  // Fig 4 is Comp-C only because of forgetting; under the E8 ablation the
  // analyzer's theorems do not apply, so the fast path must stand down.
  analysis::PaperFigure fig = analysis::MakeFigure4();
  std::vector<const CompositeSystem*> systems = {&fig.system};
  analysis::SweepOptions options;
  options.static_fast_path = true;
  options.reduction.forgetting = false;
  std::vector<analysis::SweepVerdict> verdicts =
      analysis::SweepCompC(systems, options);
  ASSERT_EQ(verdicts.size(), 1u);
  ASSERT_TRUE(verdicts[0].ok) << verdicts[0].status_message;
  EXPECT_FALSE(verdicts[0].static_fast_path);
  EXPECT_FALSE(verdicts[0].comp_c);  // the ablation rejects Fig 4
}

TEST(SweepFastPathTest, PrefixVerdictsMatchWithAndWithoutFastPath) {
  for (TopologyKind kind : {TopologyKind::kStack, TopologyKind::kLayeredDag}) {
    const workload::WorkloadSpec spec = MakeSpec(kind, 2);
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      auto cs = workload::GenerateSystem(spec, seed);
      ASSERT_TRUE(cs.ok()) << cs.status().ToString();
      auto events = testing::SystemToEvents(*cs);
      ASSERT_TRUE(events.ok()) << events.status().ToString();
      ReductionOptions reduction;
      reduction.keep_fronts = false;
      auto slow = analysis::BatchPrefixVerdicts(*events, reduction);
      ASSERT_TRUE(slow.ok()) << slow.status().ToString();
      analysis::SweepOptions options;
      options.reduction = reduction;
      options.static_fast_path = true;
      options.paranoid = true;  // re-check any static shortcut
      auto fast = analysis::BatchPrefixVerdicts(*events, options);
      ASSERT_TRUE(fast.ok()) << fast.status().ToString();
      EXPECT_EQ(*slow, *fast)
          << workload::DescribeWorkloadSpec(spec) << " seed " << seed;
    }
  }
}

// ------------------------------------------------------------- lint codes

TEST(LintTest, EmptySystemEmitsCTX020) {
  staticcheck::LintResult lint =
      staticcheck::LintTraceText("comptx-trace v1\nschedule S\nend\n");
  ASSERT_TRUE(lint.buildable);
  ASSERT_EQ(lint.diagnostics.size(), 1u) << Render(lint.diagnostics);
  EXPECT_EQ(lint.diagnostics[0].code, DiagCode::kEmptySystem);
  EXPECT_EQ(lint.diagnostics[0].severity, DiagSeverity::kWarning);
}

TEST(LintTest, SingleRootSingleLeafIsClean) {
  staticcheck::LintResult lint = staticcheck::LintTraceText(
      "comptx-trace v1\nschedule S\nroot 0 T\nleaf 0 op\nend\n");
  EXPECT_TRUE(lint.buildable);
  EXPECT_TRUE(lint.diagnostics.empty()) << Render(lint.diagnostics);
}

TEST(LintTest, UndeclaredConflictOperandEmitsCTX023) {
  staticcheck::LintResult lint = staticcheck::LintTraceText(
      "comptx-trace v1\nschedule S\nroot 0 T\nleaf 0 a\n"
      "conflict 1 99\nend\n");
  EXPECT_EQ(Codes(lint.diagnostics),
            std::vector<DiagCode>{DiagCode::kDanglingNodeRef})
      << Render(lint.diagnostics);
  EXPECT_EQ(lint.diagnostics[0].line, 5u);
}

TEST(LintTest, SelfConflictEmitsCTX024) {
  staticcheck::LintResult lint = staticcheck::LintTraceText(
      "comptx-trace v1\nschedule S\nroot 0 T\nleaf 0 a\n"
      "conflict 1 1\nend\n");
  EXPECT_EQ(Codes(lint.diagnostics),
            std::vector<DiagCode>{DiagCode::kSelfConflict})
      << Render(lint.diagnostics);
}

TEST(LintTest, CrossScheduleConflictEmitsCTX025) {
  staticcheck::LintResult lint = staticcheck::LintTraceText(
      "comptx-trace v1\nschedule A\nschedule B\n"
      "root 0 T1\nroot 1 T2\nleaf 0 a\nleaf 1 b\n"
      "conflict 2 3\nend\n");
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kCrossScheduleConflict))
      << Render(lint.diagnostics);
}

TEST(LintTest, DuplicateConflictEmitsCTX026) {
  staticcheck::LintResult lint = staticcheck::LintTraceText(
      "comptx-trace v1\nschedule S\nroot 0 T1\nroot 0 T2\n"
      "leaf 0 a\nleaf 1 b\n"
      "conflict 2 3\nweak_out 2 3\nconflict 3 2\nend\n");
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kDuplicateConflict))
      << Render(lint.diagnostics);
  // A duplicate is a warning, not an error: the spec stays buildable.
  EXPECT_TRUE(lint.buildable);
  EXPECT_FALSE(HasErrors(lint.diagnostics)) << Render(lint.diagnostics);
}

TEST(LintTest, DeepInvocationCycleEmitsCTX001) {
  staticcheck::LintResult lint = staticcheck::LintTraceText(
      "comptx-trace v1\nschedule A\nschedule B\nschedule C\n"
      "root 0 R\nsub 0 1 X\nsub 1 2 Y\nsub 2 1 Z\nend\n");
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kRecursion))
      << Render(lint.diagnostics);
}

TEST(LintTest, DirectSelfInvocationEmitsCTX001) {
  staticcheck::LintResult lint = staticcheck::LintTraceText(
      "comptx-trace v1\nschedule A\nroot 0 R\nsub 0 0 X\nend\n");
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kRecursion))
      << Render(lint.diagnostics);
  EXPECT_FALSE(lint.buildable);
}

TEST(LintTest, OneScanReportsEveryViolation) {
  // One pass: a dangling schedule ref, a self conflict and a malformed
  // record must all be reported, not just the first.
  staticcheck::LintResult lint = staticcheck::LintTraceText(
      "comptx-trace v1\nschedule S\nroot 7 T\nroot 0 U\nleaf 0 a\n"
      "conflict 1 1\nbogus record\nend\n");
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kDanglingScheduleRef))
      << Render(lint.diagnostics);
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kSelfConflict))
      << Render(lint.diagnostics);
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kMalformedSpec))
      << Render(lint.diagnostics);
}

TEST(LintTest, MissingHeaderAndMissingEndEmitCTX050) {
  staticcheck::LintResult no_header =
      staticcheck::LintTraceText("schedule S\nend\n");
  EXPECT_TRUE(HasCode(no_header.diagnostics, DiagCode::kMalformedSpec));
  EXPECT_FALSE(no_header.buildable);
  staticcheck::LintResult no_end =
      staticcheck::LintTraceText("comptx-trace v1\nschedule S\n");
  EXPECT_TRUE(HasCode(no_end.diagnostics, DiagCode::kMalformedSpec));
}

TEST(LintTest, WitnessWithDanglingSchedulerEmitsCTX022) {
  const std::string json =
      "{\"id\": \"t\", \"injected\": \"none\", \"trace\": ["
      "\"schedule S\", \"root 0 T1\", \"root 5 T2\", \"leaf 0 a\"]}";
  staticcheck::LintResult lint = staticcheck::LintWitnessJson(json);
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kDanglingScheduleRef))
      << Render(lint.diagnostics);
}

TEST(LintTest, CommuteContradictionEmitsCTX027AndCTX028) {
  const std::string json =
      "{\"id\": \"t\", \"injected\": \"none\", "
      "\"commuting\": [\"2 3\", \"2 2\", \"2 99\", \"nonsense\"], "
      "\"trace\": [\"schedule S\", \"root 0 T1\", \"root 0 T2\", "
      "\"leaf 0 a\", \"leaf 1 b\", \"conflict 2 3\", \"weak_out 2 3\"]}";
  staticcheck::LintResult lint = staticcheck::LintWitnessJson(json);
  ASSERT_TRUE(lint.buildable);
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kCommuteContradictsConflict))
      << Render(lint.diagnostics);
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kSelfCommute))
      << Render(lint.diagnostics);
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kDanglingNodeRef))
      << Render(lint.diagnostics);
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kMalformedSpec))
      << Render(lint.diagnostics);
}

TEST(LintTest, UnparsableWitnessJsonEmitsCTX050) {
  staticcheck::LintResult lint =
      staticcheck::LintWitnessJson("definitely not json");
  ASSERT_EQ(lint.diagnostics.size(), 1u);
  EXPECT_EQ(lint.diagnostics[0].code, DiagCode::kMalformedSpec);
  EXPECT_FALSE(lint.buildable);
}

TEST(LintTest, SharedSchedulerHazardIsANoteNotAnError) {
  analysis::PaperFigure fig = analysis::MakeFigure4();
  auto events = testing::SystemToEvents(fig.system);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  staticcheck::LintResult lint = staticcheck::LintTraceEvents(*events);
  EXPECT_FALSE(HasErrors(lint.diagnostics)) << Render(lint.diagnostics);
  EXPECT_TRUE(HasCode(lint.diagnostics, DiagCode::kForgottenOrderHazard))
      << Render(lint.diagnostics);
}

TEST(LintTest, WorkloadSpecParameterLint) {
  workload::WorkloadSpec spec = MakeSpec(TopologyKind::kStack, 3);
  EXPECT_TRUE(staticcheck::LintWorkloadSpec(spec).empty());

  spec.execution.conflict_prob = 1.5;
  spec.topology.roots = 0;
  std::vector<Diagnostic> diags = staticcheck::LintWorkloadSpec(spec);
  EXPECT_TRUE(HasCode(diags, DiagCode::kProbabilityOutOfRange))
      << Render(diags);
  EXPECT_TRUE(HasCode(diags, DiagCode::kDegenerateWorkload)) << Render(diags);

  workload::WorkloadSpec contradictory = MakeSpec(TopologyKind::kStack, 3);
  contradictory.execution.order_preserving_outputs = true;
  contradictory.execution.disorder_prob = 0.5;
  EXPECT_TRUE(HasCode(staticcheck::LintWorkloadSpec(contradictory),
                      DiagCode::kIncompatibleSpec));
}

TEST(LintTest, ModelDiagnosticsCollectEveryViolation) {
  // Two independent unordered-conflict violations: the collector must
  // return both (Validate() historically stopped at the first).
  analysis::CompositeSystemBuilder b;
  ScheduleId s = b.Schedule("S");
  NodeId t1 = b.Root(s, "T1");
  NodeId t2 = b.Root(s, "T2");
  NodeId a = b.Leaf(t1, "a");
  NodeId bb = b.Leaf(t2, "b");
  NodeId c = b.Leaf(t1, "c");
  NodeId d = b.Leaf(t2, "d");
  b.Conflict(a, bb);  // no weak_out: Def 3.1c violated
  b.Conflict(c, d);   // no weak_out: violated again
  CompositeSystem cs = std::move(b.Take());
  std::vector<Diagnostic> diags = CollectModelDiagnostics(cs);
  size_t unordered = 0;
  for (const Diagnostic& diag : diags) {
    unordered += diag.code == DiagCode::kConflictUnordered ? 1 : 0;
  }
  EXPECT_EQ(unordered, 2u) << Render(diags);
  EXPECT_FALSE(cs.Validate().ok());
}

TEST(LintTest, DiagnosticRenderingIsStable) {
  EXPECT_EQ(DiagCodeName(DiagCode::kConflictUnordered), "CTX009");
  EXPECT_EQ(DiagCodeName(DiagCode::kEmptySystem), "CTX020");
  EXPECT_EQ(DiagCodeName(DiagCode::kInternalError), "CTX099");
  Diagnostic d;
  d.severity = DiagSeverity::kError;
  d.code = DiagCode::kSelfConflict;
  d.location = "conflict";
  d.line = 7;
  d.message = "operation 2 is declared to conflict with itself";
  d.fix = "remove the pair";
  const std::string text = FormatDiagnostic(d);
  EXPECT_NE(text.find("error[CTX024]"), std::string::npos) << text;
  EXPECT_NE(text.find("line 7"), std::string::npos) << text;
  EXPECT_NE(text.find("fix: remove the pair"), std::string::npos) << text;
}

}  // namespace
}  // namespace comptx
