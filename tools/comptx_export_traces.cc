// Exports the paper's worked examples (Figures 1-4) as comptx trace
// files.  The committed copies live in examples/traces/ and double as the
// clean inputs for the CI lint job; re-run this tool after changing the
// figure factories and commit the result.
//
// Usage: comptx_export_traces [output-dir]   (default: examples/traces)

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/figures.h"
#include "util/version.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using comptx::analysis::PaperFigure;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "--version") {
      comptx::PrintToolVersion("comptx_export_traces");
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: comptx_export_traces [output-dir]   "
                   "(default: examples/traces)\n";
      return 0;
    }
  }
  const std::string dir = argc > 1 ? argv[1] : "examples/traces";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::cerr << "cannot create " << dir << ": " << ec.message() << "\n";
    return 1;
  }
  std::vector<std::pair<std::string, PaperFigure>> figures;
  figures.emplace_back("figure1", comptx::analysis::MakeFigure1());
  figures.emplace_back("figure2", comptx::analysis::MakeFigure2());
  figures.emplace_back("figure3", comptx::analysis::MakeFigure3());
  figures.emplace_back("figure4", comptx::analysis::MakeFigure4());
  for (const auto& [name, figure] : figures) {
    auto text = comptx::workload::SaveTrace(figure.system);
    if (!text.ok()) {
      std::cerr << name << ": " << text.status().ToString() << "\n";
      return 1;
    }
    const std::string path = dir + "/" + name + ".trace";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    out << *text;
    std::cout << path << ": " << figure.title << "\n";
  }
  return 0;
}
