// YCSB-style load driver for comptx_serve: many client threads stream
// generated execution traces into many concurrent certification sessions,
// with Zipf-skewed session choice (hot sessions see most of the traffic,
// like hot keys in a key-value benchmark), then query every verdict and
// check it against an offline single-threaded batch replay of the same
// events.  Exit status 1 on any verdict mismatch makes this the CI smoke
// gate for the service.
//
// Usage: comptx_load [--host H] [--port N] [--unix PATH]
//                    [--sessions N] [--threads N] [--events N] [--batch N]
//                    [--processes N] [--protocol v1|v2] [--theta Z]
//                    [--adt none|counter|set|queue|escrow|mixed]
//                    [--adt-instances N]
//                    [--seed N] [--commit-window N]
//                    [--rate EVENTS_PER_SEC | --rates R1,R2,...]
//                    [--no-verify] [--json PATH] [--shutdown]
//                    [--kill-pid P --kill-after N --state PATH]
//                    [--resume --state PATH]
//
//   --processes N forks N worker processes, each running the configured
//   sessions x threads against its share of the event budget with a
//   distinct seed — a multi-process client mix, the closest a single
//   driver gets to N independent tenants.  Each child streams its result
//   (including full latency histogram buckets) back over a pipe; the
//   parent merges the buckets exactly, so the reported percentiles are
//   those of the union, not an average of per-child percentiles.
//
//   --commit-window N interleaves commit_through watermark events into
//   every generated stream: after each N roots, a cumulative watermark
//   sealing them is inserted at the earliest point where no later event
//   still references their subtrees.  This is how a long-lived client
//   drives the server's epoch pruning (the sealed window becomes
//   reclaimable), and what keeps the per-session live_nodes gauge flat
//   under sustained load.
//
//   --events is the total event budget across all sessions.  The default
//   loop is closed (each thread appends as fast as the server admits —
//   backpressure is the pacing); --rate switches to an open loop that
//   schedules batch send times on a global ticket clock, and latency is
//   measured from the *intended* send time, so a stalled server inflates
//   the recorded tail instead of silently pausing the arrival process
//   (no coordinated omission).  --rates runs a latency-under-throughput
//   sweep: the event budget is split across the listed rates and each
//   point reports its own latency row.  --protocol picks the wire
//   framing: v1 is the textual protocol, v2 the binary one whose batched
//   APPENDs travel as one BATCH_APPEND frame.  --shutdown sends SHUTDOWN
//   after the run, so the CI job can assert the daemon exits 0.
//
//   Crash-drill mode (exercises the durability subsystem, DESIGN.md §11):
//   --kill-pid/--kill-after SIGKILLs the given server pid once N events
//   have been acked, then writes the per-session acked cursors (plus the
//   protocol and batch size, so the replay uses identical framing) to
//   --state and exits 0.  After the server restarts on the same
//   --data-dir, --resume --state re-dials, checks that no acked event was
//   lost, regenerates the deterministic streams, appends the unsent
//   suffix of each, and verifies every final verdict against the offline
//   batch replay of the *full* stream — the end-to-end proof that
//   certify-then-crash-then-recover equals certify-without-the-crash.
//
// Exit codes: 0 = all verdicts match (or kill fired and state written),
//             1 = mismatch or acked-event loss, 2 = usage/connect.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/correctness.h"
#include "service/client.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/version.h"
#include "util/zipf.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT
using Clock = std::chrono::steady_clock;

int Usage(int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: comptx_load [--host H] [--port N] [--unix PATH]\n"
         "                   [--sessions N] [--threads N] [--events N]\n"
         "                   [--batch N] [--processes N]\n"
         "                   [--protocol v1|v2] [--theta Z]\n"
         "                   [--adt none|counter|set|queue|escrow|mixed]\n"
         "                   [--adt-instances N]\n"
         "                   [--commit-window N]\n"
         "                   [--rate N | --rates R1,R2,...] [--seed N]\n"
         "                   [--no-verify] [--json PATH] [--shutdown]\n"
         "                   [--kill-pid P --kill-after N --state PATH]\n"
         "                   [--resume --state PATH]\n"
         "\n"
         "Streams generated traces into concurrent certification sessions\n"
         "(Zipf-skewed choice, closed loop unless --rate) and verifies\n"
         "every server verdict against an offline batch replay.\n"
         "--adt tags the generated leaf operations with a builtin\n"
         "commutativity spec (shipped in-stream), so the server's\n"
         "semantic layer erases the commuting conflicts;\n"
         "--adt-instances spreads the tags over N ADT instances.\n"
         "--protocol picks the wire framing (v1 textual, v2 binary with\n"
         "BATCH_APPEND).  --rate runs an open loop with coordinated-\n"
         "omission-safe latency (measured from intended send times);\n"
         "--rates sweeps several rates and prints one latency row each.\n"
         "--kill-pid/--kill-after SIGKILLs the server mid-load and saves\n"
         "acked cursors plus framing settings to --state; --resume picks\n"
         "the run back up after a restart with identical framing and\n"
         "checks recovery lost nothing.\n";
  return code;
}

struct LoadOptions {
  service::Endpoint endpoint;
  size_t sessions = 64;
  size_t threads = 8;
  size_t total_events = 20000;
  size_t batch = 32;
  size_t processes = 1;  // >1 forks worker processes (aggregated results)
  service::WireProtocol protocol = service::WireProtocol::kV1;
  double theta = 0.8;
  size_t commit_window = 0;   // roots per commit_through watermark; 0 = none
  double rate = 0;            // open-loop aggregate events/sec; 0 = closed
  std::vector<double> rates;  // latency-under-throughput sweep points
  // ADT operation mix of the generated streams: kNone is the bit-level
  // workload; anything else ships a builtin spec plus tags so the
  // server's semantic layer has conflicts to erase.
  workload::AdtMix adt = workload::AdtMix::kNone;
  uint32_t adt_instances = 4;
  uint64_t seed = 20260806;
  bool verify = true;
  bool send_shutdown = false;
  std::string json_path;
  // Crash-drill mode.
  pid_t kill_pid = 0;
  size_t kill_after = 0;  // fire SIGKILL once this many events are acked
  bool resume = false;
  std::string state_path;
};

/// The per-session workload: a generated execution's event stream,
/// truncated to the session's share of the event budget (a prefix of a
/// valid execution is a valid stream — exactly what a live client is
/// mid-way through).  The mutex serializes appends so the stream reaches
/// the server in order even when Zipf sends two threads to one session.
struct SessionWork {
  uint64_t id = 0;  // server-assigned
  std::vector<workload::TraceEvent> events;
  std::mutex mu;
  size_t cursor = 0;  // next event to append, under mu
  size_t acked = 0;   // events the server acknowledged, under mu
  service::SessionVerdict verdict;  // filled by the query phase
};

/// One measured run: throughput plus the latency distributions.
struct LoadResult {
  size_t events = 0;
  double seconds = 0;
  double throughput = 0;
  service::LatencyHistogram::Snapshot append;
  service::LatencyHistogram::Snapshot verdict;
  size_t mismatches = 0;
};

/// Interleaves cumulative commit_through watermarks: after every `window`
/// roots, a watermark sealing them is inserted at the earliest position
/// where no later event references their subtrees (sealing any earlier
/// would make the certifier reject those events, diverging from the
/// offline replay).  SaveTrace batches relation events after creations,
/// so the safe positions trail the root creations — which is fine: the
/// watermarks still seal every covered root, so pruning fires.
std::vector<workload::TraceEvent> InterleaveWatermarks(
    std::vector<workload::TraceEvent> events, size_t window) {
  if (window == 0) return events;
  // Node ids are assigned in creation order, so a running counter maps
  // each creation event to its NodeId and each node to its root ordinal.
  std::vector<size_t> node_root;   // node index -> root ordinal
  std::vector<size_t> last_touch;  // root ordinal -> last event index
  auto touch = [&](uint32_t node, size_t i) {
    if (node < node_root.size()) last_touch[node_root[node]] = i;
  };
  for (size_t i = 0; i < events.size(); ++i) {
    const workload::TraceEvent& e = events[i];
    switch (e.kind) {
      case workload::TraceEventKind::kRoot:
        node_root.push_back(last_touch.size());
        last_touch.push_back(i);
        break;
      case workload::TraceEventKind::kSub:
      case workload::TraceEventKind::kLeaf:
        if (e.parent < node_root.size()) {
          node_root.push_back(node_root[e.parent]);
          last_touch[node_root.back()] = i;
        }
        break;
      case workload::TraceEventKind::kIntraWeak:
      case workload::TraceEventKind::kIntraStrong:
        touch(e.parent, i);
        touch(e.a, i);
        touch(e.b, i);
        break;
      case workload::TraceEventKind::kConflict:
      case workload::TraceEventKind::kWeakOutput:
      case workload::TraceEventKind::kStrongOutput:
      case workload::TraceEventKind::kWeakInput:
      case workload::TraceEventKind::kStrongInput:
        touch(e.a, i);
        touch(e.b, i);
        break;
      case workload::TraceEventKind::kCommit:
        touch(e.parent, i);
        break;
      default:
        break;
    }
  }
  // A watermark covering the first k roots may go after the last event
  // touching any of them (prefix max of last_touch).
  std::vector<std::pair<size_t, uint64_t>> inserts;  // (after index, k)
  size_t horizon = 0;
  for (size_t k = window; k <= last_touch.size(); k += window) {
    for (size_t r = k - window; r < k; ++r) {
      horizon = std::max(horizon, last_touch[r]);
    }
    inserts.emplace_back(horizon, static_cast<uint64_t>(k));
  }
  std::vector<workload::TraceEvent> out;
  out.reserve(events.size() + inserts.size());
  size_t next = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    out.push_back(events[i]);
    while (next < inserts.size() && inserts[next].first == i) {
      workload::TraceEvent mark;
      mark.kind = workload::TraceEventKind::kCommitThrough;
      mark.a = static_cast<uint32_t>(inserts[next].second);
      out.push_back(mark);
      ++next;
    }
  }
  return out;
}

std::vector<workload::TraceEvent> GenerateSessionEvents(
    size_t quota, uint64_t seed, size_t commit_window, workload::AdtMix adt,
    uint32_t adt_instances) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.15;
  spec.execution.intra_weak_prob = 0.2;
  spec.execution.adt = adt;
  spec.execution.adt_instances = adt_instances;
  // Event count is a property of the generated execution, not a knob:
  // grow the root count until the stream covers the quota, then cut.
  uint32_t roots = 2;
  for (;;) {
    spec.topology.roots = roots;
    auto cs = workload::GenerateSystem(spec, seed);
    COMPTX_CHECK(cs.ok()) << cs.status().ToString();
    auto text = workload::SaveTrace(*cs);
    COMPTX_CHECK(text.ok()) << text.status().ToString();
    auto events = workload::ParseTraceEvents(*text);
    COMPTX_CHECK(events.ok()) << events.status().ToString();
    if (events->size() >= quota || roots >= 4096) {
      if (events->size() > quota) events->resize(quota);
      // Watermarks go in after the quota cut so they only cover roots
      // whose events all made it into the stream.
      return InterleaveWatermarks(std::move(events).value(), commit_window);
    }
    roots *= 2;
  }
}

/// Offline ground truth: batch-replay the exact events the session got and
/// run the batch Comp-C check (validation off — a truncated stream is a
/// legitimate prefix, same as the online certifier sees it).
bool OfflineVerdict(const std::vector<workload::TraceEvent>& events,
                    uint64_t& accepted) {
  CompositeSystem cs;
  accepted = 0;
  for (const auto& event : events) {
    // Mirror the certifier's contract: an event the system rejects is
    // skipped, not fatal (the server counts it as rejected).
    if (workload::ApplyTraceEvent(cs, event).ok()) ++accepted;
  }
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  auto result = CheckCompC(cs, options);
  COMPTX_CHECK(result.ok()) << result.status().ToString();
  return result->correct;
}

/// Crash-drill state: everything --resume needs to regenerate the
/// deterministic per-session streams and pick the run back up with
/// identical framing.  Sessions are listed in generation order, so
/// stream i regenerates from seed + i with the stored quota.
struct DrillSession {
  uint64_t id = 0;     // server-assigned session id
  size_t planned = 0;  // full stream length
  size_t acked = 0;    // events acked before the kill (lower bound)
};

struct DrillState {
  uint64_t seed = 0;
  size_t quota = 0;
  size_t commit_window = 0;
  service::WireProtocol protocol = service::WireProtocol::kV1;
  size_t batch = 32;
  workload::AdtMix adt = workload::AdtMix::kNone;
  uint32_t adt_instances = 4;
  std::vector<DrillSession> sessions;
};

bool WriteDrillState(const std::string& path, const DrillState& state) {
  std::ofstream out(path);
  out << "comptx-load-state v2\n"
      << "seed " << state.seed << "\n"
      << "quota " << state.quota << "\n"
      << "protocol " << service::WireProtocolToString(state.protocol) << "\n"
      << "batch " << state.batch << "\n";
  if (state.commit_window != 0) {
    out << "commit_window " << state.commit_window << "\n";
  }
  if (state.adt != workload::AdtMix::kNone) {
    out << "adt " << workload::AdtMixToString(state.adt) << " "
        << state.adt_instances << "\n";
  }
  for (const DrillSession& s : state.sessions) {
    out << "session " << s.id << " " << s.planned << " " << s.acked << "\n";
  }
  return static_cast<bool>(out);
}

/// Accepts both state versions: v1 files (pre-protocol) leave the framing
/// fields at the caller's command-line values; v2 files override them so
/// the resume leg replays with exactly the framing the drill used.
bool ReadDrillState(const std::string& path, DrillState* state) {
  std::ifstream in(path);
  std::string header;
  if (!std::getline(in, header) || (header != "comptx-load-state v1" &&
                                    header != "comptx-load-state v2")) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "seed") {
      fields >> state->seed;
    } else if (key == "quota") {
      fields >> state->quota;
    } else if (key == "commit_window") {
      fields >> state->commit_window;
    } else if (key == "adt") {
      std::string name;
      fields >> name >> state->adt_instances;
      auto mix = workload::ParseAdtMix(name);
      if (!mix.ok() || state->adt_instances == 0) return false;
      state->adt = *mix;
    } else if (key == "protocol") {
      std::string name;
      fields >> name;
      auto protocol = service::ParseWireProtocol(name);
      if (!protocol.ok()) return false;
      state->protocol = *protocol;
    } else if (key == "batch") {
      fields >> state->batch;
      if (state->batch == 0) return false;
    } else if (key == "session") {
      DrillSession s;
      fields >> s.id >> s.planned >> s.acked;
      if (fields.fail()) return false;
      state->sessions.push_back(s);
    } else if (!key.empty()) {
      return false;
    }
    if (fields.fail()) return false;
  }
  return !state->sessions.empty();
}

/// The --resume leg of the crash drill: for every session in the state
/// file, ask the restarted server how far the recovered stream reaches,
/// prove no acked event was lost, append the unsent suffix and verify the
/// final verdict against an offline replay of the full stream.
int RunResume(const LoadOptions& opt) {
  DrillState state;
  state.protocol = opt.protocol;
  state.batch = opt.batch;
  state.adt = opt.adt;
  state.adt_instances = opt.adt_instances;
  if (!ReadDrillState(opt.state_path, &state)) {
    std::cerr << "cannot read drill state " << opt.state_path << "\n";
    return 2;
  }
  auto control = service::ServiceClient::Dial(opt.endpoint, state.protocol);
  if (!control.ok()) {
    std::cerr << "cannot connect to " << opt.endpoint.ToString() << ": "
              << control.status() << "\n";
    return 2;
  }
  size_t mismatches = 0;
  size_t resumed_events = 0;
  for (size_t i = 0; i < state.sessions.size(); ++i) {
    const DrillSession& s = state.sessions[i];
    const auto events =
        GenerateSessionEvents(state.quota, state.seed + i, state.commit_window,
                              state.adt, state.adt_instances);
    if (events.size() != s.planned) {
      std::cerr << "session " << s.id << ": regenerated stream has "
                << events.size() << " events, state says " << s.planned
                << " (seed/quota mismatch?)\n";
      return 2;
    }
    // The recovered position: every durably logged event was re-ingested
    // during recovery, so accepted+rejected is the stream cursor.  It may
    // exceed `acked` (a logged-but-unacked tail is legal) but may never
    // fall short — an acked event is a durable promise.
    auto verdict = control->Query(s.id);
    if (!verdict.ok()) {
      std::cerr << "LOST SESSION " << s.id
                << ": QUERY after restart failed: " << verdict.status()
                << "\n";
      ++mismatches;
      continue;
    }
    const uint64_t recovered =
        verdict->events_accepted + verdict->events_rejected;
    if (recovered < s.acked) {
      std::cerr << "ACKED LOSS session " << s.id << ": " << s.acked
                << " events were acked but only " << recovered
                << " survived recovery\n";
      ++mismatches;
      continue;
    }
    if (recovered > events.size()) {
      std::cerr << "session " << s.id << ": recovered " << recovered
                << " events, more than the " << events.size()
                << " the stream holds\n";
      ++mismatches;
      continue;
    }
    resumed_events += recovered;
    // Stream the unsent suffix, then close and compare against offline
    // ground truth for the whole stream.
    for (size_t cursor = recovered; cursor < events.size();) {
      const size_t n = std::min(state.batch, events.size() - cursor);
      std::vector<workload::TraceEvent> batch(
          events.begin() + cursor, events.begin() + cursor + n);
      auto queued = control->Append(s.id, batch);
      if (!queued.ok()) {
        std::cerr << "APPEND failed on session " << s.id << ": "
                  << queued.status() << "\n";
        return 2;
      }
      cursor += n;
    }
    auto final = control->Close(s.id);
    if (!final.ok()) {
      std::cerr << "CLOSE failed on session " << s.id << ": "
                << final.status() << "\n";
      return 2;
    }
    uint64_t accepted = 0;
    const bool expected = OfflineVerdict(events, accepted);
    if (expected != final->certifiable ||
        accepted != final->events_accepted) {
      ++mismatches;
      std::cerr << "MISMATCH session " << s.id << ": offline says "
                << (expected ? "certifiable" : "not certifiable") << " ("
                << accepted << " accepted), server says "
                << (final->certifiable ? "certifiable" : "not certifiable")
                << " (" << final->events_accepted << " accepted)\n";
    }
  }
  if (opt.send_shutdown) {
    Status status = control->Shutdown();
    if (!status.ok()) {
      std::cerr << "SHUTDOWN failed: " << status << "\n";
      return 2;
    }
  }
  std::cout << "resumed " << state.sessions.size() << " session(s) over "
            << service::WireProtocolToString(state.protocol) << ", "
            << resumed_events << " event(s) survived recovery, mismatches="
            << mismatches << "\n";
  return mismatches == 0 ? 0 : 1;
}

/// One full load-verify cycle at `rate` (0 = closed loop): opens fresh
/// sessions, streams every planned event, queries and closes each
/// session, and (when opt.verify) replays offline.  Returns the exit
/// code; fills `result` on success.  In kill mode the run stops at the
/// SIGKILL and the caller writes the drill state from `work`.
int RunLoad(const LoadOptions& opt, double rate,
            std::vector<std::unique_ptr<SessionWork>>& work,
            LoadResult* result) {
  size_t planned_events = 0;
  for (auto& w : work) planned_events += w->events.size();

  // Open every session up front on a control connection.
  auto control = service::ServiceClient::Dial(opt.endpoint, opt.protocol);
  if (!control.ok()) {
    std::cerr << "cannot connect to " << opt.endpoint.ToString() << ": "
              << control.status() << "\n";
    return 2;
  }
  for (auto& w : work) {
    auto id = control->Open();
    if (!id.ok()) {
      std::cerr << "OPEN failed: " << id.status() << "\n";
      return 2;
    }
    w->id = *id;
  }

  const bool kill_mode = opt.kill_pid != 0;

  // Load phase: every thread owns a connection, picks sessions through a
  // Zipf draw, and appends the chosen session's next batch.  A thread
  // landing on a finished session scans forward for a live one, so the
  // run ends exactly when every stream is fully appended.
  //
  // Open loop (rate > 0): batch k's send time is scheduled on a global
  // ticket clock at start + k*batch/rate, threads sleep until their
  // claimed tick, and latency runs from the intended time — a server
  // that falls behind shows up as tail latency, not as a quietly slowed
  // arrival process (coordinated omission).
  service::LatencyHistogram append_hist;
  std::atomic<size_t> remaining{planned_events};
  std::atomic<size_t> ticket{0};
  std::atomic<bool> failed{false};
  std::atomic<size_t> acked_total{0};
  std::atomic<bool> kill_fired{false};
  const ZipfGenerator zipf(opt.sessions, opt.theta);
  const Clock::time_point load_start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(opt.threads);
  for (size_t t = 0; t < opt.threads; ++t) {
    threads.emplace_back([&, t] {
      auto client = service::ServiceClient::Dial(opt.endpoint, opt.protocol);
      if (!client.ok()) {
        std::cerr << "thread " << t << " cannot connect: " << client.status()
                  << "\n";
        failed.store(true);
        return;
      }
      Rng rng(opt.seed ^ (0x9e3779b97f4a7c15ull * (t + 1)));
      while (remaining.load(std::memory_order_relaxed) > 0 && !failed.load() &&
             !kill_fired.load(std::memory_order_relaxed)) {
        Clock::time_point intended = Clock::now();
        if (rate > 0) {
          const size_t k = ticket.fetch_add(1, std::memory_order_relaxed);
          intended = load_start + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(
                                          double(k) * double(opt.batch) / rate));
          std::this_thread::sleep_until(intended);
        }
        const size_t start = static_cast<size_t>(zipf.Sample(rng));
        for (size_t probe = 0; probe < opt.sessions; ++probe) {
          SessionWork& w = *work[(start + probe) % opt.sessions];
          std::unique_lock<std::mutex> lock(w.mu);
          if (w.cursor >= w.events.size()) continue;
          const size_t n = std::min(opt.batch, w.events.size() - w.cursor);
          std::vector<workload::TraceEvent> batch(
              w.events.begin() + w.cursor, w.events.begin() + w.cursor + n);
          w.cursor += n;
          auto queued = client->Append(w.id, batch);
          if (!queued.ok()) {
            lock.unlock();
            // After the kill fires, in-flight appends die with the
            // connection — that is the drill working, not a failure.
            if (kill_fired.load()) return;
            std::cerr << "APPEND failed on session " << w.id << ": "
                      << queued.status() << "\n";
            failed.store(true);
            return;
          }
          // Acked while the session lock is still held, so the cursor
          // recorded in the drill state is exactly the acked prefix.
          w.acked = w.cursor;
          lock.unlock();
          append_hist.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - intended)
                  .count()));
          const size_t total =
              acked_total.fetch_add(n, std::memory_order_relaxed) + n;
          if (kill_mode && total >= opt.kill_after &&
              !kill_fired.exchange(true)) {
            ::kill(opt.kill_pid, SIGKILL);
          }
          remaining.fetch_sub(n, std::memory_order_relaxed);
          break;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double load_seconds =
      std::chrono::duration<double>(Clock::now() - load_start).count();
  if (failed.load()) return 2;

  if (kill_mode) {
    // The event budget can drain before the threshold is reached; the
    // drill still wants a dead server and a state file to resume from.
    if (!kill_fired.exchange(true)) ::kill(opt.kill_pid, SIGKILL);
    DrillState state;
    state.seed = opt.seed;
    state.quota = std::max<size_t>(1, opt.total_events / opt.sessions);
    state.commit_window = opt.commit_window;
    state.protocol = opt.protocol;
    state.batch = opt.batch;
    state.adt = opt.adt;
    state.adt_instances = opt.adt_instances;
    for (auto& w : work) {
      state.sessions.push_back(DrillSession{w->id, w->events.size(), w->acked});
    }
    if (!WriteDrillState(opt.state_path, state)) {
      std::cerr << "cannot write " << opt.state_path << "\n";
      return 2;
    }
    std::cout << "killed pid " << opt.kill_pid << " after "
              << acked_total.load() << " acked event(s); state in "
              << opt.state_path << "\n";
    return 0;
  }

  // Verdict phase: QUERY is the drain barrier — its latency includes
  // waiting for the session's queue to empty — then CLOSE frees the slot.
  service::LatencyHistogram verdict_hist;
  for (auto& w : work) {
    const Clock::time_point rpc_start = Clock::now();
    auto verdict = control->Query(w->id);
    verdict_hist.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              rpc_start)
            .count()));
    if (!verdict.ok()) {
      std::cerr << "QUERY failed on session " << w->id << ": "
                << verdict.status() << "\n";
      return 2;
    }
    w->verdict = *verdict;
    auto closed = control->Close(w->id);
    if (!closed.ok()) {
      std::cerr << "CLOSE failed on session " << w->id << ": "
                << closed.status() << "\n";
      return 2;
    }
    if (closed->certifiable != verdict->certifiable) {
      std::cerr << "session " << w->id
                << ": CLOSE verdict disagrees with QUERY\n";
      return 1;
    }
  }

  // Verify: replay each session's stream single-threaded through the
  // batch checker and demand verdict agreement.
  size_t mismatches = 0;
  if (opt.verify) {
    for (auto& w : work) {
      uint64_t accepted = 0;
      const bool expected = OfflineVerdict(w->events, accepted);
      if (expected != w->verdict.certifiable ||
          accepted != w->verdict.events_accepted) {
        ++mismatches;
        std::cerr << "MISMATCH session " << w->id << ": offline says "
                  << (expected ? "certifiable" : "not certifiable") << " ("
                  << accepted << " accepted), server says "
                  << (w->verdict.certifiable ? "certifiable"
                                             : "not certifiable")
                  << " (" << w->verdict.events_accepted << " accepted)\n";
      }
    }
  }

  result->events = planned_events;
  result->seconds = load_seconds;
  result->throughput =
      load_seconds > 0 ? double(planned_events) / load_seconds : 0;
  result->append = append_hist.Snap();
  result->verdict = verdict_hist.Snap();
  result->mismatches = mismatches;
  return mismatches == 0 ? 0 : 1;
}

std::vector<std::unique_ptr<SessionWork>> GenerateWork(
    size_t sessions, size_t events, uint64_t seed, size_t commit_window,
    workload::AdtMix adt, uint32_t adt_instances);

/// The --processes mode: fork N children, each running the full
/// sessions x threads load against events/N of the budget with a
/// distinct seed, then aggregate their results.  Children report over a
/// pipe — one "result" line plus the two latency histograms with full
/// bucket counts, so the parent's percentiles are computed on the exact
/// union of all samples.
int RunMultiProcess(const LoadOptions& opt) {
  const size_t n = opt.processes;
  std::vector<std::array<int, 2>> pipes(n);
  std::vector<pid_t> pids(n, -1);
  for (size_t p = 0; p < n; ++p) {
    if (pipe(pipes[p].data()) != 0) {
      std::cerr << "pipe failed\n";
      return 2;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::cerr << "fork failed\n";
      return 2;
    }
    if (pid == 0) {
      close(pipes[p][0]);
      LoadOptions child = opt;
      child.processes = 1;
      child.total_events =
          std::max<size_t>(child.sessions, opt.total_events / n);
      child.seed = opt.seed + 104729ull * (p + 1);
      child.send_shutdown = false;
      child.json_path.clear();
      auto work = GenerateWork(child.sessions, child.total_events, child.seed,
                               child.commit_window, child.adt,
                               child.adt_instances);
      LoadResult result;
      const int code = RunLoad(child, child.rate, work, &result);
      std::ostringstream report;
      report << "result " << result.events << " " << result.seconds << " "
             << result.mismatches << "\n"
             << "append " << result.append.SerializeText() << "\n"
             << "verdict " << result.verdict.SerializeText() << "\n";
      const std::string text = report.str();
      size_t written = 0;
      while (written < text.size()) {
        const ssize_t w = write(pipes[p][1], text.data() + written,
                                text.size() - written);
        if (w <= 0) break;
        written += static_cast<size_t>(w);
      }
      close(pipes[p][1]);
      _exit(code);
    }
    pids[p] = pid;
    close(pipes[p][1]);
  }

  LoadResult total;
  size_t failures = 0;
  for (size_t p = 0; p < n; ++p) {
    std::string text;
    char buffer[4096];
    for (;;) {
      const ssize_t r = read(pipes[p][0], buffer, sizeof(buffer));
      if (r <= 0) break;
      text.append(buffer, static_cast<size_t>(r));
    }
    close(pipes[p][0]);
    int status = 0;
    waitpid(pids[p], &status, 0);
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : 2;
    if (code != 0) ++failures;
    std::istringstream lines(text);
    std::string line;
    bool parsed = false;
    LoadResult child;
    while (std::getline(lines, line)) {
      std::istringstream fields(line);
      std::string key;
      fields >> key;
      if (key == "result") {
        fields >> child.events >> child.seconds >> child.mismatches;
        parsed = !fields.fail();
      } else if (key == "append" || key == "verdict") {
        std::string rest;
        std::getline(fields, rest);
        auto snap = service::LatencyHistogram::Snapshot::ParseText(rest);
        if (!snap.has_value()) {
          parsed = false;
          break;
        }
        (key == "append" ? child.append : child.verdict) = *snap;
      }
    }
    if (!parsed) {
      std::cerr << "process " << p << " (pid " << pids[p]
                << ") reported no result (exit code " << code << ")\n";
      ++failures;
      continue;
    }
    total.events += child.events;
    total.seconds = std::max(total.seconds, child.seconds);
    total.mismatches += child.mismatches;
    total.append.Merge(child.append);
    total.verdict.Merge(child.verdict);
  }
  total.throughput =
      total.seconds > 0 ? double(total.events) / total.seconds : 0;

  if (opt.send_shutdown) {
    auto control = service::ServiceClient::Dial(opt.endpoint, opt.protocol);
    if (!control.ok() || !control->Shutdown().ok()) {
      std::cerr << "SHUTDOWN failed\n";
      return 2;
    }
  }

  std::cout << "processes=" << n << " sessions=" << opt.sessions
            << " threads=" << opt.threads << " events=" << total.events
            << " theta=" << opt.theta << " protocol="
            << service::WireProtocolToString(opt.protocol)
            << " batch=" << opt.batch << "\n"
            << "load_seconds=" << total.seconds
            << " events_per_second=" << total.throughput << "\n"
            << "append_us: " << total.append.Summary() << "\n"
            << "verdict_us: " << total.verdict.Summary() << "\n"
            << "mismatches=" << total.mismatches
            << (opt.verify ? "" : " (verification disabled)") << "\n";

  if (!opt.json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"processes\": " << n << ",\n"
         << "  \"sessions\": " << opt.sessions << ",\n"
         << "  \"threads\": " << opt.threads << ",\n"
         << "  \"events\": " << total.events << ",\n"
         << "  \"theta\": " << opt.theta << ",\n"
         << "  \"protocol\": \""
         << service::WireProtocolToString(opt.protocol) << "\",\n"
         << "  \"batch\": " << opt.batch << ",\n"
         << "  \"load_seconds\": " << total.seconds << ",\n"
         << "  \"events_per_second\": " << total.throughput << ",\n"
         << "  \"append_p50_us\": " << total.append.p50 << ",\n"
         << "  \"append_p95_us\": " << total.append.p95 << ",\n"
         << "  \"append_p99_us\": " << total.append.p99 << ",\n"
         << "  \"verdict_p50_us\": " << total.verdict.p50 << ",\n"
         << "  \"verdict_p95_us\": " << total.verdict.p95 << ",\n"
         << "  \"verdict_p99_us\": " << total.verdict.p99 << ",\n"
         << "  \"mismatches\": " << total.mismatches << ",\n"
         << "  \"failed_processes\": " << failures << "\n"
         << "}\n";
    std::ofstream out(opt.json_path);
    out << json.str();
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << "\n";
      return 2;
    }
  }
  if (failures > 0) return 2;
  return total.mismatches == 0 ? 0 : 1;
}

std::vector<std::unique_ptr<SessionWork>> GenerateWork(
    size_t sessions, size_t events, uint64_t seed, size_t commit_window,
    workload::AdtMix adt, uint32_t adt_instances) {
  const size_t quota = std::max<size_t>(1, events / sessions);
  std::vector<std::unique_ptr<SessionWork>> work;
  work.reserve(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    auto w = std::make_unique<SessionWork>();
    w->events =
        GenerateSessionEvents(quota, seed + s, commit_window, adt,
                              adt_instances);
    work.push_back(std::move(w));
  }
  return work;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--version") {
      PrintToolVersion("comptx_load");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else if (arg == "--host") {
      opt.endpoint.host = next("--host");
    } else if (arg == "--port") {
      opt.endpoint.port = std::atoi(next("--port"));
    } else if (arg == "--unix") {
      opt.endpoint.unix_path = next("--unix");
    } else if (arg == "--sessions") {
      opt.sessions = std::strtoul(next("--sessions"), nullptr, 10);
    } else if (arg == "--threads") {
      opt.threads = std::strtoul(next("--threads"), nullptr, 10);
    } else if (arg == "--events") {
      opt.total_events = std::strtoul(next("--events"), nullptr, 10);
    } else if (arg == "--batch") {
      opt.batch = std::strtoul(next("--batch"), nullptr, 10);
    } else if (arg == "--processes") {
      opt.processes = std::strtoul(next("--processes"), nullptr, 10);
      if (opt.processes == 0) {
        std::cerr << "--processes must be positive\n";
        return 2;
      }
    } else if (arg == "--protocol") {
      auto protocol = service::ParseWireProtocol(next("--protocol"));
      if (!protocol.ok()) {
        std::cerr << "--protocol: " << protocol.status().message() << "\n";
        return 2;
      }
      opt.protocol = *protocol;
    } else if (arg == "--theta") {
      opt.theta = std::strtod(next("--theta"), nullptr);
    } else if (arg == "--adt") {
      auto mix = workload::ParseAdtMix(next("--adt"));
      if (!mix.ok()) {
        std::cerr << "--adt: " << mix.status().message() << "\n";
        return 2;
      }
      opt.adt = *mix;
    } else if (arg == "--adt-instances") {
      opt.adt_instances =
          static_cast<uint32_t>(std::strtoul(next("--adt-instances"),
                                             nullptr, 10));
      if (opt.adt_instances == 0) {
        std::cerr << "--adt-instances must be positive\n";
        return 2;
      }
    } else if (arg == "--commit-window") {
      opt.commit_window = std::strtoul(next("--commit-window"), nullptr, 10);
    } else if (arg == "--rate") {
      opt.rate = std::strtod(next("--rate"), nullptr);
    } else if (arg == "--rates") {
      std::istringstream list(next("--rates"));
      std::string token;
      while (std::getline(list, token, ',')) {
        const double rate = std::strtod(token.c_str(), nullptr);
        if (rate <= 0) {
          std::cerr << "--rates needs positive events/sec values\n";
          return 2;
        }
        opt.rates.push_back(rate);
      }
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--no-verify") {
      opt.verify = false;
    } else if (arg == "--json") {
      opt.json_path = next("--json");
    } else if (arg == "--shutdown") {
      opt.send_shutdown = true;
    } else if (arg == "--kill-pid") {
      opt.kill_pid = static_cast<pid_t>(std::atoi(next("--kill-pid")));
    } else if (arg == "--kill-after") {
      opt.kill_after = std::strtoul(next("--kill-after"), nullptr, 10);
    } else if (arg == "--state") {
      opt.state_path = next("--state");
    } else if (arg == "--resume") {
      opt.resume = true;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage(2);
    }
  }
  if (opt.sessions == 0 || opt.threads == 0 || opt.batch == 0 ||
      opt.total_events == 0) {
    std::cerr << "--sessions/--threads/--events/--batch must be positive\n";
    return 2;
  }
  if (opt.endpoint.unix_path.empty() && opt.endpoint.port == 0) {
    std::cerr << "need --port or --unix (where is the server?)\n";
    return 2;
  }
  const bool kill_mode = opt.kill_pid != 0 || opt.kill_after != 0;
  if (kill_mode && (opt.kill_pid <= 0 || opt.kill_after == 0 ||
                    opt.state_path.empty())) {
    std::cerr << "kill mode needs --kill-pid, --kill-after and --state\n";
    return 2;
  }
  if (kill_mode && !opt.rates.empty()) {
    std::cerr << "--rates and the kill drill are mutually exclusive\n";
    return 2;
  }
  if (opt.resume) {
    if (opt.state_path.empty() || kill_mode) {
      std::cerr << "--resume needs --state (and excludes --kill-pid)\n";
      return 2;
    }
    return RunResume(opt);
  }

  if (opt.processes > 1) {
    if (kill_mode || !opt.rates.empty()) {
      std::cerr << "--processes excludes --rates and the kill drill\n";
      return 2;
    }
    return RunMultiProcess(opt);
  }

  // Latency-under-throughput sweep: split the event budget across the
  // rate points; each point streams into its own fresh sessions.
  if (!opt.rates.empty()) {
    const size_t per_point =
        std::max<size_t>(opt.sessions, opt.total_events / opt.rates.size());
    std::vector<LoadResult> rows;
    std::cout << "rate_target  rate_achieved  append_p50_us  append_p95_us"
                 "  append_p99_us\n";
    for (size_t r = 0; r < opt.rates.size(); ++r) {
      auto work = GenerateWork(opt.sessions, per_point,
                               opt.seed + 7919 * (r + 1), opt.commit_window,
                               opt.adt, opt.adt_instances);
      LoadResult result;
      const int code = RunLoad(opt, opt.rates[r], work, &result);
      if (code == 2) return 2;
      rows.push_back(result);
      std::cout << opt.rates[r] << "  " << result.throughput << "  "
                << result.append.p50 << "  " << result.append.p95 << "  "
                << result.append.p99
                << (result.mismatches > 0 ? "  MISMATCHES!" : "") << "\n";
    }
    size_t mismatches = 0;
    for (const LoadResult& row : rows) mismatches += row.mismatches;
    if (opt.send_shutdown) {
      auto control = service::ServiceClient::Dial(opt.endpoint, opt.protocol);
      if (!control.ok() || !control->Shutdown().ok()) {
        std::cerr << "SHUTDOWN failed\n";
        return 2;
      }
    }
    if (!opt.json_path.empty()) {
      std::ostringstream json;
      json << "{\n  \"protocol\": \""
           << service::WireProtocolToString(opt.protocol) << "\",\n"
           << "  \"batch\": " << opt.batch << ",\n  \"sweep\": [\n";
      for (size_t r = 0; r < rows.size(); ++r) {
        json << "    {\"rate\": " << opt.rates[r]
             << ", \"events_per_second\": " << rows[r].throughput
             << ", \"append_p50_us\": " << rows[r].append.p50
             << ", \"append_p95_us\": " << rows[r].append.p95
             << ", \"append_p99_us\": " << rows[r].append.p99
             << ", \"mismatches\": " << rows[r].mismatches << "}"
             << (r + 1 < rows.size() ? "," : "") << "\n";
      }
      json << "  ]\n}\n";
      std::ofstream out(opt.json_path);
      out << json.str();
      if (!out) {
        std::cerr << "cannot write " << opt.json_path << "\n";
        return 2;
      }
    }
    return mismatches == 0 ? 0 : 1;
  }

  auto work = GenerateWork(opt.sessions, opt.total_events, opt.seed,
                           opt.commit_window, opt.adt, opt.adt_instances);
  LoadResult result;
  const int code = RunLoad(opt, opt.rate, work, &result);
  if (code != 0 && result.events == 0) return code;  // connect/usage failure
  if (opt.kill_pid != 0) return code;                // drill state written

  if (opt.send_shutdown) {
    auto control = service::ServiceClient::Dial(opt.endpoint, opt.protocol);
    if (!control.ok() || !control->Shutdown().ok()) {
      std::cerr << "SHUTDOWN failed\n";
      return 2;
    }
  }

  std::cout << "sessions=" << opt.sessions << " threads=" << opt.threads
            << " events=" << result.events << " theta=" << opt.theta
            << " protocol=" << service::WireProtocolToString(opt.protocol)
            << " batch=" << opt.batch << "\n"
            << "load_seconds=" << result.seconds
            << " events_per_second=" << result.throughput << "\n"
            << "append_us: " << result.append.Summary() << "\n"
            << "verdict_us: " << result.verdict.Summary() << "\n"
            << "mismatches=" << result.mismatches
            << (opt.verify ? "" : " (verification disabled)") << "\n";

  if (!opt.json_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"sessions\": " << opt.sessions << ",\n"
         << "  \"threads\": " << opt.threads << ",\n"
         << "  \"events\": " << result.events << ",\n"
         << "  \"theta\": " << opt.theta << ",\n"
         << "  \"protocol\": \""
         << service::WireProtocolToString(opt.protocol) << "\",\n"
         << "  \"batch\": " << opt.batch << ",\n"
         << "  \"rate\": " << opt.rate << ",\n"
         << "  \"load_seconds\": " << result.seconds << ",\n"
         << "  \"events_per_second\": " << result.throughput << ",\n"
         << "  \"append_p50_us\": " << result.append.p50 << ",\n"
         << "  \"append_p95_us\": " << result.append.p95 << ",\n"
         << "  \"append_p99_us\": " << result.append.p99 << ",\n"
         << "  \"verdict_p50_us\": " << result.verdict.p50 << ",\n"
         << "  \"verdict_p95_us\": " << result.verdict.p95 << ",\n"
         << "  \"verdict_p99_us\": " << result.verdict.p99 << ",\n"
         << "  \"mismatches\": " << result.mismatches << "\n"
         << "}\n";
    std::ofstream out(opt.json_path);
    out << json.str();
    if (!out) {
      std::cerr << "cannot write " << opt.json_path << "\n";
      return 2;
    }
  }
  return code;
}
