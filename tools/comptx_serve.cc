// Multi-session certification daemon: accepts comptx-serve wire-protocol
// connections (TCP or Unix socket) and certifies many independent event
// streams concurrently — one online::Certifier session per stream behind
// a bounded queue, drained by a worker pool (see service/server.h and
// DESIGN.md §10).
//
// Usage: comptx_serve [--host H] [--port N] [--unix PATH] [--workers N]
//                     [--io-threads N] [--handler-threads N]
//                     [--max-sessions N] [--queue-capacity N] [--batch N]
//                     [--idle-timeout-ms N] [--stats-interval-ms N]
//                     [--port-file PATH] [--data-dir DIR]
//                     [--fsync always|interval|none]
//                     [--fsync-interval-ms N] [--snapshot-events N]
//                     [--verify-recovery]
//                     [--static-admission] [--paranoid]
//
//   --static-admission makes new sessions default to the admission-time
//   static analyzer (DESIGN.md §13.4): sessions whose configuration the
//   PR 4 analyzer proves SAFE skip dynamic certification entirely, with
//   a one-time fallback to the dynamic engine when the configuration
//   turns out to need it.  --paranoid runs the dynamic engine as usual
//   but cross-checks every verdict against the analyzer, counting
//   disagreements (a debugging aid for the static path).  Both are
//   per-session defaults; an OPEN may override with
//   static_admission=0/1 paranoid=0/1.
//
//   The front end is an epoll event loop: --io-threads non-blocking
//   reactor threads own the connections, --handler-threads run the
//   (potentially blocking) request handlers, and --workers drain the
//   certification queues.  Both wire protocols are served on the same
//   port — textual v1 and binary v2 are auto-detected per frame
//   (DESIGN.md §12).
//
//   --port 0 (the default) asks the kernel for an ephemeral port; the
//   chosen port is printed on stdout as "listening on HOST:PORT" and,
//   with --port-file, written to PATH (how the CI smoke job finds the
//   server).  The daemon runs until a SHUTDOWN command or SIGINT/SIGTERM,
//   then drains every session and exits 0.
//
//   --data-dir enables durable sessions (DESIGN.md §11): every session
//   gets a write-ahead log plus periodic snapshots under DIR, sessions
//   found there at startup are recovered, and idle-evicted sessions can
//   be resumed with OPEN resume=<id>.  --fsync picks the group-commit
//   policy (default interval), --snapshot-events the snapshot cadence
//   (0 disables snapshots), and --verify-recovery cross-checks every
//   recovered session against an offline batch replay before serving.
//
//   Every daemon is also a distributed-topology node (DESIGN.md §15): a
//   NodeController answers ATTACH/DETACH/PREPARE/DECIDE, pulls attached
//   children's ORDER_STREAMs into local sessions, and runs the
//   cross-node two-phase commit.  comptx_topology wires fork/join DAGs
//   of these daemons.
//
//   SIGUSR1 dumps the full metrics registry as one JSON line on stdout
//   (the same rendering STATS json=1 returns over the wire).
//
// Exit codes: 0 = clean shutdown, 2 = usage, bind or recovery error.

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "distributed/controller.h"
#include "durability/wal.h"
#include "service/server.h"
#include "util/logging.h"
#include "util/version.h"

namespace {

using namespace comptx;  // NOLINT

// SIGINT/SIGTERM land here; the main loop polls it (a handler may only
// touch lock-free state, so it cannot call Shutdown directly).
volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int) { g_signal = 1; }

// SIGUSR1 asks for a metrics dump; the main loop renders it (JSON, one
// line on stdout) outside signal context.
volatile std::sig_atomic_t g_dump_metrics = 0;

void HandleMetricsSignal(int) { g_dump_metrics = 1; }

int Usage(int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: comptx_serve [--host H] [--port N] [--unix PATH]\n"
         "                    [--workers N] [--io-threads N]\n"
         "                    [--handler-threads N] [--max-sessions N]\n"
         "                    [--queue-capacity N] [--batch N]\n"
         "                    [--idle-timeout-ms N] [--stats-interval-ms N]\n"
         "                    [--port-file PATH] [--data-dir DIR]\n"
         "                    [--fsync always|interval|none]\n"
         "                    [--fsync-interval-ms N] [--snapshot-events N]\n"
         "                    [--verify-recovery]\n"
         "                    [--static-admission] [--paranoid]\n"
         "\n"
         "Runs the comptx certification service until SHUTDOWN or\n"
         "SIGINT/SIGTERM, then drains every session and exits 0.\n"
         "The front end is an epoll event loop (--io-threads reactors,\n"
         "--handler-threads request handlers) serving both the textual v1\n"
         "and binary v2 wire protocols on one port, auto-detected.\n"
         "--data-dir enables per-session WAL + snapshot durability and\n"
         "crash recovery (OPEN resume=<id> resumes persisted sessions).\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerOptions options;
  service::Endpoint endpoint;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--version") {
      PrintToolVersion("comptx_serve");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else if (arg == "--host") {
      endpoint.host = next("--host");
    } else if (arg == "--port") {
      endpoint.port = std::atoi(next("--port"));
    } else if (arg == "--unix") {
      endpoint.unix_path = next("--unix");
    } else if (arg == "--workers") {
      const long workers = std::strtol(next("--workers"), nullptr, 10);
      if (workers < 1) {
        std::cerr << "--workers needs a positive count\n";
        return 2;
      }
      options.workers = static_cast<size_t>(workers);
    } else if (arg == "--io-threads") {
      const long io = std::strtol(next("--io-threads"), nullptr, 10);
      if (io < 1) {
        std::cerr << "--io-threads needs a positive count\n";
        return 2;
      }
      options.io_threads = static_cast<size_t>(io);
    } else if (arg == "--handler-threads") {
      const long handlers = std::strtol(next("--handler-threads"), nullptr, 10);
      if (handlers < 1) {
        std::cerr << "--handler-threads needs a positive count\n";
        return 2;
      }
      options.handler_threads = static_cast<size_t>(handlers);
    } else if (arg == "--max-sessions") {
      options.max_sessions =
          static_cast<size_t>(std::strtoul(next("--max-sessions"), nullptr, 10));
    } else if (arg == "--queue-capacity") {
      options.session.queue_capacity = static_cast<size_t>(
          std::strtoul(next("--queue-capacity"), nullptr, 10));
    } else if (arg == "--batch") {
      options.batch_size =
          static_cast<size_t>(std::strtoul(next("--batch"), nullptr, 10));
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout_ms =
          std::strtoull(next("--idle-timeout-ms"), nullptr, 10);
    } else if (arg == "--stats-interval-ms") {
      options.stats_interval_ms =
          std::strtoull(next("--stats-interval-ms"), nullptr, 10);
    } else if (arg == "--port-file") {
      port_file = next("--port-file");
    } else if (arg == "--data-dir") {
      options.durability.dir = next("--data-dir");
    } else if (arg == "--fsync") {
      const char* name = next("--fsync");
      auto policy = durability::ParseFsyncPolicy(name);
      if (!policy.ok()) {
        std::cerr << "--fsync: " << policy.status().message() << "\n";
        return 2;
      }
      options.durability.fsync = *policy;
    } else if (arg == "--fsync-interval-ms") {
      options.durability.fsync_interval_ms =
          std::strtoull(next("--fsync-interval-ms"), nullptr, 10);
    } else if (arg == "--snapshot-events") {
      options.durability.snapshot_events =
          std::strtoull(next("--snapshot-events"), nullptr, 10);
    } else if (arg == "--verify-recovery") {
      options.durability.verify_recovery = true;
    } else if (arg == "--static-admission") {
      options.session.certifier.static_admission = true;
    } else if (arg == "--paranoid") {
      options.session.certifier.paranoid = true;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage(2);
    }
  }
  if (options.max_sessions == 0 || options.session.queue_capacity == 0 ||
      options.batch_size == 0) {
    std::cerr << "--max-sessions/--queue-capacity/--batch must be positive\n";
    return 2;
  }

  service::CertificationServer server(options);
  if (!server.InitStatus().ok()) {
    std::cerr << "durability init failed: " << server.InitStatus() << "\n";
    return 2;
  }

  // Distributed topology support (DESIGN.md §15): the controller owns
  // this node's upstream edges and the cross-node commit; injecting its
  // handler keeps the service library free of a dependency on it.  It is
  // wired before Listen so no ATTACH can race the binding.
  distributed::ControllerOptions controller_options;
  controller_options.data_dir = options.durability.dir;
  distributed::NodeController controller(&server, controller_options);
  server.SetDistributedHandler(
      [&controller](const service::Request& request) {
        return controller.Handle(request);
      });

  Status listening = server.Listen(endpoint);
  if (!listening.ok()) {
    std::cerr << "cannot listen on " << endpoint.ToString() << ": "
              << listening << "\n";
    return 2;
  }
  std::cout << "listening on " << endpoint.ToString() << std::endl;
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << endpoint.port << "\n";
    if (!out) {
      std::cerr << "cannot write " << port_file << "\n";
      return 2;
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGUSR1, HandleMetricsSignal);

  // Park until a SHUTDOWN command arrives or a signal does; poll the
  // signal flags at a human-scale interval.
  while (!server.ShuttingDown() && g_signal == 0) {
    if (g_dump_metrics != 0) {
      g_dump_metrics = 0;
      std::cout << server.metrics().RenderJson() << std::endl;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (g_signal != 0) {
    COMPTX_LOG(Info) << "signal received, draining";
  }
  server.Shutdown();
  std::cout << "shut down cleanly" << std::endl;
  return 0;
}
