// Online certification CLI: replays a comptx-trace file event by event
// through an online::Certifier and reports whether the execution stays
// certifiable at every prefix.  With --check, every accepted prefix is
// additionally cross-validated against batch CheckCompC on a mirror of
// the system built so far (validation disabled: prefixes of well-formed
// executions legitimately violate the completeness rules of Defs 3-4).
//
// Usage: comptx_certify [--check] [--no-prune] [--stats] <trace-file>
//        comptx_certify --demo [--check]
//
// Exit codes: 0 = certifiable, 1 = not certifiable, 2 = usage/IO error
// (including a --check disagreement, which indicates a comptx bug).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/figures.h"
#include "core/correctness.h"
#include "online/certifier.h"
#include "workload/trace.h"

namespace {

using namespace comptx;  // NOLINT

const char* StepName(online::OnlineFailure::Step step) {
  switch (step) {
    case online::OnlineFailure::Step::kCalculation:
      return "calculation";
    case online::OnlineFailure::Step::kConflictConsistency:
      return "conflict consistency";
  }
  return "?";
}

struct CliOptions {
  bool check = false;
  bool stats = false;
  bool prune = true;
};

int Certify(const std::string& text, const CliOptions& cli) {
  auto events = workload::ParseTraceEvents(text);
  if (!events.ok()) {
    std::cerr << "trace parse error: " << events.status() << "\n";
    return 2;
  }

  online::CertifierOptions options;
  options.auto_prune = cli.prune;
  online::Certifier certifier(options);
  CompositeSystem mirror;  // batch mirror for --check, accepted events only

  size_t index = 0;
  bool reported_failure = false;
  for (const workload::TraceEvent& event : *events) {
    ++index;
    Status status = certifier.Ingest(event);
    if (!status.ok()) {
      std::cerr << "event " << index << " ("
                << workload::FormatTraceEvent(event)
                << ") rejected: " << status << "\n";
      continue;  // rejected events leave the session (and mirror) unchanged
    }
    online::CertifierVerdict verdict = certifier.Verdict();
    if (!verdict.certifiable && !reported_failure) {
      reported_failure = true;
      std::cout << "not certifiable after event " << index << " ("
                << workload::FormatTraceEvent(event) << ")\n";
      if (verdict.failure.has_value()) {
        std::cout << "  level " << verdict.failure->level << ", "
                  << StepName(verdict.failure->step)
                  << " violation: " << verdict.failure->description << "\n";
      }
    }
    if (cli.check) {
      if (Status applied = workload::ApplyTraceEvent(mirror, event);
          !applied.ok()) {
        std::cerr << "mirror apply failed at event " << index << ": "
                  << applied << "\n";
        return 2;
      }
      ReductionOptions reduction;
      reduction.validate = false;
      reduction.keep_fronts = false;
      auto batch = CheckCompC(mirror, reduction);
      if (!batch.ok()) {
        std::cerr << "batch checker error at event " << index << ": "
                  << batch.status() << "\n";
        return 2;
      }
      if (batch->correct != verdict.certifiable) {
        std::cerr << "DISAGREEMENT at event " << index << " ("
                  << workload::FormatTraceEvent(event) << "): online says "
                  << (verdict.certifiable ? "certifiable" : "not certifiable")
                  << ", batch says "
                  << (batch->correct ? "correct" : "incorrect") << "\n";
        return 2;
      }
    }
  }

  online::CertifierVerdict verdict = certifier.Verdict();
  if (verdict.certifiable) {
    std::cout << "certifiable (order " << verdict.order << ", " << index
              << " events";
    std::vector<NodeId> witness = certifier.SerialWitness();
    if (!witness.empty()) {
      std::cout << "; serial witness:";
      for (NodeId root : witness) {
        std::cout << " " << certifier.system().node(root).name;
      }
    }
    std::cout << ")\n";
  }
  if (cli.check) std::cout << "batch agreement: all prefixes\n";
  if (cli.stats) {
    online::CertifierStats stats = certifier.Stats();
    std::cout << "stats: accepted=" << stats.events_accepted
              << " rejected=" << stats.events_rejected
              << " rebuilds=" << stats.rebuilds
              << " prune_passes=" << stats.prune_passes
              << " pruned_nodes=" << stats.pruned_nodes
              << " live_nodes=" << stats.live_nodes
              << " observed_pairs=" << stats.observed_pairs
              << " cc_edges=" << stats.cc_edges
              << " calc_edges=" << stats.calc_edges
              << " closure_pairs=" << stats.closure_pairs << "\n";
  }
  return verdict.certifiable ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  bool demo = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      cli.check = true;
    } else if (arg == "--stats") {
      cli.stats = true;
    } else if (arg == "--no-prune") {
      cli.prune = false;
    } else if (arg == "--demo") {
      demo = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "multiple trace files given\n";
      return 2;
    }
  }
  if (demo == !path.empty()) {  // exactly one of --demo / <trace-file>
    std::cerr << "usage: comptx_certify [--check] [--no-prune] [--stats] "
                 "<trace-file> | --demo\n";
    return 2;
  }
  if (demo) {
    auto text = workload::SaveTrace(analysis::MakeFigure4().system);
    if (!text.ok()) {
      std::cerr << "demo generation failed: " << text.status() << "\n";
      return 2;
    }
    std::cout << "demo trace (Figure 4):\n" << *text << "\n";
    return Certify(*text, cli);
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Certify(buffer.str(), cli);
}
