// Online certification CLI: replays a comptx-trace file event by event
// through an online::Certifier and reports whether the execution stays
// certifiable at every prefix.  With --check, every accepted prefix is
// additionally cross-validated against batch CheckCompC (validation
// disabled: prefixes of well-formed executions legitimately violate the
// completeness rules of Defs 3-4); the per-prefix batch runs fan out over
// the thread pool after the online pass.
//
// Usage: comptx_certify [--check] [--static] [--paranoid] [--no-prune]
//                       [--stats] [--threads N] <trace-file>
//        comptx_certify --demo [--check]
//
// --static runs the static configuration analyzer on the fully replayed
// trace first; on SAFE (exact on stack/fork/join/flat shapes, Theorems
// 2-4) the per-event online replay is skipped entirely.  --paranoid keeps
// the fast path but replays anyway and cross-checks the static verdict
// (a disagreement is a comptx bug and exits 2).
//
// Exit codes: 0 = certifiable, 1 = not certifiable, 2 = usage/IO error
// (including a --check or --paranoid disagreement, which indicates a
// comptx bug).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/figures.h"
#include "analysis/sweep.h"
#include "core/correctness.h"
#include "online/certifier.h"
#include "staticcheck/analyzer.h"
#include "util/thread_pool.h"
#include "util/version.h"
#include "workload/trace.h"

namespace {

using namespace comptx;  // NOLINT

const char* StepName(online::OnlineFailure::Step step) {
  switch (step) {
    case online::OnlineFailure::Step::kCalculation:
      return "calculation";
    case online::OnlineFailure::Step::kConflictConsistency:
      return "conflict consistency";
  }
  return "?";
}

struct CliOptions {
  bool check = false;
  bool stats = false;
  bool prune = true;
  bool static_pass = false;
  bool paranoid = false;
};

/// Runs the static pre-pass on the fully replayed trace.  Returns the
/// analysis when the system builds; nullopt sends the caller down the
/// normal online path (a trace the certifier itself will diagnose).
std::optional<staticcheck::StaticAnalysis> StaticPrePass(
    const std::vector<workload::TraceEvent>& events) {
  CompositeSystem full;
  for (const workload::TraceEvent& event : events) {
    if (!workload::ApplyTraceEvent(full, event).ok()) return std::nullopt;
  }
  return staticcheck::AnalyzeConfiguration(full);
}

int Certify(const std::string& text, const CliOptions& cli) {
  auto events = workload::ParseTraceEvents(text);
  if (!events.ok()) {
    std::cerr << "trace parse error: " << events.status() << "\n";
    return 2;
  }

  std::optional<staticcheck::StaticAnalysis> analysis;
  if (cli.static_pass) {
    analysis = StaticPrePass(*events);
    if (analysis.has_value() && analysis->well_formed) {
      const char* verdict = staticcheck::SafetyVerdictToString(
          analysis->verdict);
      std::cout << "static verdict: " << verdict << " (shape "
                << staticcheck::ConfigShapeToString(analysis->shape)
                << ", order " << analysis->order << ")\n";
      if (analysis->verdict == staticcheck::SafetyVerdict::kSafe &&
          !cli.paranoid) {
        // Exact on the shapes it fires for — the replay adds nothing.
        std::cout << "certifiable (static fast path, order "
                  << analysis->order << ", " << events->size()
                  << " events)\n";
        return 0;
      }
    } else {
      std::cout << "static verdict: unavailable (trace does not build a "
                   "well-formed system); running the online replay\n";
      analysis.reset();
    }
  }

  online::CertifierOptions options;
  options.auto_prune = cli.prune;
  online::Certifier certifier(options);
  // For --check: the accepted events and the online verdict after each one.
  std::vector<workload::TraceEvent> accepted;
  std::vector<bool> online_verdicts;

  size_t index = 0;
  size_t rejected = 0;
  bool reported_failure = false;
  for (const workload::TraceEvent& event : *events) {
    ++index;
    Status status = certifier.Ingest(event);
    if (!status.ok()) {
      ++rejected;
      std::cerr << "event " << index << " ("
                << workload::FormatTraceEvent(event)
                << ") rejected: " << status << "\n";
      continue;  // rejected events leave the session unchanged
    }
    online::CertifierVerdict verdict = certifier.Verdict();
    if (!verdict.certifiable && !reported_failure) {
      reported_failure = true;
      std::cout << "not certifiable after event " << index << " ("
                << workload::FormatTraceEvent(event) << ")\n";
      if (verdict.failure.has_value()) {
        std::cout << "  level " << verdict.failure->level << ", "
                  << StepName(verdict.failure->step)
                  << " violation: " << verdict.failure->description << "\n";
      }
    }
    if (cli.check) {
      accepted.push_back(event);
      online_verdicts.push_back(verdict.certifiable);
    }
  }

  if (cli.check) {
    // Cross-validate every accepted prefix against the batch checker; the
    // per-prefix reductions are independent, so they fan out over the pool.
    ReductionOptions reduction;
    reduction.keep_fronts = false;
    auto batch = analysis::BatchPrefixVerdicts(accepted, reduction);
    if (!batch.ok()) {
      std::cerr << "batch checker error: " << batch.status() << "\n";
      return 2;
    }
    for (size_t i = 0; i < accepted.size(); ++i) {
      if ((*batch)[i] != online_verdicts[i]) {
        std::cerr << "DISAGREEMENT at accepted event " << i + 1 << " ("
                  << workload::FormatTraceEvent(accepted[i])
                  << "): online says "
                  << (online_verdicts[i] ? "certifiable" : "not certifiable")
                  << ", batch says "
                  << ((*batch)[i] ? "correct" : "incorrect") << "\n";
        return 2;
      }
    }
  }

  online::CertifierVerdict verdict = certifier.Verdict();
  if (analysis.has_value() && rejected == 0 &&
      analysis->verdict != staticcheck::SafetyVerdict::kNeedsDynamic) {
    // --paranoid (or a statically UNSAFE trace): the static verdict is
    // exact on the shape it fired for, so the replay must agree.
    const bool static_safe =
        analysis->verdict == staticcheck::SafetyVerdict::kSafe;
    if (static_safe != verdict.certifiable) {
      std::cerr << "STATIC DISAGREEMENT: analyzer says "
                << staticcheck::SafetyVerdictToString(analysis->verdict)
                << ", online replay says "
                << (verdict.certifiable ? "certifiable" : "not certifiable")
                << " (" << analysis->reason << ")\n";
      return 2;
    }
    std::cout << "static agreement: " << (static_safe ? "SAFE" : "UNSAFE")
              << " confirmed by the replay\n";
  }
  if (verdict.certifiable) {
    std::cout << "certifiable (order " << verdict.order << ", " << index
              << " events";
    std::vector<NodeId> witness = certifier.SerialWitness();
    if (!witness.empty()) {
      std::cout << "; serial witness:";
      for (NodeId root : witness) {
        std::cout << " " << certifier.system().node(root).name;
      }
    }
    std::cout << ")\n";
  }
  if (cli.check) std::cout << "batch agreement: all prefixes\n";
  if (cli.stats) {
    online::CertifierStats stats = certifier.Stats();
    std::cout << "stats: threads=" << ThreadPool::Global().ThreadCount()
              << " accepted=" << stats.events_accepted
              << " rejected=" << stats.events_rejected
              << " rebuilds=" << stats.rebuilds
              << " prune_passes=" << stats.prune_passes
              << " pruned_nodes=" << stats.pruned_nodes
              << " live_nodes=" << stats.live_nodes
              << " observed_pairs=" << stats.observed_pairs
              << " cc_edges=" << stats.cc_edges
              << " calc_edges=" << stats.calc_edges
              << " closure_pairs=" << stats.closure_pairs << "\n";
  }
  return verdict.certifiable ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  bool demo = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--version") {
      PrintToolVersion("comptx_certify");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: comptx_certify [--check] [--static] [--paranoid] "
                   "[--no-prune] [--stats] [--threads N] <trace-file> | "
                   "--demo\n";
      return 0;
    } else if (arg == "--check") {
      cli.check = true;
    } else if (arg == "--static") {
      cli.static_pass = true;
    } else if (arg == "--paranoid") {
      cli.static_pass = true;
      cli.paranoid = true;
    } else if (arg == "--stats") {
      cli.stats = true;
    } else if (arg == "--no-prune") {
      cli.prune = false;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::cerr << "--threads needs a count\n";
        return 2;
      }
      long threads = std::strtol(argv[++i], nullptr, 10);
      if (threads < 1) {
        std::cerr << "--threads needs a positive count\n";
        return 2;
      }
      comptx::ThreadPool::SetGlobalThreads(static_cast<size_t>(threads));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "multiple trace files given\n";
      return 2;
    }
  }
  if (demo == !path.empty()) {  // exactly one of --demo / <trace-file>
    std::cerr << "usage: comptx_certify [--check] [--static] [--paranoid] "
                 "[--no-prune] [--stats] [--threads N] <trace-file> | "
                 "--demo\n";
    return 2;
  }
  if (demo) {
    auto text = workload::SaveTrace(analysis::MakeFigure4().system);
    if (!text.ok()) {
      std::cerr << "demo generation failed: " << text.status() << "\n";
      return 2;
    }
    std::cout << "demo trace (Figure 4):\n" << *text << "\n";
    return Certify(*text, cli);
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Certify(buffer.str(), cli);
}
