// Differential conformance fuzzer + delta-debugging minimizer CLI.
//
// Default mode runs a fuzz campaign: random composite executions are
// pushed through every decider the library has (batch reduction, online
// certifier, hierarchical oracle, SCC/FCC/JCC criteria, serial-front
// witness check) plus the metamorphic invariance layer; every
// disagreement is delta-debugged to a 1-minimal witness and written as a
// replayable JSON file.
//
// Usage:
//   comptx_shrink [--seed N] [--traces N] [--out DIR] [--threads N]
//                 [--inject-bug none|flip-oracle|flip-online|flip-criteria|flip-static|flip-commutes]
//                 [--no-metamorphic] [--max-shrink-calls N] [--quiet]
//   comptx_shrink --replay FILE...   re-check stored witnesses
//
// Exit codes: 0 = all deciders agree (or all witnesses replay clean),
// 1 = disagreement found (or a replayed witness fails), 2 = usage/IO
// error.  --inject-bug exists to prove end to end that a real decider
// bug would be caught, shrunk and reported; it is never a production
// mode, and --replay rejects being combined with it.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/campaign.h"
#include "testing/witness.h"
#include "util/thread_pool.h"
#include "util/version.h"

namespace {

using namespace comptx;  // NOLINT

int Usage() {
  std::cerr
      << "usage: comptx_shrink [--seed N] [--traces N] [--out DIR]\n"
         "                     [--inject-bug none|flip-oracle|flip-online|"
         "flip-criteria|\n"
         "                                  flip-static|flip-commutes]\n"
         "                     [--no-metamorphic] [--threads N]\n"
         "                     [--max-shrink-calls N] [--quiet]\n"
         "       comptx_shrink --replay FILE...\n";
  return 2;
}

int RunReplay(const std::vector<std::string>& paths, bool quiet) {
  if (paths.empty()) {
    std::cerr << "--replay needs at least one witness file\n";
    return 2;
  }
  int failures = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto record = testing::ParseWitnessJson(buffer.str());
    if (!record.ok()) {
      std::cerr << path << ": " << record.status() << "\n";
      return 2;
    }
    auto outcome = testing::ReplayWitness(*record);
    if (!outcome.ok()) {
      std::cerr << path << ": replay error: " << outcome.status() << "\n";
      return 2;
    }
    if (outcome->Passed()) {
      if (!quiet) {
        std::cout << path << ": ok (" << record->check << ", "
                  << record->events.size() << " events, comp_c="
                  << (record->comp_c ? "true" : "false") << ")\n";
      }
    } else {
      ++failures;
      std::cout << path << ": FAIL: " << outcome->message << "\n";
    }
  }
  if (failures > 0) {
    std::cout << failures << "/" << paths.size() << " witnesses failed\n";
    return 1;
  }
  if (!quiet) {
    std::cout << "all " << paths.size() << " witnesses replay clean\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  testing::CampaignOptions options;
  options.seed = 1;
  options.traces = 100;
  std::string out_dir;
  bool quiet = false;
  bool replay = false;
  bool inject_given = false;
  std::vector<std::string> replay_paths;

  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      PrintToolVersion("comptx_shrink");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--seed") {
      const char* v = need_value(i, "--seed");
      if (v == nullptr) return 2;
      char* end = nullptr;
      options.seed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') {
        std::cerr << "--seed needs an unsigned integer, got '" << v << "'\n";
        return 2;
      }
    } else if (arg == "--traces") {
      const char* v = need_value(i, "--traces");
      if (v == nullptr) return 2;
      long traces = std::strtol(v, nullptr, 10);
      if (traces < 1) {
        std::cerr << "--traces needs a positive count\n";
        return 2;
      }
      options.traces = static_cast<uint32_t>(traces);
    } else if (arg == "--out") {
      const char* v = need_value(i, "--out");
      if (v == nullptr) return 2;
      out_dir = v;
    } else if (arg == "--inject-bug") {
      const char* v = need_value(i, "--inject-bug");
      if (v == nullptr) return 2;
      auto bug = testing::ParseInjectedBug(v);
      if (!bug.has_value()) {
        std::cerr << "unknown --inject-bug '" << v
                  << "' (none|flip-oracle|flip-online|flip-criteria|flip-static|flip-commutes)\n";
        return 2;
      }
      options.differential.inject = *bug;
      inject_given = *bug != testing::InjectedBug::kNone;
    } else if (arg == "--no-metamorphic") {
      options.run_metamorphic = false;
    } else if (arg == "--max-shrink-calls") {
      const char* v = need_value(i, "--max-shrink-calls");
      if (v == nullptr) return 2;
      long calls = std::strtol(v, nullptr, 10);
      if (calls < 1) {
        std::cerr << "--max-shrink-calls needs a positive count\n";
        return 2;
      }
      options.shrink.max_predicate_calls = static_cast<uint32_t>(calls);
    } else if (arg == "--threads") {
      const char* v = need_value(i, "--threads");
      if (v == nullptr) return 2;
      long threads = std::strtol(v, nullptr, 10);
      if (threads < 1) {
        std::cerr << "--threads needs a positive count\n";
        return 2;
      }
      ThreadPool::SetGlobalThreads(static_cast<size_t>(threads));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--replay") {
      replay = true;
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        replay_paths.push_back(argv[++i]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage();
    } else {
      std::cerr << "unexpected argument " << arg << "\n";
      return Usage();
    }
  }

  if (replay) {
    if (inject_given || !out_dir.empty()) {
      std::cerr << "--replay cannot be combined with --inject-bug/--out\n";
      return 2;
    }
    return RunReplay(replay_paths, quiet);
  }

  std::error_code ec;
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::cerr << "cannot create --out directory " << out_dir << ": "
                << ec.message() << "\n";
      return 2;
    }
  }

  size_t written = 0;
  bool write_error = false;
  options.on_witness = [&](const testing::WitnessRecord& record) {
    std::cout << "DISAGREEMENT [" << record.check << "] seed=" << record.seed
              << " (" << record.generator << ")\n  " << record.detail
              << "\n  shrunk " << record.events_initial << " -> "
              << record.events_final << " events\n";
    if (out_dir.empty()) return;
    const std::string path =
        (std::filesystem::path(out_dir) / (record.id + ".json")).string();
    std::ofstream out(path);
    out << testing::FormatWitnessJson(record);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      write_error = true;
      return;
    }
    std::cout << "  witness written to " << path << "\n";
    ++written;
  };

  auto result = testing::RunFuzzCampaign(options);
  if (!result.ok()) {
    std::cerr << "campaign error: " << result.status() << "\n";
    return 2;
  }
  if (write_error) return 2;
  const testing::CampaignStats& stats = result->stats;
  if (!quiet) {
    std::cout << "campaign: seed=" << options.seed << " traces=" << stats.traces
              << " threads=" << ThreadPool::Global().ThreadCount()
              << " inject="
              << testing::InjectedBugToString(options.differential.inject)
              << "\n  comp_c=" << stats.comp_c_count << "/" << stats.traces
              << " single_meet=" << stats.single_meet
              << " prefix_checked=" << stats.prefix_checked
              << " metamorphic_checked=" << stats.metamorphic_checked
              << " events=" << stats.total_events << "\n";
  }
  if (result->clean()) {
    std::cout << "zero decider disagreements across " << stats.traces
              << " traces\n";
    return 0;
  }
  std::cout << stats.failing_traces << " failing traces, "
            << result->witnesses.size() << " minimized witnesses ("
            << stats.shrink_predicate_calls << " shrink predicate calls)";
  if (!out_dir.empty()) std::cout << ", " << written << " written";
  std::cout << "\n";
  return 1;
}
