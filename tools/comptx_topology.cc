// Distributed-topology driver (DESIGN.md §15): spawns one comptx_serve
// process per node of a topology spec, wires the fork/join DAG with
// ATTACH edges, partitions a composite trace across the leaves, drives
// it in phases with a barrier + two-phase commit per phase, and checks
// the merged root trace against the batch oracle and a single-process
// differential replay.
//
// Usage: comptx_topology --spec FILE --serve BIN --data-dir DIR
//                        (--trace FILE | --roots N [--seed S] [--disorder P])
//                        [--phases N] [--kill NODE [--kill-phase P]]
//                        [--json FILE] [--out FILE] [--verbose]
//
//   --spec        topology file ("# comptx-topology v1"; node/edge lines)
//   --serve       path to the comptx_serve binary to spawn
//   --data-dir    scratch root; per-node WALs, port files and logs live
//                 under DIR/<node>/
//   --trace       drive this comptx-trace file
//   --roots       generate a stacked-schedule workload with N roots instead
//   --disorder    anomaly probability for the generated workload; 0 (the
//                 default) generates order-preserving (certifiable)
//                 executions, >0 injects serialization anomalies
//   --phases      commit phases (default 4); each phase ends with a
//                 barrier on the root's exact stream watermark, a
//                 PREPARE/DECIDE round, and a QUERY verdict
//   --kill        SIGKILL this node after its --kill-phase slice is
//                 drained, respawn it on the same port/data dir, and
//                 require the run to still converge (the recovery drill)
//   --json        write the run report as JSON here
//   --out         write the merged root trace here (comptx-trace v1)
//
// Checks (all must pass for exit 0):
//   1. every phase verdict matches a single-process certifier fed the
//      identical merged prefix + commit watermark (the differential);
//   2. the final merged system satisfies batch CheckCompC iff the root's
//      online verdict says certifiable;
//   3. the merged trace has exactly the expected event count (ordered
//      delivery + dedup accounting).
//
// Exit codes: 0 = all checks pass, 1 = verdict mismatch or check
// failure, 2 = usage or setup error.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/correctness.h"
#include "core/reduction.h"
#include "distributed/topology.h"
#include "online/certifier.h"
#include "util/version.h"
#include "workload/trace.h"

namespace {

using namespace comptx;  // NOLINT

int Usage(int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: comptx_topology --spec FILE --serve BIN --data-dir DIR\n"
         "                       (--trace FILE | --roots N [--seed S]\n"
         "                        [--disorder P])\n"
         "                       [--phases N] [--kill NODE [--kill-phase P]]\n"
         "                       [--json FILE] [--out FILE] [--verbose]\n"
         "\n"
         "Spawns one comptx_serve per topology node, partitions the trace\n"
         "across the leaves, drives it in phases with a cross-node\n"
         "two-phase commit per phase, and checks the merged root trace\n"
         "against the batch oracle and a single-process differential\n"
         "replay.  Exit 0 iff every check passes.\n";
  return code;
}

StatusOr<std::vector<workload::TraceEvent>> LoadTraceEvents(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return workload::ParseTraceEvents(buffer.str());
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, trace_path, json_path, out_path;
  distributed::RunnerOptions options;
  distributed::DrillConfig drill;
  bool have_drill = false;
  uint32_t roots = 0;
  uint64_t seed = 20260814;
  double disorder = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--version") {
      PrintToolVersion("comptx_topology");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else if (arg == "--spec") {
      spec_path = next("--spec");
    } else if (arg == "--serve") {
      options.serve_binary = next("--serve");
    } else if (arg == "--data-dir") {
      options.data_root = next("--data-dir");
    } else if (arg == "--trace") {
      trace_path = next("--trace");
    } else if (arg == "--roots") {
      roots = static_cast<uint32_t>(std::strtoul(next("--roots"), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--disorder") {
      disorder = std::strtod(next("--disorder"), nullptr);
    } else if (arg == "--phases") {
      options.phases =
          static_cast<size_t>(std::strtoul(next("--phases"), nullptr, 10));
    } else if (arg == "--kill") {
      drill.node = next("--kill");
      have_drill = true;
    } else if (arg == "--kill-phase") {
      drill.after_phase =
          static_cast<size_t>(std::strtoul(next("--kill-phase"), nullptr, 10));
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage(2);
    }
  }
  if (spec_path.empty() || options.serve_binary.empty() ||
      options.data_root.empty()) {
    std::cerr << "--spec, --serve and --data-dir are required\n";
    return Usage(2);
  }
  if (trace_path.empty() == (roots == 0)) {
    std::cerr << "exactly one of --trace or --roots is required\n";
    return Usage(2);
  }

  auto spec = distributed::LoadTopologySpec(spec_path);
  if (!spec.ok()) {
    std::cerr << "bad topology spec: " << spec.status() << "\n";
    return 2;
  }
  auto trace = trace_path.empty()
                   ? distributed::GenerateGroupedTrace(roots, seed, disorder)
                   : LoadTraceEvents(trace_path);
  if (!trace.ok()) {
    std::cerr << "cannot load trace: " << trace.status() << "\n";
    return 2;
  }

  distributed::TopologyRunner runner(*spec, options);
  Status started = runner.Start();
  if (!started.ok()) {
    std::cerr << "topology start failed: " << started << "\n";
    return 2;
  }
  auto report = runner.Drive(*trace, have_drill ? &drill : nullptr);
  const Status down = runner.Shutdown();
  if (!report.ok()) {
    std::cerr << "drive failed: " << report.status() << "\n";
    return 2;
  }
  if (!down.ok()) {
    std::cerr << "warning: shutdown: " << down << "\n";
  }

  // Check 3: exact merged accounting (Drive already barriered on it, so
  // this is a belt check on FetchMerged).
  std::vector<std::string> failures;
  if (report->merged.size() != report->expected_root_events) {
    failures.push_back("merged trace has " +
                       std::to_string(report->merged.size()) + " events, " +
                       "expected " +
                       std::to_string(report->expected_root_events));
  }

  // Check 1: the differential — a single-process certifier fed the
  // identical merged prefixes and commit watermarks must produce the
  // identical verdict sequence.
  {
    online::Certifier certifier{online::CertifierOptions{}};
    size_t fed = 0;
    for (const auto& phase : report->phases) {
      for (; fed < phase.root_events && fed < report->merged.size(); ++fed) {
        (void)certifier.Ingest(report->merged[fed]);
      }
      if (phase.k > 0) {
        workload::TraceEvent commit;
        commit.kind = workload::TraceEventKind::kCommitThrough;
        commit.a = static_cast<uint32_t>(phase.k);
        (void)certifier.Ingest(commit);
      }
      const online::CertifierVerdict verdict = certifier.Verdict();
      if (verdict.certifiable != phase.certifiable) {
        failures.push_back(
            "phase k=" + std::to_string(phase.k) +
            ": distributed verdict " +
            (phase.certifiable ? "certifiable" : "not certifiable") +
            " but single-process replay says " +
            (verdict.certifiable ? "certifiable" : "not certifiable"));
      }
      const uint64_t replay_watermark = certifier.Stats().commit_watermark;
      if (replay_watermark != phase.commit_watermark) {
        failures.push_back(
            "phase k=" + std::to_string(phase.k) +
            ": distributed commit watermark " +
            std::to_string(phase.commit_watermark) +
            " but single-process replay reached " +
            std::to_string(replay_watermark));
      }
    }
  }

  // Check 2: batch oracle over the merged system vs the final online
  // verdict.
  bool batch_correct = false;
  {
    CompositeSystem merged_cs;
    Status applied = Status::OK();
    for (const auto& event : report->merged) {
      applied = workload::ApplyTraceEvent(merged_cs, event);
      if (!applied.ok()) break;
    }
    if (!applied.ok()) {
      failures.push_back("merged trace does not replay: " +
                         applied.ToString());
    } else {
      ReductionOptions reduction;
      reduction.validate = false;
      auto batch = CheckCompC(merged_cs, reduction);
      if (!batch.ok()) {
        failures.push_back("batch oracle failed: " +
                           batch.status().ToString());
      } else {
        batch_correct = batch->correct;
        const bool final_online = report->phases.empty()
                                      ? true
                                      : report->phases.back().certifiable;
        if (batch_correct != final_online) {
          failures.push_back(
              std::string("batch oracle says ") +
              (batch_correct ? "certifiable" : "not certifiable") +
              " but the distributed verdict is " +
              (final_online ? "certifiable" : "not certifiable"));
        }
      }
    }
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "# comptx-trace v1\n";
    for (const auto& event : report->merged) {
      out << workload::FormatTraceEvent(event) << "\n";
    }
    out << "end\n";
  }

  std::ostringstream json;
  json << "{\n  \"nodes\": " << spec->nodes.size()
       << ",\n  \"leaves\": " << spec->leaves.size()
       << ",\n  \"events\": " << report->merged.size()
       << ",\n  \"expected_events\": " << report->expected_root_events
       << ",\n  \"roots\": " << report->total_roots
       << ",\n  \"resubscribes\": " << report->resubscribes
       << ",\n  \"drill\": " << (have_drill ? "true" : "false")
       << ",\n  \"batch_certifiable\": " << (batch_correct ? "true" : "false")
       << ",\n  \"phases\": [";
  for (size_t i = 0; i < report->phases.size(); ++i) {
    const auto& phase = report->phases[i];
    json << (i == 0 ? "" : ",") << "\n    {\"k\": " << phase.k
         << ", \"events\": " << phase.root_events << ", \"certifiable\": "
         << (phase.certifiable ? "true" : "false")
         << ", \"commit_watermark\": " << phase.commit_watermark << "}";
  }
  json << "\n  ],\n  \"failures\": [";
  for (size_t i = 0; i < failures.size(); ++i) {
    json << (i == 0 ? "" : ",") << "\n    \"" << JsonEscape(failures[i])
         << "\"";
  }
  json << "\n  ],\n  \"ok\": " << (failures.empty() ? "true" : "false")
       << "\n}\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json.str();
  }
  std::cout << json.str();

  for (const auto& failure : failures) {
    std::cerr << "FAIL: " << failure << "\n";
  }
  return failures.empty() ? 0 : 1;
}
