// Durability-directory inspector: verify, dump and repair the per-session
// WALs and snapshots written by comptx_serve --data-dir (DESIGN.md §11).
//
// Usage: comptx_walcheck [--dump] [--repair] [--quiet] <path>...
//
//   <path> is a durability directory (all s<id>.wal / s<id>.snap inside
//   are checked) or an individual file.  For each WAL the tool reports
//   the record count, the event watermark, the last lifecycle marker and
//   — when the tail is torn or corrupt — the precise truncation LSN and
//   byte offset a repair would cut at.  --repair truncates torn WALs in
//   place (exactly what server recovery does); snapshots are never
//   "repaired" — a damaged snapshot is real corruption, not a torn write,
//   and is only reported.  --dump additionally prints every record (and
//   each APPEND's events as trace lines).
//
// Exit codes: 0 = everything clean (or repaired under --repair),
//             1 = damage found (and left in place), 2 = usage/IO error.

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "durability/recovery.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "util/version.h"
#include "workload/trace.h"

namespace {

using namespace comptx;  // NOLINT
namespace fs = std::filesystem;

struct CheckOptions {
  bool dump = false;
  bool repair = false;
  bool quiet = false;
};

int Usage(int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: comptx_walcheck [--dump] [--repair] [--quiet] <path>...\n"
         "\n"
         "Verifies comptx durability state: <path> is a data directory\n"
         "or an individual .wal/.snap file.  --repair truncates torn WAL\n"
         "tails in place; --dump prints every record.\n"
         "\n"
         "Exit: 0 clean (or repaired), 1 damage found, 2 usage/IO error.\n";
  return code;
}

void DumpRecord(uint64_t lsn, const durability::WalRecord& record) {
  std::cout << "  lsn=" << lsn << " "
            << durability::WalRecordTypeName(record.type)
            << " seq=" << record.seq;
  switch (record.type) {
    case durability::WalRecordType::kOpen:
      std::cout << " options='" << record.options << "'";
      break;
    case durability::WalRecordType::kAppend:
      std::cout << " count=" << record.events.size();
      break;
    case durability::WalRecordType::kSeal:
      std::cout << " accepted=" << record.accepted
                << " rejected=" << record.rejected
                << " certifiable=" << (record.certifiable ? 1 : 0);
      break;
    case durability::WalRecordType::kCommitWatermark:
      std::cout << " commit_through=" << record.commit_through;
      break;
    case durability::WalRecordType::kStreamCursor:
      std::cout << " edge=" << record.edge << " cursor_seq="
                << record.cursor_seq << " mapping_bytes="
                << record.mapping.size();
      break;
    default:
      break;
  }
  std::cout << "\n";
  if (record.type == durability::WalRecordType::kAppend) {
    for (const auto& event : record.events) {
      std::cout << "    " << workload::FormatTraceEvent(event) << "\n";
    }
  }
}

/// Checks one WAL; returns true when the file is (or was made) clean.
bool CheckWal(const std::string& path, const CheckOptions& options) {
  auto scan = durability::ReadWalFile(path);
  if (!scan.ok()) {
    std::cout << path << ": ERROR " << scan.status().message() << "\n";
    return false;
  }
  uint64_t events = 0;
  uint64_t watermark = 0;
  uint64_t stream_cursors = 0;
  // Distinct upstream edges with at least one cursor record, and the
  // furthest durable cursor seen per edge (later records supersede).
  std::map<uint64_t, uint64_t> edge_cursors;
  std::string lifecycle = "live";
  for (const auto& record : scan->records) {
    switch (record.type) {
      case durability::WalRecordType::kAppend:
        events += record.events.size();
        if (!record.events.empty()) {
          watermark =
              std::max<uint64_t>(watermark,
                                 record.seq + record.events.size() - 1);
        }
        break;
      case durability::WalRecordType::kSeal:
        watermark = std::max(watermark, record.seq);
        break;
      case durability::WalRecordType::kEvict:
        lifecycle = "evicted";
        break;
      case durability::WalRecordType::kResume:
        lifecycle = "live";
        break;
      case durability::WalRecordType::kClose:
        lifecycle = "closed";
        break;
      case durability::WalRecordType::kCommitWatermark:
        // A watermark record occupies one event seq slot of its own.
        ++events;
        watermark = std::max(watermark, record.seq);
        break;
      case durability::WalRecordType::kStreamCursor:
        // Does not consume an event seq slot (certifier replay skips
        // it); track the furthest durable cursor per upstream edge.
        ++stream_cursors;
        edge_cursors[record.edge] =
            std::max(edge_cursors[record.edge], record.cursor_seq);
        break;
      case durability::WalRecordType::kOpen:
        break;
    }
  }
  if (!options.quiet || !scan->clean) {
    std::cout << path << ": " << scan->records.size() << " record(s), "
              << events << " event(s), watermark=" << watermark << ", "
              << lifecycle;
    if (stream_cursors > 0) {
      std::cout << ", " << stream_cursors << " stream cursor(s) on "
                << edge_cursors.size() << " edge(s) [";
      bool first = true;
      for (const auto& [edge, cursor] : edge_cursors) {
        if (!first) std::cout << " ";
        first = false;
        std::cout << "edge " << edge << " @" << cursor;
      }
      std::cout << "]";
    }
    if (scan->clean) {
      std::cout << ", clean\n";
    } else {
      std::cout << ", TORN: " << scan->damage << " (truncation lsn="
                << scan->truncation_lsn << ", valid bytes="
                << scan->valid_bytes << ")\n";
    }
  }
  if (options.dump) {
    for (size_t i = 0; i < scan->records.size(); ++i) {
      DumpRecord(i, scan->records[i]);
    }
  }
  if (scan->clean) return true;
  if (!options.repair) return false;
  const Status repaired = durability::RepairWalFile(path, *scan);
  if (!repaired.ok()) {
    std::cout << path << ": repair failed: " << repaired << "\n";
    return false;
  }
  std::cout << path << ": repaired (truncated to " << scan->valid_bytes
            << " bytes)\n";
  return true;
}

bool CheckSnapshot(const std::string& path, const CheckOptions& options) {
  auto snapshot = durability::ReadSnapshotFile(path);
  if (!snapshot.ok()) {
    std::cout << path << ": CORRUPT " << snapshot.status().message()
              << " (snapshots are published atomically; not repairable)\n";
    return false;
  }
  if (!options.quiet) {
    std::cout << path << ": session=" << snapshot->session_id
              << " event_seq=" << snapshot->event_seq
              << " accepted=" << snapshot->state.accepted
              << " rejected=" << snapshot->state.rejected
              << " certifiable=" << (snapshot->state.certifiable ? 1 : 0)
              << " sealed=" << snapshot->state.sealed.size()
              << " trace_bytes=" << snapshot->state.trace.size()
              << ", clean\n";
  }
  if (options.dump) {
    std::cout << "  options='" << snapshot->options << "'\n";
  }
  return true;
}

bool CheckPath(const std::string& path, const CheckOptions& options,
               bool* io_error) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    bool clean = true;
    const auto ids = durability::ListDurableSessionIds(path);
    if (ids.empty() && !options.quiet) {
      std::cout << path << ": no durable sessions\n";
    }
    for (const uint64_t id : ids) {
      const std::string wal = durability::WalPath(path, id);
      const std::string snap = durability::SnapshotPath(path, id);
      if (fs::exists(wal, ec)) clean = CheckWal(wal, options) && clean;
      if (fs::exists(snap, ec)) clean = CheckSnapshot(snap, options) && clean;
    }
    return clean;
  }
  if (!fs::exists(path, ec)) {
    std::cerr << path << ": no such file or directory\n";
    *io_error = true;
    return false;
  }
  if (path.size() > 5 && path.compare(path.size() - 5, 5, ".snap") == 0) {
    return CheckSnapshot(path, options);
  }
  return CheckWal(path, options);
}

}  // namespace

int main(int argc, char** argv) {
  CheckOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      PrintToolVersion("comptx_walcheck");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(0);
    } else if (arg == "--dump") {
      options.dump = true;
    } else if (arg == "--repair") {
      options.repair = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage(2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "no paths given\n";
    return Usage(2);
  }
  bool clean = true;
  bool io_error = false;
  for (const std::string& path : paths) {
    clean = CheckPath(path, options, &io_error) && clean;
  }
  if (io_error) return 2;
  return clean ? 0 : 1;
}
