// Spec linter and static safety analyzer CLI.  Lints comptx trace files
// and witness JSON documents (detected by content: a document whose first
// non-space byte is '{' is a witness) and reports structured diagnostics
// with stable CTX codes.  With --verdict, buildable specs additionally get
// the whole-configuration static safety verdict (SAFE / UNSAFE /
// NEEDS_DYNAMIC) with per-scheduler explanations.
//
// Usage: comptx_lint [--json] [--verdict] [--no-model] [--spec FILE]
//                    <file>...
//
//   --json      machine-readable output (one JSON object per run)
//   --verdict   run the static configuration analyzer on buildable specs
//   --no-model  skip the Def 2-4 model checks (structural lint only)
//   --spec F    lint the "comptx-spec v1" commutativity spec F and, when
//               buildable, attach it while linting the trace files (tags
//               are then checked against its classes, CTX100-CTX108)
//
// Standalone commutativity-spec documents passed as positional files are
// detected by their "comptx-spec v1" header and linted as specs.
//
// Exit codes: 0 = no error diagnostics, 1 = at least one error-severity
// diagnostic in any input, 2 = usage or I/O error.

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/commutativity.h"
#include "core/diagnostic.h"
#include "staticcheck/analyzer.h"
#include "staticcheck/lint.h"
#include "util/version.h"

namespace {

using namespace comptx;  // NOLINT

struct CliOptions {
  bool json = false;
  bool verdict = false;
  bool model_rules = true;

  /// Spec preloaded via --spec, attached while linting every trace file.
  std::optional<CommutativitySpec> spec;
};

struct FileReport {
  std::string path;
  std::vector<Diagnostic> diagnostics;
  bool buildable = false;
  std::string verdict;  // empty when not requested / not buildable
  std::string verdict_text;
};

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

bool LooksLikeJson(const std::string& text) {
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    return c == '{';
  }
  return false;
}

bool LooksLikeCommutativitySpec(const std::string& text) {
  const size_t start = text.find_first_not_of(" \t\n\r");
  return start != std::string::npos &&
         text.compare(start, 14, "comptx-spec v1") == 0;
}

/// A `.spec` path is linted as a commutativity spec even when its header
/// is missing or mangled — that is exactly the case whose diagnostic
/// (CTX100) would otherwise be misreported as a trace-header error.
bool HasSpecExtension(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".spec") == 0;
}

FileReport LintFile(const std::string& path, const std::string& text,
                    const CliOptions& cli) {
  FileReport report;
  report.path = path;
  if (HasSpecExtension(path) || LooksLikeCommutativitySpec(text)) {
    staticcheck::SpecLintResult spec_result = staticcheck::LintSpecText(text);
    report.diagnostics = std::move(spec_result.diagnostics);
    report.buildable = spec_result.buildable;
    return report;
  }
  staticcheck::LintOptions options;
  options.model_rules = cli.model_rules;
  if (cli.spec.has_value()) options.spec = &*cli.spec;
  staticcheck::LintResult result =
      LooksLikeJson(text) ? staticcheck::LintWitnessJson(text, options)
                          : staticcheck::LintTraceText(text, options);
  report.diagnostics = std::move(result.diagnostics);
  report.buildable = result.buildable;
  if (cli.verdict && result.buildable) {
    staticcheck::AnalyzerOptions analyzer_options;
    // The linter already ran the model checks (unless --no-model);
    // re-validating inside the analyzer would double the cost.
    analyzer_options.assume_valid =
        cli.model_rules && !HasErrors(report.diagnostics);
    staticcheck::StaticAnalysis analysis =
        staticcheck::AnalyzeConfiguration(*result.system, analyzer_options);
    report.verdict = staticcheck::SafetyVerdictToString(analysis.verdict);
    report.verdict_text = staticcheck::FormatStaticAnalysis(analysis);
  }
  return report;
}

void PrintText(const FileReport& report) {
  for (const Diagnostic& d : report.diagnostics) {
    std::cout << report.path << ": " << FormatDiagnostic(d) << "\n";
  }
  if (!report.verdict_text.empty()) {
    std::cout << report.path << ": " << report.verdict_text;
  }
}

std::string ToJson(const std::vector<FileReport>& reports, bool failed) {
  std::string out = "{\n\"files\": [";
  for (size_t i = 0; i < reports.size(); ++i) {
    const FileReport& r = reports[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"file\": ";
    AppendJsonString(out, r.path);
    out += ", \"buildable\": ";
    out += r.buildable ? "true" : "false";
    if (!r.verdict.empty()) {
      out += ", \"verdict\": ";
      AppendJsonString(out, r.verdict);
    }
    out += ", \"diagnostics\": ";
    out += FormatDiagnosticsJson(r.diagnostics);
    out += "}";
  }
  out += reports.empty() ? "],\n" : "\n],\n";
  out += "\"errors\": ";
  out += failed ? "true" : "false";
  out += "\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  std::vector<std::string> paths;
  std::string spec_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--version") {
      PrintToolVersion("comptx_lint");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: comptx_lint [--json] [--verdict] [--no-model] "
                   "[--spec FILE] <file>...\n";
      return 0;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--verdict") {
      cli.verdict = true;
    } else if (arg == "--no-model") {
      cli.model_rules = false;
    } else if (arg == "--spec") {
      if (++i >= argc) {
        std::cerr << "--spec requires a file argument\n";
        return 2;
      }
      spec_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() && spec_path.empty()) {
    std::cerr << "usage: comptx_lint [--json] [--verdict] [--no-model] "
                 "[--spec FILE] <file>...\n";
    return 2;
  }

  std::vector<FileReport> reports;
  bool failed = false;
  if (!spec_path.empty()) {
    std::ifstream in(spec_path);
    if (!in) {
      std::cerr << "cannot open " << spec_path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    staticcheck::SpecLintResult spec_result =
        staticcheck::LintSpecText(buffer.str());
    FileReport report;
    report.path = spec_path;
    report.diagnostics = std::move(spec_result.diagnostics);
    report.buildable = spec_result.buildable;
    failed = HasErrors(report.diagnostics);
    reports.push_back(std::move(report));
    if (spec_result.spec.has_value()) {
      cli.spec = std::move(*spec_result.spec);
    }
  }
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    reports.push_back(LintFile(path, buffer.str(), cli));
    failed = failed || HasErrors(reports.back().diagnostics);
  }

  if (cli.json) {
    std::cout << ToJson(reports, failed);
  } else {
    for (const FileReport& report : reports) PrintText(report);
    size_t total = 0;
    for (const FileReport& report : reports) {
      total += report.diagnostics.size();
    }
    std::cout << reports.size() << " file(s), " << total
              << " diagnostic(s), " << (failed ? "errors" : "no errors")
              << "\n";
  }
  return failed ? 1 : 0;
}
