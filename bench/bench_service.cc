// Experiment E13 (DESIGN.md §10 / EXPERIMENTS.md): concurrent
// certification service throughput and verdict latency.
//
// Drives the in-process CertificationServer API (no sockets — the wire
// protocol adds a constant per-frame cost that would only blur the
// worker-scaling signal) with the acceptance configuration: 64 sessions
// fed from 8 client threads, sweeping the worker count 1/2/4/8.  For
// every cell the driver records aggregate events/sec, the p99 of the
// QUERY drain-barrier latency, and verdict agreement with a
// single-threaded batch replay of the same streams.
//
// Scaling expectation: throughput tracks min(workers, cores).  The
// committed BENCH_service.json records hardware_concurrency so flat
// curves on small containers read as what they are (see the note field).
//
// Plain chrono driver (no google-benchmark), same idiom as bench_online:
// one run emits the committed machine-readable BENCH_service.json.
//
// Usage: bench_service [output.json]

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/correctness.h"
#include "service/server.h"
#include "util/logging.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT
using Clock = std::chrono::steady_clock;

constexpr size_t kSessions = 64;
constexpr size_t kClientThreads = 8;
constexpr size_t kAppendChunk = 32;

std::vector<workload::TraceEvent> MakeEvents(uint32_t roots, uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.15;
  spec.execution.intra_weak_prob = 0.2;
  auto cs = workload::GenerateSystem(spec, seed);
  COMPTX_CHECK(cs.ok()) << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  COMPTX_CHECK(text.ok());
  auto events = workload::ParseTraceEvents(*text);
  COMPTX_CHECK(events.ok());
  return std::move(events).value();
}

bool BatchVerdict(const std::vector<workload::TraceEvent>& events) {
  CompositeSystem cs;
  for (const auto& event : events) {
    COMPTX_CHECK_OK(workload::ApplyTraceEvent(cs, event));
  }
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  auto result = CheckCompC(cs, options);
  COMPTX_CHECK(result.ok()) << result.status().ToString();
  return result->correct;
}

struct Cell {
  size_t workers = 0;
  size_t events = 0;
  double load_seconds = 0;
  double events_per_second = 0;
  uint64_t append_p50_us = 0;
  uint64_t append_p99_us = 0;
  uint64_t verdict_p50_us = 0;
  uint64_t verdict_p99_us = 0;
  size_t mismatches = 0;
};

Cell RunCell(size_t workers,
             const std::vector<std::vector<workload::TraceEvent>>& streams,
             const std::vector<bool>& expected) {
  Cell cell;
  cell.workers = workers;

  service::ServerOptions options;
  options.workers = workers;
  options.batch_size = 64;
  options.session.queue_capacity = 1024;
  service::CertificationServer server(options);

  std::vector<uint64_t> ids(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    auto session = server.Open();
    COMPTX_CHECK(session.ok()) << session.status().ToString();
    ids[s] = *session;
    cell.events += streams[s].size();
  }

  // Load phase: each client thread owns a disjoint slice of sessions and
  // round-robins small chunks across them (in-process Append is a
  // synchronous enqueue, so per-session order needs per-session
  // ownership).  Append latency here = enqueue + possible backpressure.
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<size_t> cursors(kSessions, 0);
      bool progress = true;
      while (progress) {
        progress = false;
        for (size_t s = t; s < kSessions; s += kClientThreads) {
          const auto& stream = streams[s];
          size_t& cursor = cursors[s];
          if (cursor >= stream.size()) continue;
          const size_t n = std::min(kAppendChunk, stream.size() - cursor);
          std::vector<workload::TraceEvent> chunk(
              stream.begin() + cursor, stream.begin() + cursor + n);
          cursor += n;
          COMPTX_CHECK_OK(server.Append(ids[s], std::move(chunk)));
          progress = true;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Verdict phase: QUERY every session (the drain barrier — this is the
  // latency a caller waiting for a verdict actually pays).
  for (size_t s = 0; s < kSessions; ++s) {
    auto verdict = server.Query(ids[s]);
    COMPTX_CHECK(verdict.ok()) << verdict.status().ToString();
    if (verdict->certifiable != expected[s]) ++cell.mismatches;
  }
  cell.load_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  cell.events_per_second =
      cell.load_seconds > 0 ? double(cell.events) / cell.load_seconds : 0;

  const auto append_snap = server.metrics().append_latency.Snap();
  const auto verdict_snap = server.metrics().verdict_latency.Snap();
  cell.append_p50_us = append_snap.p50;
  cell.append_p99_us = append_snap.p99;
  cell.verdict_p50_us = verdict_snap.p50;
  cell.verdict_p99_us = verdict_snap.p99;
  server.Shutdown();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_service.json";

  // One fixed workload for every cell, so the sweep varies only the
  // worker count.  Ground truth is computed once, single-threaded.
  std::vector<std::vector<workload::TraceEvent>> streams(kSessions);
  std::vector<bool> expected(kSessions);
  size_t total_events = 0;
  for (size_t s = 0; s < kSessions; ++s) {
    streams[s] = MakeEvents(4 + s % 5, 4200 + s);
    expected[s] = BatchVerdict(streams[s]);
    total_events += streams[s].size();
  }
  std::cout << "sessions=" << kSessions << " client_threads="
            << kClientThreads << " total_events=" << total_events << "\n";

  const std::vector<size_t> worker_counts = {1, 2, 4, 8};
  std::vector<Cell> cells;
  size_t total_mismatches = 0;
  for (size_t workers : worker_counts) {
    // Best of 3 to damp scheduler noise (mismatches from any pass count).
    Cell best;
    for (int rep = 0; rep < 3; ++rep) {
      Cell cell = RunCell(workers, streams, expected);
      total_mismatches += cell.mismatches;
      if (rep == 0 || cell.events_per_second > best.events_per_second) {
        best = cell;
      }
    }
    cells.push_back(best);
    std::cout << "workers=" << best.workers
              << " events_per_second=" << best.events_per_second
              << " append_p99_us=" << best.append_p99_us
              << " verdict_p99_us=" << best.verdict_p99_us
              << " mismatches=" << best.mismatches << "\n";
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const double scaling =
      cells.front().events_per_second > 0
          ? cells.back().events_per_second / cells.front().events_per_second
          : 0;

  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"E13_certification_service\",\n"
       << "  \"sessions\": " << kSessions << ",\n"
       << "  \"client_threads\": " << kClientThreads << ",\n"
       << "  \"total_events\": " << total_events << ",\n"
       << "  \"hardware_concurrency\": " << cores << ",\n"
       << "  \"note\": \"throughput scales with min(workers, cores); on a "
          "single-core container the worker sweep is flat by construction\","
          "\n"
       << "  \"worker_scaling_8x_over_1x\": " << scaling << ",\n"
       << "  \"all_verdicts_match_batch_replay\": "
       << (total_mismatches == 0 ? "true" : "false") << ",\n"
       << "  \"rows\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"workers\": " << c.workers
         << ", \"events\": " << c.events
         << ", \"load_seconds\": " << c.load_seconds
         << ", \"events_per_second\": " << c.events_per_second
         << ", \"append_p50_us\": " << c.append_p50_us
         << ", \"append_p99_us\": " << c.append_p99_us
         << ", \"verdict_p50_us\": " << c.verdict_p50_us
         << ", \"verdict_p99_us\": " << c.verdict_p99_us
         << ", \"mismatches\": " << c.mismatches << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return total_mismatches == 0 ? 0 : 1;
}
