// Experiment E13 (DESIGN.md §10/§12, EXPERIMENTS.md): certification
// service throughput and verdict latency over the real wire.
//
// Unlike the first E13 cut (in-process API, worker sweep), this drives
// the server through TCP loopback with service::ServiceClient, so every
// cell pays the full path: framing, epoll event loop, handler pool,
// session run queues.  Two suites:
//
//   protocol — fixed thread counts, sweeping (protocol, batch):
//       v1/b1, v1/b32, v2/b1, v2/b16, v2/b64.
//     v1/b1 is the old one-event-per-APPEND baseline; v2/b16+ shows what
//     BATCH_APPEND's one-enqueue-one-WAL-commit amortization buys.  This
//     suite is meaningful on any core count (client and server serialize
//     on the same RPC either way).
//
//   scaling — v2/b32, sweeping I/O threads 1/2/4/8 at fixed workers.
//     Throughput tracks min(io_threads, cores), so on a machine with
//     fewer cores than the largest sweep point the curve is flat by
//     construction; the bench refuses to measure it and instead emits a
//     structured scaling_refusal artifact with an empty row set, so the
//     refusal itself is machine-readable rather than a misleading curve.
//
// Every row records hardware_concurrency, protocol, and batch, and every
// cell's verdicts are checked against a single-threaded batch replay.
//
// Usage: bench_service [--mode protocol|scaling|all] [output.json]
//   Default mode: all.  When the machine is too small, scaling rows are
//   skipped with the reason recorded in the JSON; --mode scaling on such
//   a machine writes the refusal-only artifact and exits 0 without
//   opening a socket or generating a workload.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/correctness.h"
#include "service/client.h"
#include "service/server.h"
#include "util/logging.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT
using Clock = std::chrono::steady_clock;

constexpr size_t kSessions = 64;
constexpr size_t kClientThreads = 8;

std::vector<workload::TraceEvent> MakeEvents(uint32_t roots, uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.15;
  spec.execution.intra_weak_prob = 0.2;
  auto cs = workload::GenerateSystem(spec, seed);
  COMPTX_CHECK(cs.ok()) << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  COMPTX_CHECK(text.ok());
  auto events = workload::ParseTraceEvents(*text);
  COMPTX_CHECK(events.ok());
  return std::move(events).value();
}

bool BatchVerdict(const std::vector<workload::TraceEvent>& events) {
  CompositeSystem cs;
  for (const auto& event : events) {
    COMPTX_CHECK_OK(workload::ApplyTraceEvent(cs, event));
  }
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  auto result = CheckCompC(cs, options);
  COMPTX_CHECK(result.ok()) << result.status().ToString();
  return result->correct;
}

struct Cell {
  std::string suite;
  service::WireProtocol protocol = service::WireProtocol::kV1;
  size_t batch = 1;
  size_t io_threads = 2;
  size_t workers = 2;
  size_t events = 0;
  double load_seconds = 0;
  double events_per_second = 0;
  uint64_t append_p50_us = 0;
  uint64_t append_p99_us = 0;
  uint64_t verdict_p50_us = 0;
  uint64_t verdict_p99_us = 0;
  size_t mismatches = 0;
};

/// One full server lifecycle: listen on an ephemeral loopback port, open
/// kSessions over the wire, stream every event from kClientThreads
/// connections in `cell.batch`-sized APPENDs, QUERY every verdict, shut
/// down.  Client-side RPC latency lands in the cell's percentiles.
void RunCell(Cell& cell,
             const std::vector<std::vector<workload::TraceEvent>>& streams,
             const std::vector<bool>& expected) {
  service::ServerOptions options;
  options.workers = cell.workers;
  options.io_threads = cell.io_threads;
  options.batch_size = 64;
  options.session.queue_capacity = 1024;
  service::CertificationServer server(options);
  service::Endpoint endpoint;  // 127.0.0.1, kernel-chosen port
  COMPTX_CHECK_OK(server.Listen(endpoint));

  auto control = service::ServiceClient::Dial(endpoint, cell.protocol);
  COMPTX_CHECK(control.ok()) << control.status().ToString();
  std::vector<uint64_t> ids(kSessions);
  cell.events = 0;
  for (size_t s = 0; s < kSessions; ++s) {
    auto session = control->Open();
    COMPTX_CHECK(session.ok()) << session.status().ToString();
    ids[s] = *session;
    cell.events += streams[s].size();
  }

  // Load phase: each client thread owns a disjoint slice of sessions
  // (per-session order needs per-session ownership) and round-robins
  // batch-sized APPENDs across its slice over its own connection.
  service::LatencyHistogram append_hist;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      auto client = service::ServiceClient::Dial(endpoint, cell.protocol);
      COMPTX_CHECK(client.ok()) << client.status().ToString();
      std::vector<size_t> cursors(kSessions, 0);
      bool progress = true;
      while (progress) {
        progress = false;
        for (size_t s = t; s < kSessions; s += kClientThreads) {
          const auto& stream = streams[s];
          size_t& cursor = cursors[s];
          if (cursor >= stream.size()) continue;
          const size_t n = std::min(cell.batch, stream.size() - cursor);
          std::vector<workload::TraceEvent> chunk(
              stream.begin() + cursor, stream.begin() + cursor + n);
          cursor += n;
          const Clock::time_point rpc_start = Clock::now();
          auto queued = client->Append(ids[s], chunk);
          COMPTX_CHECK(queued.ok()) << queued.status().ToString();
          append_hist.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - rpc_start)
                  .count()));
          progress = true;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Verdict phase: QUERY every session (the drain barrier — this is the
  // latency a caller waiting for a verdict actually pays).
  service::LatencyHistogram verdict_hist;
  for (size_t s = 0; s < kSessions; ++s) {
    const Clock::time_point rpc_start = Clock::now();
    auto verdict = control->Query(ids[s]);
    verdict_hist.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              rpc_start)
            .count()));
    COMPTX_CHECK(verdict.ok()) << verdict.status().ToString();
    if (verdict->certifiable != expected[s]) ++cell.mismatches;
  }
  cell.load_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  cell.events_per_second =
      cell.load_seconds > 0 ? double(cell.events) / cell.load_seconds : 0;

  const auto append_snap = append_hist.Snap();
  const auto verdict_snap = verdict_hist.Snap();
  cell.append_p50_us = append_snap.p50;
  cell.append_p99_us = append_snap.p99;
  cell.verdict_p50_us = verdict_snap.p50;
  cell.verdict_p99_us = verdict_snap.p99;
  server.Shutdown();
}

Cell BestOf3(Cell proto,
             const std::vector<std::vector<workload::TraceEvent>>& streams,
             const std::vector<bool>& expected, size_t* total_mismatches) {
  Cell best;
  for (int rep = 0; rep < 3; ++rep) {
    Cell cell = proto;
    RunCell(cell, streams, expected);
    *total_mismatches += cell.mismatches;
    if (rep == 0 || cell.events_per_second > best.events_per_second) {
      best = cell;
    }
  }
  return best;
}

void PrintCell(const Cell& c) {
  std::cout << c.suite << ": protocol="
            << service::WireProtocolToString(c.protocol)
            << " batch=" << c.batch << " io_threads=" << c.io_threads
            << " events_per_second=" << c.events_per_second
            << " append_p99_us=" << c.append_p99_us
            << " verdict_p99_us=" << c.verdict_p99_us
            << " mismatches=" << c.mismatches << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "all";
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = argv[++i];
    } else {
      out_path = argv[i];
    }
  }
  if (mode != "protocol" && mode != "scaling" && mode != "all") {
    std::cerr << "unknown --mode " << mode
              << " (want protocol, scaling or all)\n";
    return 2;
  }

  const unsigned cores = std::thread::hardware_concurrency();
  const std::vector<size_t> io_sweep = {1, 2, 4, 8};
  const size_t largest_sweep = io_sweep.back();
  std::string scaling_skipped;
  if (cores < largest_sweep) {
    std::ostringstream why;
    why << "detected hardware_concurrency=" << cores
        << " but the I/O-thread sweep needs at least " << largest_sweep
        << " cores; the curve would be flat by construction, not a "
           "measurement";
    scaling_skipped = why.str();
  }
  if (mode == "scaling" && !scaling_skipped.empty()) {
    // Not an error: a too-small machine is a property of the environment,
    // not a misuse of the tool.  Emit the refusal as a structured
    // artifact with an empty row set and exit 0, so CI jobs that archive
    // the JSON keep working and downstream tooling can tell "too small a
    // machine" from "forgot to run the suite".  No sockets are opened
    // and no workload is generated on this path.
    std::cout << "scaling suite skipped: " << scaling_skipped << "\n";
    std::ostringstream refusal;
    refusal << "{\n"
            << "  \"experiment\": \"E13_certification_service\",\n"
            << "  \"transport\": \"tcp_loopback\",\n"
            << "  \"hardware_concurrency\": " << cores << ",\n"
            << "  \"scaling_refusal\": {\"detected_hardware_concurrency\": "
            << cores << ", \"minimum_required\": " << largest_sweep
            << ", \"reason\": \"" << scaling_skipped << "\"},\n"
            << "  \"rows\": [\n  ]\n}\n";
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << refusal.str();
    std::cout << "wrote " << out_path << "\n";
    return 0;
  }

  // One fixed workload for every cell, so a sweep varies exactly one
  // knob.  Ground truth is computed once, single-threaded.
  std::vector<std::vector<workload::TraceEvent>> streams(kSessions);
  std::vector<bool> expected(kSessions);
  size_t total_events = 0;
  for (size_t s = 0; s < kSessions; ++s) {
    streams[s] = MakeEvents(4 + s % 5, 4200 + s);
    expected[s] = BatchVerdict(streams[s]);
    total_events += streams[s].size();
  }
  std::cout << "sessions=" << kSessions << " client_threads="
            << kClientThreads << " total_events=" << total_events
            << " cores=" << cores << "\n";

  std::vector<Cell> cells;
  size_t total_mismatches = 0;

  if (mode == "protocol" || mode == "all") {
    struct ProtocolPoint {
      service::WireProtocol protocol;
      size_t batch;
    };
    const std::vector<ProtocolPoint> points = {
        {service::WireProtocol::kV1, 1},
        {service::WireProtocol::kV1, 32},
        {service::WireProtocol::kV2, 1},
        {service::WireProtocol::kV2, 16},
        {service::WireProtocol::kV2, 64},
    };
    for (const ProtocolPoint& p : points) {
      Cell proto;
      proto.suite = "protocol";
      proto.protocol = p.protocol;
      proto.batch = p.batch;
      proto.io_threads = 2;
      proto.workers = 2;
      Cell best = BestOf3(proto, streams, expected, &total_mismatches);
      PrintCell(best);
      cells.push_back(best);
    }
  }

  if ((mode == "scaling" || mode == "all") && scaling_skipped.empty()) {
    for (size_t io : io_sweep) {
      Cell proto;
      proto.suite = "scaling";
      proto.protocol = service::WireProtocol::kV2;
      proto.batch = 32;
      proto.io_threads = io;
      proto.workers = 4;
      Cell best = BestOf3(proto, streams, expected, &total_mismatches);
      PrintCell(best);
      cells.push_back(best);
    }
  } else if (mode == "all" && !scaling_skipped.empty()) {
    std::cout << "scaling suite skipped: " << scaling_skipped << "\n";
  }

  // Headline ratios for the two acceptance curves.
  const auto find = [&](const std::string& suite, service::WireProtocol p,
                        size_t batch, size_t io) -> const Cell* {
    for (const Cell& c : cells) {
      if (c.suite == suite && c.protocol == p && c.batch == batch &&
          c.io_threads == io) {
        return &c;
      }
    }
    return nullptr;
  };
  const Cell* v1_base =
      find("protocol", service::WireProtocol::kV1, 1, 2);
  const Cell* v2_b16 =
      find("protocol", service::WireProtocol::kV2, 16, 2);
  const double batch_speedup =
      (v1_base != nullptr && v2_b16 != nullptr &&
       v1_base->events_per_second > 0)
          ? v2_b16->events_per_second / v1_base->events_per_second
          : 0;
  const Cell* io1 = find("scaling", service::WireProtocol::kV2, 32, 1);
  const Cell* io8 = find("scaling", service::WireProtocol::kV2, 32, 8);
  const double io_scaling =
      (io1 != nullptr && io8 != nullptr && io1->events_per_second > 0)
          ? io8->events_per_second / io1->events_per_second
          : 0;

  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"E13_certification_service\",\n"
       << "  \"transport\": \"tcp_loopback\",\n"
       << "  \"sessions\": " << kSessions << ",\n"
       << "  \"client_threads\": " << kClientThreads << ",\n"
       << "  \"total_events\": " << total_events << ",\n"
       << "  \"hardware_concurrency\": " << cores << ",\n"
       << "  \"v2_batch16_speedup_over_v1_single\": " << batch_speedup
       << ",\n"
       << "  \"io_thread_scaling_8x_over_1x\": " << io_scaling << ",\n";
  if (!scaling_skipped.empty()) {
    // The refusal is an artifact row of its own: downstream tooling can
    // tell "too small a machine" from "forgot to run the suite".
    json << "  \"scaling_refusal\": {\"detected_hardware_concurrency\": "
         << cores << ", \"minimum_required\": " << largest_sweep
         << ", \"reason\": \"" << scaling_skipped << "\"},\n";
  }
  json << "  \"all_verdicts_match_batch_replay\": "
       << (total_mismatches == 0 ? "true" : "false") << ",\n"
       << "  \"rows\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"suite\": \"" << c.suite << "\", \"protocol\": \""
         << service::WireProtocolToString(c.protocol)
         << "\", \"batch\": " << c.batch
         << ", \"io_threads\": " << c.io_threads
         << ", \"workers\": " << c.workers
         << ", \"hardware_concurrency\": " << cores
         << ", \"events\": " << c.events
         << ", \"load_seconds\": " << c.load_seconds
         << ", \"events_per_second\": " << c.events_per_second
         << ", \"append_p50_us\": " << c.append_p50_us
         << ", \"append_p99_us\": " << c.append_p99_us
         << ", \"verdict_p50_us\": " << c.verdict_p50_us
         << ", \"verdict_p99_us\": " << c.verdict_p99_us
         << ", \"mismatches\": " << c.mismatches << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return total_mismatches == 0 ? 0 : 1;
}
