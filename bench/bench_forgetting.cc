// Experiment E8 (DESIGN.md): the forgetting ablation.
//
// The distinctive rule of the paper's observed order (Def 10.3): an order
// pulled up to a pair of operations whose common schedule declares them
// non-conflicting is dropped.  This bench measures what that rule buys:
// Comp-C acceptance with forgetting on vs. off (the "off" variant is
// conventional multilevel pull-everything-up semantics), plus the
// independent hierarchical oracle as the semantic upper bound.
//
// Expected shape: forgetting strictly increases acceptance at every
// contention level, approaching the oracle; with forgetting off, Comp-C
// collapses towards LLSR.

#include <iostream>

#include "analysis/stats.h"
#include "core/correctness.h"
#include "criteria/llsr.h"
#include "criteria/oracle.h"
#include "util/logging.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT

}  // namespace

int main() {
  constexpr int kTrials = 300;
  std::cout << "E8: semantic-commutativity (forgetting) ablation ("
            << kTrials << " executions per cell; layered DAG)\n\n";
  analysis::TextTable table({"conflict", "llsr", "comp_c_no_forget",
                             "comp_c", "oracle", "gain(forgetting)"});
  bool monotone = true;
  for (double conflict : {0.05, 0.1, 0.15, 0.2, 0.3}) {
    analysis::RateCounter llsr, no_forget, comp_c, oracle;
    for (int seed = 1; seed <= kTrials; ++seed) {
      workload::WorkloadSpec spec;
      spec.topology.kind = workload::TopologyKind::kLayeredDag;
      spec.topology.depth = 3;
      spec.topology.branches = 2;
      spec.topology.roots = 3;
      spec.execution.conflict_prob = conflict;
      spec.execution.disorder_prob = 0.6;
      auto cs = workload::GenerateSystem(spec, uint64_t(seed));
      COMPTX_CHECK(cs.ok()) << cs.status().ToString();

      llsr.Add(criteria::IsLevelByLevelSerializable(*cs));

      ReductionOptions ablated;
      ablated.forgetting = false;
      ablated.keep_fronts = false;
      auto without = RunReduction(*cs, ablated);
      COMPTX_CHECK(without.ok());
      no_forget.Add(without->comp_c);

      const bool accepted = IsCompC(*cs);
      comp_c.Add(accepted);
      auto truth = criteria::HierarchicalSerializabilityOracle(*cs);
      COMPTX_CHECK(truth.ok());
      oracle.Add(*truth);
      // Sanity: forgetting can only widen acceptance, and Comp-C stays
      // sound w.r.t. the oracle.
      if (without->comp_c && !accepted) monotone = false;
      if (accepted && !*truth) monotone = false;
    }
    table.AddRow(
        {analysis::FormatDouble(conflict, 2),
         analysis::FormatDouble(llsr.rate()),
         analysis::FormatDouble(no_forget.rate()),
         analysis::FormatDouble(comp_c.rate()),
         analysis::FormatDouble(oracle.rate()),
         analysis::FormatDouble(comp_c.rate() - no_forget.rate())});
  }
  std::cout << table.ToString() << "\n";
  std::cout << (monotone
                    ? "RESULT: forgetting strictly widens acceptance and "
                      "never exceeds the semantic oracle (soundness).\n"
                    : "RESULT: MONOTONICITY VIOLATED — bug!\n");
  return monotone ? 0 : 1;
}
