// Experiments E1-E3 (DESIGN.md): machine-checked Theorems 2-4.
//
// For each special configuration (stack, fork, join) and a sweep of
// workload parameters, generate valid random executions and compare the
// special-case criterion (SCC / FCC / JCC) with the general Comp-C
// decision procedure.  The paper proves the agreement must be exact; the
// table reports the measured agreement rate (expected: 1.000 everywhere)
// together with the acceptance rate, so the sweep is visibly exercising
// both accepted and rejected executions.

#include <iostream>

#include "analysis/stats.h"
#include "core/correctness.h"
#include "criteria/fcc.h"
#include "criteria/jcc.h"
#include "criteria/scc.h"
#include "util/logging.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT

struct SweepResult {
  analysis::RateCounter agreement;
  analysis::RateCounter acceptance;
};

SweepResult Sweep(workload::TopologyKind kind, double conflict,
                  double disorder, int trials) {
  SweepResult out;
  for (int seed = 1; seed <= trials; ++seed) {
    workload::WorkloadSpec spec;
    spec.topology.kind = kind;
    spec.topology.depth = 3;
    spec.topology.branches = 3;
    spec.topology.roots = 4;
    spec.topology.fanout = 2;
    spec.execution.conflict_prob = conflict;
    spec.execution.disorder_prob = disorder;
    auto cs = workload::GenerateSystem(spec, uint64_t(seed));
    COMPTX_CHECK(cs.ok()) << cs.status().ToString();
    bool special = false;
    switch (kind) {
      case workload::TopologyKind::kStack: {
        auto verdict = criteria::IsStackConflictConsistent(*cs);
        COMPTX_CHECK(verdict.ok());
        special = *verdict;
        break;
      }
      case workload::TopologyKind::kFork: {
        auto verdict = criteria::IsForkConflictConsistent(*cs);
        COMPTX_CHECK(verdict.ok());
        special = *verdict;
        break;
      }
      case workload::TopologyKind::kJoin: {
        auto verdict = criteria::IsJoinConflictConsistent(*cs);
        COMPTX_CHECK(verdict.ok());
        special = *verdict;
        break;
      }
      default:
        COMPTX_CHECK(false);
    }
    const bool comp_c = IsCompC(*cs);
    out.agreement.Add(special == comp_c);
    out.acceptance.Add(comp_c);
  }
  return out;
}

}  // namespace

int main() {
  constexpr int kTrials = 200;
  struct Row {
    const char* experiment;
    workload::TopologyKind kind;
    const char* theorem;
  };
  const Row rows[] = {
      {"E1", workload::TopologyKind::kStack, "Thm 2: SCC <=> Comp-C"},
      {"E2", workload::TopologyKind::kFork, "Thm 3: FCC <=> Comp-C"},
      {"E3", workload::TopologyKind::kJoin, "Thm 4: JCC <=> Comp-C"},
  };
  std::cout << "E1-E3: theorem validation on random executions ("
            << kTrials << " trials per cell)\n\n";
  analysis::TextTable table({"exp", "topology", "conflict", "disorder",
                             "acceptance", "agreement", "theorem"});
  bool all_exact = true;
  for (const Row& row : rows) {
    for (double conflict : {0.1, 0.4, 0.8}) {
      for (double disorder : {0.0, 0.5}) {
        SweepResult result =
            Sweep(row.kind, conflict, disorder, kTrials);
        table.AddRow({row.experiment,
                      workload::TopologyKindToString(row.kind),
                      analysis::FormatDouble(conflict, 1),
                      analysis::FormatDouble(disorder, 1),
                      analysis::FormatDouble(result.acceptance.rate()),
                      analysis::FormatDouble(result.agreement.rate()),
                      row.theorem});
        if (result.agreement.rate() != 1.0) all_exact = false;
      }
    }
  }
  std::cout << table.ToString() << "\n";
  std::cout << (all_exact
                    ? "RESULT: agreement exactly 1.000 in every cell, as "
                      "Theorems 2-4 require.\n"
                    : "RESULT: DISAGREEMENT FOUND — engine bug!\n");
  return all_exact ? 0 : 1;
}
