// Experiment E14 (DESIGN.md §11 / EXPERIMENTS.md): durability cost and
// recovery speed.
//
// Sweeps the fsync policy (none / interval / always) against the
// snapshot cadence (0 = WAL only, 2048 = snapshot+compact) on the
// in-process CertificationServer with durability enabled, measuring for
// every cell:
//
//   * ingest throughput (events/sec) under the durability tax,
//   * the WAL counters (bytes written, fsyncs issued, snapshots taken),
//   * recovery_ms — wall time for a fresh server to rebuild every
//     session from the cell's data dir (the crash-restart path), and
//   * verdict agreement between every recovered session and a
//     single-threaded batch replay (must be exact; the run exits 1
//     otherwise).
//
// Expectation: `always` pays per-batch group-commit fsyncs (slowest,
// zero acked loss on power failure), `interval` pays a handful per
// second, `none` pays none.  Snapshots cost a little during load and
// buy back recovery time by replacing replay with restore+suffix.
//
// Plain chrono driver, same idiom as bench_online/bench_service: one run
// emits the committed machine-readable BENCH_wal.json.
//
// Usage: bench_wal [output.json]

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/correctness.h"
#include "durability/wal.h"
#include "service/server.h"
#include "util/logging.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

constexpr size_t kSessions = 16;
constexpr size_t kClientThreads = 4;
constexpr size_t kAppendChunk = 32;

std::vector<workload::TraceEvent> MakeEvents(uint32_t roots, uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.15;
  spec.execution.intra_weak_prob = 0.2;
  auto cs = workload::GenerateSystem(spec, seed);
  COMPTX_CHECK(cs.ok()) << cs.status().ToString();
  auto text = workload::SaveTrace(*cs);
  COMPTX_CHECK(text.ok());
  auto events = workload::ParseTraceEvents(*text);
  COMPTX_CHECK(events.ok());
  return std::move(events).value();
}

bool BatchVerdict(const std::vector<workload::TraceEvent>& events) {
  CompositeSystem cs;
  for (const auto& event : events) {
    (void)workload::ApplyTraceEvent(cs, event);
  }
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  auto result = CheckCompC(cs, options);
  COMPTX_CHECK(result.ok()) << result.status().ToString();
  return result->correct;
}

struct Cell {
  durability::FsyncPolicy policy = durability::FsyncPolicy::kNone;
  uint64_t snapshot_events = 0;
  size_t events = 0;
  double load_seconds = 0;
  double events_per_second = 0;
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t snapshots_written = 0;
  double recovery_ms = 0;
  uint64_t sessions_recovered = 0;
  size_t mismatches = 0;
};

Cell RunCell(durability::FsyncPolicy policy, uint64_t snapshot_events,
             const std::vector<std::vector<workload::TraceEvent>>& streams,
             const std::vector<bool>& expected, const fs::path& dir) {
  Cell cell;
  cell.policy = policy;
  cell.snapshot_events = snapshot_events;

  fs::remove_all(dir);
  service::ServerOptions options;
  options.workers = 4;
  options.durability.dir = dir.string();
  options.durability.fsync = policy;
  options.durability.fsync_interval_ms = 5;
  options.durability.snapshot_events = snapshot_events;

  std::vector<uint64_t> ids(streams.size());
  {
    service::CertificationServer server(options);
    COMPTX_CHECK(server.InitStatus().ok()) << server.InitStatus().ToString();
    for (size_t s = 0; s < streams.size(); ++s) {
      auto id = server.Open();
      COMPTX_CHECK(id.ok()) << id.status().ToString();
      ids[s] = *id;
      cell.events += streams[s].size();
    }

    const Clock::time_point start = Clock::now();
    std::vector<std::thread> clients;
    for (size_t t = 0; t < kClientThreads; ++t) {
      clients.emplace_back([&, t] {
        for (size_t s = t; s < streams.size(); s += kClientThreads) {
          const auto& events = streams[s];
          for (size_t cursor = 0; cursor < events.size();) {
            const size_t n =
                std::min(kAppendChunk, events.size() - cursor);
            Status queued = server.Append(
                ids[s], {events.begin() + cursor,
                         events.begin() + cursor + n});
            COMPTX_CHECK(queued.ok()) << queued.ToString();
            cursor += n;
          }
        }
      });
    }
    for (auto& client : clients) client.join();
    for (const uint64_t id : ids) {
      COMPTX_CHECK(server.Query(id).ok());  // drain barrier per session
    }
    cell.load_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    cell.events_per_second =
        cell.load_seconds > 0 ? double(cell.events) / cell.load_seconds : 0;
    const durability::Counters& counters = server.metrics().durability;
    cell.wal_appends = counters.wal_appends.load();
    cell.wal_bytes = counters.wal_bytes.load();
    cell.fsyncs = counters.fsyncs.load();
    cell.snapshots_written = counters.snapshots_written.load();
    server.Shutdown();  // graceful: persists every session
  }

  // Crash-restart path: a fresh server rebuilds every session from the
  // cell's data dir; its verdicts must match the batch oracle.
  const Clock::time_point restart = Clock::now();
  service::CertificationServer recovered(options);
  cell.recovery_ms =
      std::chrono::duration<double>(Clock::now() - restart).count() * 1e3;
  COMPTX_CHECK(recovered.InitStatus().ok())
      << recovered.InitStatus().ToString();
  cell.sessions_recovered =
      recovered.metrics().durability.sessions_recovered.load();
  for (size_t s = 0; s < streams.size(); ++s) {
    auto verdict = recovered.Query(ids[s]);
    if (!verdict.ok() || verdict->certifiable != expected[s] ||
        verdict->events_accepted + verdict->events_rejected !=
            streams[s].size()) {
      ++cell.mismatches;
      std::cerr << "MISMATCH session " << ids[s] << " under "
                << durability::FsyncPolicyName(cell.policy) << "/"
                << cell.snapshot_events << "\n";
      continue;
    }
    COMPTX_CHECK(recovered.Close(ids[s]).ok());
  }
  recovered.Shutdown();
  fs::remove_all(dir);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_wal.json";
  const fs::path dir =
      fs::temp_directory_path() /
      ("comptx_bench_wal_" + std::to_string(::getpid()));

  // One fixed workload for every cell, so rows differ only in policy.
  std::vector<std::vector<workload::TraceEvent>> streams;
  std::vector<bool> expected;
  size_t total_events = 0;
  for (size_t s = 0; s < kSessions; ++s) {
    streams.push_back(MakeEvents(24, 5000 + s));
    expected.push_back(BatchVerdict(streams.back()));
    total_events += streams.back().size();
  }

  const durability::FsyncPolicy policies[] = {durability::FsyncPolicy::kNone,
                                              durability::FsyncPolicy::kInterval,
                                              durability::FsyncPolicy::kAlways};
  const uint64_t cadences[] = {0, 2048};

  std::vector<Cell> cells;
  size_t total_mismatches = 0;
  for (const durability::FsyncPolicy policy : policies) {
    for (const uint64_t cadence : cadences) {
      Cell best;
      for (int rep = 0; rep < 3; ++rep) {
        Cell cell = RunCell(policy, cadence, streams, expected, dir);
        total_mismatches += cell.mismatches;
        if (rep == 0 || cell.events_per_second > best.events_per_second) {
          best = cell;
        }
      }
      cells.push_back(best);
      std::cout << "fsync=" << durability::FsyncPolicyName(best.policy)
                << " snapshot_events=" << best.snapshot_events
                << " events_per_second=" << best.events_per_second
                << " fsyncs=" << best.fsyncs
                << " wal_bytes=" << best.wal_bytes
                << " recovery_ms=" << best.recovery_ms
                << " mismatches=" << best.mismatches << "\n";
    }
  }
  fs::remove_all(dir);

  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"E14_wal_durability\",\n"
       << "  \"sessions\": " << kSessions << ",\n"
       << "  \"client_threads\": " << kClientThreads << ",\n"
       << "  \"total_events\": " << total_events << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"note\": \"every row restarts a fresh server on the cell's "
          "data dir and replays; recovery_ms covers the full rebuild, "
          "mismatches compares recovered verdicts to the batch oracle\",\n"
       << "  \"all_recovered_verdicts_match_batch_replay\": "
       << (total_mismatches == 0 ? "true" : "false") << ",\n"
       << "  \"rows\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"fsync\": \"" << durability::FsyncPolicyName(c.policy)
         << "\", \"snapshot_events\": " << c.snapshot_events
         << ", \"events\": " << c.events
         << ", \"load_seconds\": " << c.load_seconds
         << ", \"events_per_second\": " << c.events_per_second
         << ", \"wal_appends\": " << c.wal_appends
         << ", \"wal_bytes\": " << c.wal_bytes
         << ", \"fsyncs\": " << c.fsyncs
         << ", \"snapshots_written\": " << c.snapshots_written
         << ", \"recovery_ms\": " << c.recovery_ms
         << ", \"sessions_recovered\": " << c.sessions_recovered
         << ", \"mismatches\": " << c.mismatches << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return total_mismatches == 0 ? 0 : 1;
}
