// Microbenchmarks of the dense relation engine against the layout it
// replaced (std::map<uint32_t, std::set<uint32_t>>): insertion, membership
// probes, full iteration, and the closure-materialization pattern that
// dominates SystemContext construction.

#include <benchmark/benchmark.h>

#include <map>
#include <set>
#include <vector>

#include "core/indexing.h"
#include "core/relation.h"
#include "util/rng.h"

namespace {

using namespace comptx;  // NOLINT

std::vector<std::pair<uint32_t, uint32_t>> RandomPairs(size_t count,
                                                       uint32_t id_space,
                                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pairs.emplace_back(uint32_t(rng.UniformInt(id_space)),
                       uint32_t(rng.UniformInt(id_space)));
  }
  return pairs;
}

void BM_DenseAdd(benchmark::State& state) {
  const auto pairs = RandomPairs(size_t(state.range(0)), 1024, 7);
  for (auto _ : state) {
    Relation rel;
    for (const auto& [a, b] : pairs) rel.Add(NodeId(a), NodeId(b));
    benchmark::DoNotOptimize(rel.PairCount());
  }
}
BENCHMARK(BM_DenseAdd)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MapSetAdd(benchmark::State& state) {
  const auto pairs = RandomPairs(size_t(state.range(0)), 1024, 7);
  for (auto _ : state) {
    std::map<uint32_t, std::set<uint32_t>> rel;
    for (const auto& [a, b] : pairs) rel[a].insert(b);
    benchmark::DoNotOptimize(rel.size());
  }
}
BENCHMARK(BM_MapSetAdd)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DenseContains(benchmark::State& state) {
  const auto pairs = RandomPairs(size_t(state.range(0)), 1024, 7);
  Relation rel;
  for (const auto& [a, b] : pairs) rel.Add(NodeId(a), NodeId(b));
  const auto probes = RandomPairs(4096, 1024, 8);
  for (auto _ : state) {
    size_t hits = 0;
    for (const auto& [a, b] : probes) {
      hits += rel.Contains(NodeId(a), NodeId(b));
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_DenseContains)->Arg(10000)->Arg(100000);

void BM_MapSetContains(benchmark::State& state) {
  const auto pairs = RandomPairs(size_t(state.range(0)), 1024, 7);
  std::map<uint32_t, std::set<uint32_t>> rel;
  for (const auto& [a, b] : pairs) rel[a].insert(b);
  const auto probes = RandomPairs(4096, 1024, 8);
  for (auto _ : state) {
    size_t hits = 0;
    for (const auto& [a, b] : probes) {
      auto it = rel.find(a);
      hits += it != rel.end() && it->second.count(b) > 0;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_MapSetContains)->Arg(10000)->Arg(100000);

void BM_DenseForEach(benchmark::State& state) {
  const auto pairs = RandomPairs(size_t(state.range(0)), 1024, 7);
  Relation rel;
  for (const auto& [a, b] : pairs) rel.Add(NodeId(a), NodeId(b));
  for (auto _ : state) {
    uint64_t sum = 0;
    rel.ForEach([&](NodeId a, NodeId b) { sum += a.index() + b.index(); });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DenseForEach)->Arg(10000)->Arg(100000);

void BM_MapSetForEach(benchmark::State& state) {
  const auto pairs = RandomPairs(size_t(state.range(0)), 1024, 7);
  std::map<uint32_t, std::set<uint32_t>> rel;
  for (const auto& [a, b] : pairs) rel[a].insert(b);
  for (auto _ : state) {
    uint64_t sum = 0;
    for (const auto& [a, row] : rel) {
      for (uint32_t b : row) sum += a + b;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_MapSetForEach)->Arg(10000)->Arg(100000);

// The SystemContext hot pattern: close a sparse order over a domain and
// materialize the result (ClosureWithin is append-optimized end to end).
void BM_ClosureWithin(benchmark::State& state) {
  const uint32_t n = uint32_t(state.range(0));
  std::vector<NodeId> domain;
  Relation chainish;
  Rng rng(11);
  for (uint32_t i = 0; i < n; ++i) {
    domain.push_back(NodeId(i));
    if (i > 0) chainish.Add(NodeId(i - 1), NodeId(i));
    if (i > 2 && rng.Bernoulli(0.2)) {
      chainish.Add(NodeId(uint32_t(rng.UniformInt(i))), NodeId(i));
    }
  }
  for (auto _ : state) {
    Relation closed = ClosureWithin(chainish, domain);
    benchmark::DoNotOptimize(closed.PairCount());
  }
}
BENCHMARK(BM_ClosureWithin)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
