// Experiment E17 (DESIGN.md §15 / EXPERIMENTS.md): distributed composite
// certification — a 3-process fork/join topology vs a single comptx_serve
// process vs the bare in-process engine, on identical workloads.
//
// For each workload size the same grouped trace (distributed::
// GenerateGroupedTrace — the workload comptx_topology drives) is
// certified three ways:
//
//   engine      — one online::Certifier in-process, no service stack;
//                 the floor any service configuration pays against.
//   single      — a degenerate one-node topology: one comptx_serve
//                 child process, the same phased append/barrier/commit
//                 driver, fsync always.
//   distributed — the root/left/right fork/join: three comptx_serve
//                 processes, the trace partitioned across both leaves,
//                 ORDER_STREAM replication up to the root, and the
//                 cross-node two-phase commit per phase.
//
// Every cell's verdict must agree with the others on the same trace; the
// headline ratio is distributed vs single events/second — the price of
// the replication hop and the cross-node commit, with the service stack
// itself factored out.
//
// Plain chrono driver (no google-benchmark) so the output is a single
// machine-readable JSON document, committed as BENCH_distributed.json.
//
// Usage: bench_distributed [--serve BIN] [--data-dir DIR] [output.json]
//   --serve defaults to <bench dir>/../tools/comptx_serve, which is
//   right when the bench runs from the build tree.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "distributed/topology.h"
#include "online/certifier.h"
#include "util/logging.h"
#include "workload/trace.h"

namespace {

using namespace comptx;  // NOLINT
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

constexpr uint64_t kSeed = 20260814;
constexpr size_t kPhases = 3;

const char kSingleSpec[] =
    "# comptx-topology v1\n"
    "node solo\n";

const char kForkJoinSpec[] =
    "# comptx-topology v1\n"
    "node root\n"
    "node left\n"
    "node right\n"
    "edge root left\n"
    "edge root right\n";

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Cell {
  std::string mode;
  size_t processes = 0;
  double seconds = 0;
  double events_per_second = 0;
  bool certifiable = false;
  uint64_t commit_watermark = 0;
  uint64_t resubscribes = 0;
};

struct Row {
  uint32_t roots = 0;
  size_t events = 0;
  std::vector<Cell> cells;
  bool verdicts_agree = false;
};

/// The in-process floor: one certifier, the whole trace, one trailing
/// commit_through watermark.
Cell RunEngine(const std::vector<workload::TraceEvent>& trace,
               uint64_t roots) {
  Cell cell;
  cell.mode = "engine";
  cell.processes = 0;
  const auto start = Clock::now();
  online::Certifier certifier{online::CertifierOptions{}};
  for (const auto& event : trace) (void)certifier.Ingest(event);
  workload::TraceEvent commit;
  commit.kind = workload::TraceEventKind::kCommitThrough;
  commit.a = static_cast<uint32_t>(roots);
  (void)certifier.Ingest(commit);
  cell.certifiable = certifier.Verdict().certifiable;
  cell.seconds = SecondsSince(start);
  cell.commit_watermark = certifier.Stats().commit_watermark;
  cell.events_per_second =
      cell.seconds > 0 ? double(trace.size()) / cell.seconds : 0;
  return cell;
}

/// One topology run: spawn (untimed), drive the phased trace (timed),
/// report the final phase verdict.
StatusOr<Cell> RunTopology(const std::string& mode, const char* spec_text,
                           const std::vector<workload::TraceEvent>& trace,
                           const std::string& serve_binary,
                           const std::string& data_dir) {
  Cell cell;
  cell.mode = mode;
  std::error_code ec;
  fs::remove_all(data_dir, ec);
  COMPTX_ASSIGN_OR_RETURN(distributed::TopologySpec spec,
                          distributed::ParseTopologySpec(spec_text));
  cell.processes = spec.nodes.size();
  distributed::RunnerOptions options;
  options.serve_binary = serve_binary;
  options.data_root = data_dir;
  options.phases = kPhases;
  distributed::TopologyRunner runner(spec, options);
  COMPTX_RETURN_IF_ERROR(runner.Start());
  const auto start = Clock::now();
  auto report = runner.Drive(trace);
  cell.seconds = SecondsSince(start);
  const Status down = runner.Shutdown();
  COMPTX_RETURN_IF_ERROR(report.status());
  if (!down.ok()) COMPTX_LOG(Warn) << "shutdown: " << down;
  if (report->phases.empty()) {
    return Status::Internal("topology run produced no phase verdicts");
  }
  cell.certifiable = report->phases.back().certifiable;
  cell.commit_watermark = report->phases.back().commit_watermark;
  cell.resubscribes = report->resubscribes;
  cell.events_per_second =
      cell.seconds > 0 ? double(trace.size()) / cell.seconds : 0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  std::string serve_binary;
  std::string data_root;
  std::string out_path = "BENCH_distributed.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--serve") {
      serve_binary = next("--serve");
    } else if (arg == "--data-dir") {
      data_root = next("--data-dir");
    } else {
      out_path = arg;
    }
  }
  if (serve_binary.empty()) {
    // Run from the build tree: bench/ and tools/ are siblings.
    serve_binary =
        (fs::path(argv[0]).parent_path() / ".." / "tools" / "comptx_serve")
            .lexically_normal()
            .string();
  }
  if (!fs::exists(serve_binary)) {
    std::cerr << "comptx_serve not found at " << serve_binary
              << " (pass --serve)\n";
    return 2;
  }
  if (data_root.empty()) {
    data_root = (fs::temp_directory_path() / "comptx_bench_distributed")
                    .string();
  }

  const std::vector<uint32_t> sweep = {6, 12, 24};
  std::vector<Row> rows;
  size_t mismatches = 0;
  for (const uint32_t roots : sweep) {
    auto trace = distributed::GenerateGroupedTrace(roots, kSeed, 0.0);
    if (!trace.ok()) {
      std::cerr << "workload generation failed: " << trace.status() << "\n";
      return 2;
    }
    Row row;
    row.roots = roots;
    row.events = trace->size();
    row.cells.push_back(RunEngine(*trace, roots));
    for (const auto& [mode, spec] :
         {std::pair<const char*, const char*>{"single", kSingleSpec},
          std::pair<const char*, const char*>{"distributed",
                                              kForkJoinSpec}}) {
      auto cell = RunTopology(mode, spec, *trace, serve_binary,
                              data_root + "/" + mode + "_" +
                                  std::to_string(roots));
      if (!cell.ok()) {
        std::cerr << mode << " run failed at roots=" << roots << ": "
                  << cell.status() << "\n";
        return 2;
      }
      row.cells.push_back(*cell);
    }
    row.verdicts_agree = true;
    for (const Cell& cell : row.cells) {
      if (cell.certifiable != row.cells.front().certifiable ||
          cell.commit_watermark != row.cells.front().commit_watermark) {
        row.verdicts_agree = false;
        ++mismatches;
      }
    }
    std::cout << "roots=" << roots << " events=" << row.events;
    for (const Cell& cell : row.cells) {
      std::cout << "  " << cell.mode << "=" << std::fixed
                << cell.events_per_second << " ev/s";
    }
    std::cout << (row.verdicts_agree ? "" : "  VERDICT MISMATCH") << "\n";
    rows.push_back(std::move(row));
  }

  // Headline: what the replication hop + cross-node commit cost over the
  // same service stack in one process, at the largest size.
  double overhead = 0;
  if (!rows.empty()) {
    const auto& cells = rows.back().cells;
    double single_eps = 0, dist_eps = 0;
    for (const Cell& cell : cells) {
      if (cell.mode == "single") single_eps = cell.events_per_second;
      if (cell.mode == "distributed") dist_eps = cell.events_per_second;
    }
    overhead = dist_eps > 0 ? single_eps / dist_eps : 0;
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"E17_distributed_certification\",\n"
       << "  \"topology\": \"fork_join_3_process\",\n"
       << "  \"phases\": " << kPhases << ",\n"
       << "  \"fsync\": \"always\",\n"
       << "  \"seed\": " << kSeed << ",\n"
       << "  \"single_over_distributed_events_per_second\": " << overhead
       << ",\n"
       << "  \"all_verdicts_agree\": " << (mismatches == 0 ? "true" : "false")
       << ",\n"
       << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"roots\": " << row.roots << ", \"events\": " << row.events
         << ", \"verdicts_agree\": " << (row.verdicts_agree ? "true" : "false")
         << ", \"cells\": [\n";
    for (size_t j = 0; j < row.cells.size(); ++j) {
      const Cell& cell = row.cells[j];
      json << "      {\"mode\": \"" << cell.mode
           << "\", \"processes\": " << cell.processes
           << ", \"seconds\": " << cell.seconds
           << ", \"events_per_second\": " << cell.events_per_second
           << ", \"certifiable\": " << (cell.certifiable ? "true" : "false")
           << ", \"commit_watermark\": " << cell.commit_watermark
           << ", \"resubscribes\": " << cell.resubscribes << "}"
           << (j + 1 < row.cells.size() ? "," : "") << "\n";
    }
    json << "    ]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  std::error_code ec;
  fs::remove_all(data_root, ec);
  return mismatches == 0 ? 0 : 1;
}
