// Experiment E9 (DESIGN.md): graph-substrate microbenchmarks.
//
// The reduction engine spends its time in these primitives: cycle
// detection, transitive closure, quotient construction, topological sort.
// This bench pins their costs on front-sized random graphs so regressions
// in the substrate are visible independently of the engine.

#include <benchmark/benchmark.h>

#include "graph/cycle_finder.h"
#include "graph/quotient.h"
#include "graph/tarjan_scc.h"
#include "graph/topological_sort.h"
#include "graph/transitive_closure.h"
#include "util/rng.h"

namespace {

using namespace comptx::graph;  // NOLINT

Digraph RandomDag(size_t n, size_t edges, uint64_t seed) {
  comptx::Rng rng(seed);
  Digraph g(n);
  for (size_t e = 0; e < edges; ++e) {
    // Forward edges only: guaranteed acyclic.
    uint32_t a = static_cast<uint32_t>(rng.UniformInt(n - 1));
    uint32_t b =
        a + 1 + static_cast<uint32_t>(rng.UniformInt(n - a - 1));
    g.AddEdge(a, b);
  }
  return g;
}

Digraph RandomGraph(size_t n, size_t edges, uint64_t seed) {
  comptx::Rng rng(seed);
  Digraph g(n);
  for (size_t e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<uint32_t>(rng.UniformInt(n)),
              static_cast<uint32_t>(rng.UniformInt(n)));
  }
  return g;
}

void BM_FindCycleOnDag(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Digraph g = RandomDag(n, n * 4, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindCycle(g));
  }
}
BENCHMARK(BM_FindCycleOnDag)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TarjanScc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Digraph g = RandomGraph(n, n * 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TarjanScc(g));
  }
}
BENCHMARK(BM_TarjanScc)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TransitiveClosure(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Digraph g = RandomDag(n, n * 4, 3);
  for (auto _ : state) {
    TransitiveClosure tc(g);
    benchmark::DoNotOptimize(tc.Reaches(0, static_cast<uint32_t>(n - 1)));
  }
}
BENCHMARK(BM_TransitiveClosure)->Arg(64)->Arg(256)->Arg(1024);

void BM_TopologicalSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Digraph g = RandomDag(n, n * 4, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopologicalSort(g));
  }
}
BENCHMARK(BM_TopologicalSort)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_QuotientGraph(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Digraph g = RandomDag(n, n * 4, 5);
  // Blocks of ~4 nodes, like grouping fan-out-4 transactions.
  std::vector<uint32_t> block(n);
  for (size_t v = 0; v < n; ++v) block[v] = static_cast<uint32_t>(v / 4);
  const uint32_t blocks = static_cast<uint32_t>((n + 3) / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuotientGraph(g, block, blocks));
  }
}
BENCHMARK(BM_QuotientGraph)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
