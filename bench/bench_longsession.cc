// Experiment E15 (DESIGN.md §13 / EXPERIMENTS.md): flat per-event cost
// over a long-lived session.
//
// One certifier session ingests a 10M-event streaming-window workload —
// roots arrive forever, each conflicting with (and ordered after) its
// predecessor, and a cumulative commit_through watermark trails the
// stream by a fixed window so sealing + epoch pruning run continuously.
// The driver samples the per-event cost at logarithmically spaced
// checkpoints (100k, 316k, 1M, 3.16M, 10M) over the *preceding* segment,
// so each sample is a steady-state rate, not a lifetime average.
//
// The headline claim: the hot path is O(window), independent of session
// lifetime — the per-event cost at 10M events is within 1.5x of the cost
// at 100k events, and live_nodes stays bounded by the window while
// pruned_nodes grows with the stream.  A certifier without pruning (or
// with the pre-rewrite O(all-sealed) prune worklist) fails this: its
// per-event cost grows with total session length.
//
// Events are fed through IngestBatch in service-sized batches — the same
// path the server's drain worker uses — so the measurement covers the
// arena-backed engine batching, not just single-event Ingest.
//
// Correctness cross-check: a second certifier with pruning disabled
// ingests the same stream (at the smallest checkpoint only; it is
// O(total) by design) and must agree with the pruned session's verdict.
//
// Plain chrono driver (no google-benchmark) so the output is a single
// machine-readable JSON document, committed as BENCH_longsession.json.
//
// Usage: bench_longsession [output.json] [--events N] [--window N]
//                          [--batch N]

#include <cstdint>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "online/certifier.h"
#include "util/logging.h"
#include "workload/trace.h"

namespace {

using namespace comptx;  // NOLINT
using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Streaming-window event source: emits the session's events on demand
/// instead of materializing a 10M-element vector.  Per root i > 0:
/// root, leaf, conflict(prev_leaf, leaf), weak_output(prev_leaf, leaf),
/// and every `window` roots a commit_through watermark lagging the
/// newest root by `window` — exactly the cadence a long-lived client
/// with --commit-window produces, and enough lag that a sealed root
/// never has pending relation events.
class WindowStream {
 public:
  explicit WindowStream(uint32_t window) : window_(window) {}

  /// Appends the next chunk of events (one root's worth, possibly plus a
  /// watermark) to `out`.  First call also emits the schedule.
  void NextRoot(std::vector<workload::TraceEvent>& out) {
    using workload::TraceEvent;
    using workload::TraceEventKind;
    TraceEvent e;
    if (roots_ == 0) {
      e.kind = TraceEventKind::kSchedule;
      e.name = "S";
      out.push_back(e);
    }
    e = {};
    e.kind = TraceEventKind::kRoot;
    e.schedule = 0;
    e.name = "T" + std::to_string(roots_);
    out.push_back(e);
    const uint32_t root = next_id_++;
    e = {};
    e.kind = TraceEventKind::kLeaf;
    e.parent = root;
    e.name = "x" + std::to_string(roots_);
    out.push_back(e);
    const uint32_t leaf = next_id_++;
    if (prev_leaf_ != kInvalidIndex) {
      e = {};
      e.kind = TraceEventKind::kConflict;
      e.a = prev_leaf_;
      e.b = leaf;
      out.push_back(e);
      e.kind = TraceEventKind::kWeakOutput;
      out.push_back(e);
    }
    prev_leaf_ = leaf;
    ++roots_;
    // Watermark: seal everything older than the trailing window.  The
    // newest sealed root's only forward relation (to its successor) is
    // already ingested, so sealing never rejects a later event.
    if (window_ != 0 && roots_ % window_ == 0 && roots_ > window_) {
      e = {};
      e.kind = TraceEventKind::kCommitThrough;
      e.a = roots_ - window_;
      out.push_back(e);
    }
  }

  uint64_t roots() const { return roots_; }

 private:
  const uint32_t window_;
  uint64_t roots_ = 0;
  uint32_t next_id_ = 0;
  uint32_t prev_leaf_ = kInvalidIndex;
};

struct Checkpoint {
  uint64_t events = 0;          // cumulative events ingested
  double segment_us = 0;        // time over the preceding segment
  uint64_t segment_events = 0;  // events in that segment
  uint64_t live_nodes = 0;
  uint64_t pruned_nodes = 0;
  uint64_t prune_passes = 0;
  bool certifiable = false;

  double PerEventUs() const {
    return segment_events == 0 ? 0 : segment_us / double(segment_events);
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_longsession.json";
  uint64_t total_events = 10'000'000;
  uint32_t window = 16;
  size_t batch = 256;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      COMPTX_CHECK(i + 1 < argc) << arg << " needs a value";
      return argv[++i];
    };
    if (arg == "--events") {
      total_events = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--window") {
      window = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--batch") {
      batch = std::strtoul(next(), nullptr, 10);
    } else {
      out_path = arg;
    }
  }

  // Log-spaced sample points ending at total_events: total/100, total/10x
  // steps (100k, 316k, 1M, 3.16M, 10M for the default budget).
  std::vector<uint64_t> marks;
  for (double m = double(total_events) / 100.0; m < double(total_events) * 0.99;
       m *= 3.16227766) {
    marks.push_back(uint64_t(m));
  }
  marks.push_back(total_events);

  online::CertifierOptions options;
  options.auto_prune = true;
  online::Certifier certifier(options);
  WindowStream stream(window);
  std::vector<workload::TraceEvent> chunk;
  std::vector<Checkpoint> checkpoints;
  uint64_t ingested = 0;
  uint64_t segment_start_events = 0;
  size_t next_mark = 0;
  Clock::time_point segment_start = Clock::now();
  while (ingested < total_events && next_mark < marks.size()) {
    chunk.clear();
    while (chunk.size() < batch && ingested + chunk.size() < marks[next_mark]) {
      stream.NextRoot(chunk);
    }
    if (chunk.empty()) break;
    const size_t rejected = certifier.IngestBatch(chunk);
    COMPTX_CHECK(rejected == 0) << rejected << " events rejected";
    ingested += chunk.size();
    if (ingested >= marks[next_mark]) {
      Checkpoint cp;
      cp.segment_us = MicrosSince(segment_start);
      cp.events = ingested;
      cp.segment_events = ingested - segment_start_events;
      online::CertifierStats stats = certifier.Stats();
      cp.live_nodes = stats.live_nodes;
      cp.pruned_nodes = stats.pruned_nodes;
      cp.prune_passes = stats.prune_passes;
      cp.certifiable = certifier.Certifiable();
      checkpoints.push_back(cp);
      std::cout << "events=" << cp.events << " per_event=" << cp.PerEventUs()
                << "us live=" << cp.live_nodes << " pruned=" << cp.pruned_nodes
                << " certifiable=" << (cp.certifiable ? "yes" : "NO") << "\n";
      segment_start_events = ingested;
      ++next_mark;
      segment_start = Clock::now();
    }
  }
  COMPTX_CHECK(!checkpoints.empty());

  // Unpruned cross-check: same stream shape at a deliberately small
  // scale (an unpruned certifier pays O(live) = O(total) per event, so
  // replaying a full checkpoint would be quadratic), pruned vs unpruned
  // verdicts must agree.  The soak test does the deep version of this at
  // every sampled prefix; the bench keeps one scale as a tripwire.
  bool crosscheck_agrees = true;
  {
    constexpr uint64_t kCrosscheckEvents = 8000;
    online::CertifierOptions unpruned;
    unpruned.auto_prune = false;
    online::Certifier reference(unpruned);
    online::Certifier pruned(options);
    WindowStream replay(window);
    std::vector<workload::TraceEvent> events;
    while (events.size() < kCrosscheckEvents) {
      replay.NextRoot(events);
    }
    for (const auto& event : events) {
      Status status = reference.Ingest(event);
      COMPTX_CHECK(status.ok()) << status.ToString();
      status = pruned.Ingest(event);
      COMPTX_CHECK(status.ok()) << status.ToString();
    }
    crosscheck_agrees = reference.Certifiable() == pruned.Certifiable();
  }

  const Checkpoint& first = checkpoints.front();
  const Checkpoint& last = checkpoints.back();
  // The flatness criterion from EXPERIMENTS.md E15.  The window holds
  // `window` roots of 2 nodes each plus the in-flight root; live_nodes
  // must stay within a small multiple of that, independent of lifetime.
  const bool flat = last.PerEventUs() <= 1.5 * first.PerEventUs();
  const uint64_t window_nodes = uint64_t(window + 1) * 2;
  bool live_bounded = true;
  bool all_certifiable = true;
  for (const Checkpoint& cp : checkpoints) {
    live_bounded = live_bounded && cp.live_nodes <= 2 * window_nodes;
    all_certifiable = all_certifiable && cp.certifiable;
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"E15_long_session\",\n"
       << "  \"workload\": \"streaming_window_chain\",\n"
       << "  \"total_events\": " << last.events << ",\n"
       << "  \"commit_window_roots\": " << window << ",\n"
       << "  \"ingest_batch\": " << batch << ",\n"
       << "  \"per_event_us_first\": " << first.PerEventUs() << ",\n"
       << "  \"per_event_us_last\": " << last.PerEventUs() << ",\n"
       << "  \"cost_ratio_last_over_first\": "
       << last.PerEventUs() / first.PerEventUs() << ",\n"
       << "  \"flat_hot_path\": " << (flat ? "true" : "false") << ",\n"
       << "  \"live_nodes_bounded_by_window\": "
       << (live_bounded ? "true" : "false") << ",\n"
       << "  \"all_checkpoints_certifiable\": "
       << (all_certifiable ? "true" : "false") << ",\n"
       << "  \"unpruned_crosscheck_agrees\": "
       << (crosscheck_agrees ? "true" : "false") << ",\n"
       << "  \"checkpoints\": [\n";
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    const Checkpoint& cp = checkpoints[i];
    json << "    {\"events\": " << cp.events
         << ", \"segment_events\": " << cp.segment_events
         << ", \"segment_us\": " << cp.segment_us
         << ", \"per_event_us\": " << cp.PerEventUs()
         << ", \"live_nodes\": " << cp.live_nodes
         << ", \"pruned_nodes\": " << cp.pruned_nodes
         << ", \"prune_passes\": " << cp.prune_passes
         << ", \"certifiable\": " << (cp.certifiable ? "true" : "false")
         << "}" << (i + 1 < checkpoints.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << out_path << " (ratio="
            << last.PerEventUs() / first.PerEventUs() << ")\n";
  return flat && live_bounded && all_certifiable && crosscheck_agrees ? 0 : 1;
}
