// Shrinker throughput: how fast the delta debugger minimizes witnesses
// of growing event streams.  Two predicate regimes: a cheap structural
// predicate (locating one named root — shrink overhead dominates) and
// the realistic differential predicate (every candidate runs the full
// decider stack against an injected online-verdict flip).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "testing/differential.h"
#include "testing/events.h"
#include "testing/shrink.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT

std::vector<workload::TraceEvent> GenerateEvents(uint32_t roots,
                                                 std::string* root_name) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.3;
  spec.execution.disorder_prob = 0.3;
  auto cs = workload::GenerateSystem(spec, 42);
  if (!cs.ok()) return {};
  if (root_name != nullptr) *root_name = cs->node(cs->Roots().back()).name;
  auto events = testing::SystemToEvents(*cs);
  return events.ok() ? *std::move(events) : std::vector<workload::TraceEvent>{};
}

void BM_ShrinkToNamedRoot(benchmark::State& state) {
  std::string root_name;
  const std::vector<workload::TraceEvent> events =
      GenerateEvents(static_cast<uint32_t>(state.range(0)), &root_name);
  const testing::FailurePredicate predicate =
      [&](const CompositeSystem& cs) {
        for (uint32_t i = 0; i < cs.NodeCount(); ++i) {
          if (cs.node(NodeId(i)).name == root_name) return true;
        }
        return false;
      };
  testing::ShrinkStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        testing::ShrinkEvents(events, predicate, {}, &stats));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["predicate_calls"] = static_cast<double>(stats.predicate_calls);
}
BENCHMARK(BM_ShrinkToNamedRoot)->Arg(3)->Arg(6)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_ShrinkDifferentialWitness(benchmark::State& state) {
  const std::vector<workload::TraceEvent> events =
      GenerateEvents(static_cast<uint32_t>(state.range(0)), nullptr);
  testing::DifferentialOptions options;
  options.inject = testing::InjectedBug::kFlipOnline;
  const testing::FailurePredicate predicate =
      [&](const CompositeSystem& cs) {
        auto report = testing::CheckConformance(cs, options);
        if (!report.ok()) return false;
        for (const testing::Disagreement& d : report->disagreements) {
          if (d.check == "batch-vs-online") return true;
        }
        return false;
      };
  testing::ShrinkStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        testing::ShrinkEvents(events, predicate, {}, &stats));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(events.size()));
  state.counters["events"] = static_cast<double>(events.size());
  state.counters["predicate_calls"] = static_cast<double>(stats.predicate_calls);
}
BENCHMARK(BM_ShrinkDifferentialWitness)->Arg(3)->Arg(6)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
