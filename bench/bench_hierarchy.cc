// Experiment E4 (DESIGN.md): the correctness-class hierarchy.
//
// Acceptance rates of flat conflict serializability (CSR), order
// preserving serializability (OPSR), level-by-level serializability
// (LLSR) and Comp-C on random composite executions, as a function of the
// conflict probability.  The paper's claim: the prior criteria are proper
// subsets — Comp-C must accept everything they accept plus a strictly
// positive "forgetting gap" (executions only Comp-C accepts).
//
// Two workload profiles per topology:
//   * minimal outputs — schedulers report only the orders they must
//     (conflicting + intra pairs); here OPSR degenerates to LLSR;
//   * order-preserving outputs — schedulers report their full
//     linearization, the regime OPSR was designed for, where its extra
//     order preservation visibly costs acceptance.

#include <iostream>

#include "analysis/stats.h"
#include "criteria/compare.h"
#include "util/logging.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT

struct Rates {
  analysis::RateCounter csr, opsr, llsr, comp_c;
  analysis::RateCounter gap;          // comp_c && !llsr
  analysis::RateCounter containment;  // llsr -> comp_c (must be 1.0)
};

Rates Sweep(workload::TopologyKind kind, double conflict, bool preserve,
            int trials) {
  Rates rates;
  for (int seed = 1; seed <= trials; ++seed) {
    workload::WorkloadSpec spec;
    spec.topology.kind = kind;
    spec.topology.depth = 3;
    spec.topology.branches = 2;
    spec.topology.roots = 3;
    spec.execution.conflict_prob = conflict;
    spec.execution.disorder_prob = preserve ? 0.0 : 0.6;
    spec.execution.order_preserving_outputs = preserve;
    auto cs = workload::GenerateSystem(spec, uint64_t(seed));
    COMPTX_CHECK(cs.ok()) << cs.status().ToString();
    auto verdicts = criteria::EvaluateAllCriteria(*cs);
    COMPTX_CHECK(verdicts.ok()) << verdicts.status().ToString();
    rates.csr.Add(verdicts->flat_csr);
    rates.opsr.Add(verdicts->opsr);
    rates.llsr.Add(verdicts->llsr);
    rates.comp_c.Add(verdicts->comp_c);
    rates.gap.Add(verdicts->comp_c && !verdicts->llsr);
    rates.containment.Add(!verdicts->llsr || verdicts->comp_c);
  }
  return rates;
}

}  // namespace

int main() {
  constexpr int kTrials = 300;
  std::cout << "E4: acceptance-rate hierarchy (" << kTrials
            << " executions per cell)\n\n";
  bool containment_ok = true;
  for (bool preserve : {false, true}) {
    std::cout << (preserve ? "order-preserving schedulers:"
                           : "minimal-output schedulers (disorder 0.6):")
              << "\n";
    analysis::TextTable table({"topology", "conflict", "flat_csr", "opsr",
                               "llsr", "comp_c", "gap(comp\\llsr)"});
    for (auto kind : {workload::TopologyKind::kStack,
                      workload::TopologyKind::kLayeredDag}) {
      for (double conflict : {0.05, 0.1, 0.2, 0.4}) {
        Rates rates = Sweep(kind, conflict, preserve, kTrials);
        table.AddRow({workload::TopologyKindToString(kind),
                      analysis::FormatDouble(conflict, 2),
                      analysis::FormatDouble(rates.csr.rate()),
                      analysis::FormatDouble(rates.opsr.rate()),
                      analysis::FormatDouble(rates.llsr.rate()),
                      analysis::FormatDouble(rates.comp_c.rate()),
                      analysis::FormatDouble(rates.gap.rate())});
        // LLSR ⊆ Comp-C is a property of minimal-output schedulers; an
        // order-preserving scheduler's full output order becomes input
        // orders Comp-C's per-front CC checks honor but LLSR ignores, so
        // the containment is not asserted in that regime.
        if (!preserve && rates.containment.rate() != 1.0) {
          containment_ok = false;
        }
      }
    }
    std::cout << table.ToString() << "\n";
  }
  std::cout << (containment_ok
                    ? "RESULT: LLSR ⊆ Comp-C held on every minimal-output "
                      "execution; Comp-C acceptance dominates the baselines "
                      "with a strict gap at moderate conflict rates, and "
                      "OPSR's order preservation visibly costs acceptance "
                      "in the order-preserving regime.\n"
                    : "RESULT: CONTAINMENT VIOLATED — bug!\n");
  return containment_ok ? 0 : 1;
}
