// Experiment E5 (DESIGN.md): cost of the Comp-C decision procedure.
//
// google-benchmark over the reduction engine (Def 16 / Theorem 1): wall
// time as a function of the number of root transactions, the tree depth,
// and the fan-out — i.e., how the front sizes drive the cost of the
// level-by-level abstraction.

#include <benchmark/benchmark.h>

#include "core/correctness.h"
#include "util/logging.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT

CompositeSystem MakeSystem(workload::TopologyKind kind, uint32_t roots,
                           uint32_t depth, uint32_t fanout, uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.topology.kind = kind;
  spec.topology.depth = depth;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = fanout;
  spec.execution.conflict_prob = 0.1;
  auto cs = workload::GenerateSystem(spec, seed);
  COMPTX_CHECK(cs.ok()) << cs.status().ToString();
  return std::move(cs).value();
}

void BM_ReductionVsRoots(benchmark::State& state) {
  CompositeSystem cs =
      MakeSystem(workload::TopologyKind::kStack,
                 static_cast<uint32_t>(state.range(0)), 3, 2, 42);
  ReductionOptions options;
  options.keep_fronts = false;
  for (auto _ : state) {
    auto result = RunReduction(cs, options);
    COMPTX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->comp_c);
  }
  state.counters["leaves"] = double(cs.Leaves().size());
  state.counters["nodes"] = double(cs.NodeCount());
}
BENCHMARK(BM_ReductionVsRoots)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ReductionVsDepth(benchmark::State& state) {
  CompositeSystem cs =
      MakeSystem(workload::TopologyKind::kStack, 4,
                 static_cast<uint32_t>(state.range(0)), 2, 43);
  ReductionOptions options;
  options.keep_fronts = false;
  for (auto _ : state) {
    auto result = RunReduction(cs, options);
    COMPTX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->comp_c);
  }
  state.counters["leaves"] = double(cs.Leaves().size());
}
BENCHMARK(BM_ReductionVsDepth)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_ReductionVsFanout(benchmark::State& state) {
  CompositeSystem cs =
      MakeSystem(workload::TopologyKind::kLayeredDag, 4, 3,
                 static_cast<uint32_t>(state.range(0)), 44);
  ReductionOptions options;
  options.keep_fronts = false;
  for (auto _ : state) {
    auto result = RunReduction(cs, options);
    COMPTX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->comp_c);
  }
  state.counters["leaves"] = double(cs.Leaves().size());
}
BENCHMARK(BM_ReductionVsFanout)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_ValidateOnly(benchmark::State& state) {
  CompositeSystem cs =
      MakeSystem(workload::TopologyKind::kStack,
                 static_cast<uint32_t>(state.range(0)), 3, 2, 45);
  for (auto _ : state) {
    Status status = cs.Validate();
    COMPTX_CHECK(status.ok());
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_ValidateOnly)->Arg(4)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
