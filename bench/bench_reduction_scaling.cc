// Experiment E5 (DESIGN.md): cost of the Comp-C decision procedure.
//
// Two modes:
//  * default: google-benchmark over the reduction engine (Def 16 /
//    Theorem 1) — wall time as a function of roots, depth, and fan-out.
//  * `--json <out>`: plain-chrono driver that measures the dense-engine
//    batch reduction on the E10 layered-DAG workload at 1/2/4 pool
//    threads plus multi-trace sweep throughput, and emits the committed
//    BENCH_reduction.json (with the pre-rewrite map/set baseline
//    embedded for the before/after comparison).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/sweep.h"
#include "core/correctness.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT

CompositeSystem MakeSystem(workload::TopologyKind kind, uint32_t roots,
                           uint32_t depth, uint32_t fanout, uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.topology.kind = kind;
  spec.topology.depth = depth;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = fanout;
  spec.execution.conflict_prob = 0.1;
  auto cs = workload::GenerateSystem(spec, seed);
  COMPTX_CHECK(cs.ok()) << cs.status().ToString();
  return std::move(cs).value();
}

void BM_ReductionVsRoots(benchmark::State& state) {
  CompositeSystem cs =
      MakeSystem(workload::TopologyKind::kStack,
                 static_cast<uint32_t>(state.range(0)), 3, 2, 42);
  ReductionOptions options;
  options.keep_fronts = false;
  for (auto _ : state) {
    auto result = RunReduction(cs, options);
    COMPTX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->comp_c);
  }
  state.counters["leaves"] = double(cs.Leaves().size());
  state.counters["nodes"] = double(cs.NodeCount());
}
BENCHMARK(BM_ReductionVsRoots)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ReductionVsDepth(benchmark::State& state) {
  CompositeSystem cs =
      MakeSystem(workload::TopologyKind::kStack, 4,
                 static_cast<uint32_t>(state.range(0)), 2, 43);
  ReductionOptions options;
  options.keep_fronts = false;
  for (auto _ : state) {
    auto result = RunReduction(cs, options);
    COMPTX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->comp_c);
  }
  state.counters["leaves"] = double(cs.Leaves().size());
}
BENCHMARK(BM_ReductionVsDepth)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_ReductionVsFanout(benchmark::State& state) {
  CompositeSystem cs =
      MakeSystem(workload::TopologyKind::kLayeredDag, 4, 3,
                 static_cast<uint32_t>(state.range(0)), 44);
  ReductionOptions options;
  options.keep_fronts = false;
  for (auto _ : state) {
    auto result = RunReduction(cs, options);
    COMPTX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->comp_c);
  }
  state.counters["leaves"] = double(cs.Leaves().size());
}
BENCHMARK(BM_ReductionVsFanout)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_ValidateOnly(benchmark::State& state) {
  CompositeSystem cs =
      MakeSystem(workload::TopologyKind::kStack,
                 static_cast<uint32_t>(state.range(0)), 3, 2, 45);
  for (auto _ : state) {
    Status status = cs.Validate();
    COMPTX_CHECK(status.ok());
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_ValidateOnly)->Arg(4)->Arg(16)->Arg(32);

// ---------------------------------------------------------------------------
// --json mode: the committed before/after measurement (BENCH_reduction.json).
// ---------------------------------------------------------------------------

/// Pre-rewrite RunReduction medians on the identical E10 workloads,
/// measured at commit 1962996 (map/set relation storage, serial
/// pipeline).  Kept inline so the emitted JSON is self-contained.
struct BaselineRow {
  uint32_t roots;
  double run_us;
};
constexpr BaselineRow kMainBaseline[] = {
    {16, 1495.08}, {32, 6340.25}, {64, 28915.4}};

CompositeSystem MakeE10System(uint32_t roots) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.15;
  spec.execution.intra_weak_prob = 0.2;
  auto cs = workload::GenerateSystem(spec, 20260806 + roots);
  COMPTX_CHECK(cs.ok()) << cs.status().ToString();
  return std::move(cs).value();
}

double MedianRunMicros(const CompositeSystem& cs, int repeats) {
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  std::vector<double> samples;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    auto result = RunReduction(cs, options);
    const auto stop = std::chrono::steady_clock::now();
    COMPTX_CHECK(result.ok());
    benchmark::DoNotOptimize(result->comp_c);
    samples.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int RunJsonMode(const std::string& out_path) {
  struct Row {
    uint32_t roots;
    size_t nodes;
    size_t threads;
    double run_us;
    double baseline_us;
  };
  struct SweepRow {
    size_t traces;
    size_t threads;
    double total_us;
  };
  std::vector<Row> rows;
  std::vector<SweepRow> sweep_rows;

  const int repeats = 9;
  for (const BaselineRow& base : kMainBaseline) {
    CompositeSystem cs = MakeE10System(base.roots);
    // Warm up allocator/caches once per system before sampling.
    (void)MedianRunMicros(cs, 1);
    for (size_t threads : {1ul, 2ul, 4ul}) {
      ThreadPool::SetGlobalThreads(threads);
      const double us = MedianRunMicros(cs, repeats);
      rows.push_back({base.roots, cs.NodeCount(), threads, us, base.run_us});
      std::cerr << "roots=" << base.roots << " threads=" << threads
                << " run_us=" << us << " (main: " << base.run_us << ")\n";
    }
  }

  // Multi-trace sweep throughput: 32 independent E10 systems checked
  // through the SweepCompC driver.
  {
    std::vector<CompositeSystem> systems;
    for (uint64_t seed = 1; seed <= 32; ++seed) {
      workload::WorkloadSpec spec;
      spec.topology.kind = workload::TopologyKind::kLayeredDag;
      spec.topology.depth = 3;
      spec.topology.branches = 2;
      spec.topology.roots = 8;
      spec.topology.fanout = 2;
      spec.execution.conflict_prob = 0.15;
      spec.execution.intra_weak_prob = 0.2;
      auto cs = workload::GenerateSystem(spec, 777000 + seed);
      COMPTX_CHECK(cs.ok());
      systems.push_back(std::move(cs).value());
    }
    std::vector<const CompositeSystem*> pointers;
    for (const CompositeSystem& cs : systems) pointers.push_back(&cs);
    ReductionOptions options;
    options.validate = false;
    options.keep_fronts = false;
    for (size_t threads : {1ul, 2ul, 4ul}) {
      ThreadPool::SetGlobalThreads(threads);
      (void)analysis::SweepCompC(pointers, options);  // warm-up
      const auto start = std::chrono::steady_clock::now();
      auto verdicts = analysis::SweepCompC(pointers, options);
      const auto stop = std::chrono::steady_clock::now();
      COMPTX_CHECK(verdicts.size() == pointers.size());
      sweep_rows.push_back(
          {pointers.size(), threads,
           std::chrono::duration<double, std::micro>(stop - start).count()});
    }
  }
  ThreadPool::SetGlobalThreads(1);

  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"reduction_scaling\",\n"
       << "  \"workload\": {\"topology\": \"layered_dag\", \"depth\": 3, "
          "\"branches\": 2, \"fanout\": 2, \"conflict_prob\": 0.15, "
          "\"intra_weak_prob\": 0.2, \"seed\": \"20260806+roots\"},\n"
       << "  \"baseline_commit\": \"1962996\",\n"
       << "  \"baseline_storage\": \"std::map/std::set relations, serial "
          "pipeline\",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"repeats\": " << repeats << ",\n"
       << "  \"batch_reduction\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"roots\": " << r.roots << ", \"nodes\": " << r.nodes
         << ", \"threads\": " << r.threads << ", \"run_us\": " << r.run_us
         << ", \"baseline_main_us\": " << r.baseline_us
         << ", \"speedup_vs_main\": " << r.baseline_us / r.run_us << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep_rows.size(); ++i) {
    const SweepRow& s = sweep_rows[i];
    json << "    {\"traces\": " << s.traces << ", \"threads\": " << s.threads
         << ", \"total_us\": " << s.total_us
         << ", \"per_trace_us\": " << s.total_us / double(s.traces) << "}"
         << (i + 1 < sweep_rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--json") == 0) {
    return RunJsonMode(argc >= 3 ? argv[2] : "BENCH_reduction.json");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
