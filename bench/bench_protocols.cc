// Experiment E6 (DESIGN.md): which protocols produce correct composite
// executions, by component-network shape.
//
// For each protocol and network shape, many seeded executions are run and
// the recorded composite schedules judged by Comp-C.  The paper's
// expected shape: serial, closed nesting, and validated open nesting are
// always correct; *uncoordinated* open nesting loses correctness once the
// configuration gives transactions multiple meeting points (DAG-like
// networks), which is exactly the problem the composite theory exists to
// characterize.

#include <iostream>

#include "analysis/stats.h"
#include "core/correctness.h"
#include "runtime/system_executor.h"
#include "util/logging.h"
#include "workload/program_gen.h"

namespace {

using namespace comptx;           // NOLINT
using namespace comptx::runtime;  // NOLINT

struct Shape {
  const char* name;
  workload::RuntimeWorkloadSpec spec;
};

std::vector<Shape> MakeShapes() {
  std::vector<Shape> shapes;
  {
    // Stack-ish: one component per layer, three layers deep.
    workload::RuntimeWorkloadSpec spec;
    spec.layers = 3;
    spec.components_per_layer = 1;
    spec.invoke_fraction = 0.6;
    spec.num_roots = 6;
    shapes.push_back({"pipeline(3x1)", spec});
  }
  {
    // Fork-ish: one entry layer, wide bottom.
    workload::RuntimeWorkloadSpec spec;
    spec.layers = 2;
    spec.components_per_layer = 4;
    spec.invoke_fraction = 0.7;
    spec.num_roots = 8;
    shapes.push_back({"wide(2x4)", spec});
  }
  {
    // General DAG: several components per layer, three layers — multiple
    // meeting points between any two roots.
    workload::RuntimeWorkloadSpec spec;
    spec.layers = 3;
    spec.components_per_layer = 2;
    spec.invoke_fraction = 0.6;
    spec.num_roots = 8;
    shapes.push_back({"dag(3x2)", spec});
  }
  return shapes;
}

}  // namespace

int main() {
  constexpr int kTrials = 60;
  std::cout << "E6: protocol correctness by network shape (" << kTrials
            << " executions per cell; items/component = 8, zipf 0.6)\n\n";
  analysis::TextTable table({"shape", "protocol", "comp_c_rate",
                             "deadlock_restarts", "validation_restarts",
                             "avg_parallelism"});
  bool expectations_hold = true;
  for (Shape& shape : MakeShapes()) {
    shape.spec.items_per_component = 8;
    shape.spec.zipf_theta = 0.6;
    for (Protocol protocol :
         {Protocol::kGlobalSerial, Protocol::kClosedTwoPhase,
          Protocol::kOpenTwoPhase, Protocol::kOpenValidated,
          Protocol::kConservativeTimestamp}) {
      analysis::RateCounter correct;
      analysis::RunningStats deadlocks, validations, parallelism;
      for (int seed = 1; seed <= kTrials; ++seed) {
        RuntimeSystem system =
            workload::GenerateRuntimeWorkload(shape.spec, uint64_t(seed));
        ExecutorOptions options;
        options.protocol = protocol;
        options.seed = uint64_t(seed) * 977;
        auto result = ExecuteSystem(system, options);
        COMPTX_CHECK(result.ok()) << result.status().ToString();
        correct.Add(IsCompC(result->recorded));
        deadlocks.Add(double(result->stats.deadlock_restarts));
        validations.Add(double(result->stats.validation_restarts));
        parallelism.Add(result->stats.avg_parallelism);
      }
      table.AddRow({shape.name, ProtocolToString(protocol),
                    analysis::FormatDouble(correct.rate()),
                    analysis::FormatDouble(deadlocks.mean(), 2),
                    analysis::FormatDouble(validations.mean(), 2),
                    analysis::FormatDouble(parallelism.mean(), 2)});
      if (protocol != Protocol::kOpenTwoPhase && correct.rate() != 1.0) {
        expectations_hold = false;
      }
    }
  }
  std::cout << table.ToString() << "\n";
  std::cout << (expectations_hold
                    ? "RESULT: serial/closed/validated protocols produced "
                      "only Comp-C executions; any correctness loss is "
                      "confined to uncoordinated open nesting.\n"
                    : "RESULT: a supposedly-safe protocol produced an "
                      "incorrect execution — bug!\n");
  return expectations_hold ? 0 : 1;
}
