// Experiment E7 (DESIGN.md): the concurrency that semantic knowledge
// buys — the paper's core motivation ("current models offer only
// restricted degrees of parallelism", §2).
//
// Makespan (lock-step rounds) and effective parallelism of the four
// protocols on one component network, as a function of how much semantic
// commutativity the components declare (the probability that two services
// of a component are *conflicting*; the rest commute).
//
// Expected shape: uncoordinated open nesting is fastest but unsafe (E6);
// the safe protocols' cost tracks declared conflicts — with mostly
// commuting services, validated open nesting approaches open nesting's
// speed while staying Comp-C, which is precisely the trade the composite
// theory is about.  Closed nesting pays root-lifetime locks regardless.

#include <iostream>

#include "analysis/stats.h"
#include "runtime/system_executor.h"
#include "util/logging.h"
#include "workload/program_gen.h"

namespace {

using namespace comptx;           // NOLINT
using namespace comptx::runtime;  // NOLINT

}  // namespace

int main() {
  constexpr int kTrials = 40;
  std::cout << "E7: protocol makespan vs declared service conflicts ("
            << kTrials << " executions per cell; dag 3x2, 12 roots, 32 "
            << "items/component, zipf 0.6)\n\n";
  analysis::TextTable table({"svc_conflict_prob", "protocol", "rounds(mean)",
                             "speedup_vs_serial", "parallelism",
                             "restarts(mean)"});
  for (double conflict_prob : {0.0, 0.3, 0.7}) {
    workload::RuntimeWorkloadSpec spec;
    spec.layers = 3;
    spec.components_per_layer = 2;
    spec.invoke_fraction = 0.6;
    spec.num_roots = 12;
    spec.items_per_component = 32;
    spec.zipf_theta = 0.6;
    spec.service_conflict_prob = conflict_prob;

    double serial_rounds = 0.0;
    for (Protocol protocol :
         {Protocol::kGlobalSerial, Protocol::kClosedTwoPhase,
          Protocol::kOpenTwoPhase, Protocol::kOpenValidated,
          Protocol::kConservativeTimestamp}) {
      analysis::RunningStats rounds, parallelism, restarts;
      for (int seed = 1; seed <= kTrials; ++seed) {
        RuntimeSystem system =
            workload::GenerateRuntimeWorkload(spec, uint64_t(seed));
        ExecutorOptions options;
        options.protocol = protocol;
        options.seed = uint64_t(seed) * 31 + 7;
        auto result = ExecuteSystem(system, options);
        COMPTX_CHECK(result.ok()) << result.status().ToString();
        rounds.Add(double(result->stats.rounds));
        parallelism.Add(result->stats.avg_parallelism);
        restarts.Add(double(result->stats.deadlock_restarts +
                            result->stats.validation_restarts));
      }
      if (protocol == Protocol::kGlobalSerial) serial_rounds = rounds.mean();
      table.AddRow({analysis::FormatDouble(conflict_prob, 1),
                    ProtocolToString(protocol),
                    analysis::FormatDouble(rounds.mean(), 1),
                    analysis::FormatDouble(serial_rounds / rounds.mean(), 2),
                    analysis::FormatDouble(parallelism.mean(), 2),
                    analysis::FormatDouble(restarts.mean(), 2)});
    }
  }
  std::cout << table.ToString() << "\n";
  std::cout << "RESULT: uncoordinated open nesting sets the concurrency "
               "ceiling; among the safe protocols, top-down conservative "
               "timestamp admission is the only one that beats global "
               "serial at this contention (zero aborts by construction), "
               "optimistic validation's cost tracks declared semantic "
               "conflicts (fast when services commute, restart-bound as "
               "conflicts grow), and closed nesting is slowest and cannot "
               "exploit commutativity at all — coordination style and "
               "semantic knowledge are the paper's levers.\n";
  return 0;
}
