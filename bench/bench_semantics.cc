// Experiment E16 (DESIGN.md §14 / EXPERIMENTS.md): the semantic
// commutativity layer at scale.
//
// Generates ADT-tagged workload mixes (built-in counter/set/queue/escrow
// tables plus a uniform mixture) over the shared-bottom and layered-DAG
// shapes, then measures two things per mix:
//
//   1. Admission: batch CheckCompC on the tagged systems against their
//      spec-stripped raw twins (same events minus the five spec kinds, so
//      the conflict bits are identical).  The semantic layer can only
//      erase conflicts, so it must admit a superset — the headline
//      `semantic_admits_extra` counts executions only the spec saves.
//   2. Fast path: SweepCompC with and without the static fast path on the
//      tagged systems.  On shared-bottom mixes the semantic shared-bottom
//      rule decides configurations no bit-level theorem covers;
//      `semantic_decided` counts its firings and the speedup column is
//      the sweep wall-clock ratio, with bit-identical verdicts required.
//
// Plain chrono driver (no google-benchmark) so the output is a single
// machine-readable JSON document, committed as BENCH_semantics.json.
//
// Usage: bench_semantics [output.json]

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/sweep.h"
#include "staticcheck/analyzer.h"
#include "testing/events.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/schedule_gen.h"
#include "workload/topology_gen.h"
#include "workload/trace.h"

namespace {

using namespace comptx;  // NOLINT
using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct Mix {
  std::string name;
  workload::AdtMix adt = workload::AdtMix::kNone;
  workload::TopologyKind kind = workload::TopologyKind::kSharedBottom;
  uint32_t systems = 0;
  // Shared-bottom defaults: order-3 chains (order 2 degenerates to a
  // join that Theorem 4 decides bit-level, bypassing the semantic rule)
  // with one chain per root and a single cross-root leaf pair on the
  // shared bottom — the shape where the semantic rule actually decides.
  uint32_t roots = 2;
  uint32_t fanout = 1;
  uint32_t instances = 2;
};

struct Row {
  std::string mix;
  uint32_t systems = 0;
  size_t nodes = 0;
  size_t erased_conflicts = 0;   // conflict bits the specs prove commuting
  size_t comp_c_semantic = 0;    // batch verdicts with the spec attached
  size_t comp_c_raw = 0;         // batch verdicts on the stripped twins
  size_t static_decided = 0;     // fast-path verdicts without a reduction
  size_t semantic_decided = 0;   // of those, decided by the semantic rule
  bool agree = true;             // plain sweep == fast sweep, bit for bit
  double semantic_us = 0;        // batch reduction, spec attached
  double raw_us = 0;             // batch reduction, stripped twins
  double fast_us = 0;            // fast-path sweep, spec attached

  double Speedup() const { return fast_us == 0 ? 0 : semantic_us / fast_us; }
};

/// The same execution with the spec events dropped: identical conflict
/// bits, nothing erased.  What a spec-unaware certifier would see.
CompositeSystem StripSpec(const CompositeSystem& cs) {
  auto events = testing::SystemToEvents(cs);
  COMPTX_CHECK(events.ok()) << events.status().ToString();
  std::vector<workload::TraceEvent> kept;
  kept.reserve(events->size());
  for (const workload::TraceEvent& e : *events) {
    switch (e.kind) {
      case workload::TraceEventKind::kAdtDecl:
      case workload::TraceEventKind::kAdtOp:
      case workload::TraceEventKind::kCommute:
      case workload::TraceEventKind::kClash:
      case workload::TraceEventKind::kTag:
        continue;
      default:
        kept.push_back(e);
    }
  }
  auto raw = testing::BuildSystem(kept);
  COMPTX_CHECK(raw.ok()) << raw.status().ToString();
  return *std::move(raw);
}

/// Conflict pairs of `cs` the attached spec erases, over all schedules.
size_t CountErased(const CompositeSystem& cs) {
  if (!cs.HasSpec()) return 0;
  size_t erased = 0;
  for (uint32_t s = 0; s < cs.ScheduleCount(); ++s) {
    cs.schedule(ScheduleId(s)).conflicts.ForEach([&](NodeId a, NodeId b) {
      if (a.index() < b.index() && cs.SemanticallyCommutes(a, b)) ++erased;
    });
  }
  return erased;
}

Row RunMix(const Mix& mix) {
  Row row;
  row.mix = mix.name;
  row.systems = mix.systems;

  std::vector<CompositeSystem> tagged;
  std::vector<CompositeSystem> raw;
  tagged.reserve(mix.systems);
  raw.reserve(mix.systems);
  for (uint32_t i = 0; i < mix.systems; ++i) {
    Rng rng(20260809u + i * 17u);
    workload::TopologySpec tspec;
    tspec.kind = mix.kind;
    tspec.depth =
        mix.kind == workload::TopologyKind::kSharedBottom ? 3 : 2;
    tspec.branches = 2;
    tspec.roots = mix.roots;
    tspec.fanout = mix.fanout;
    CompositeSystem cs = workload::GenerateTopology(tspec, rng);
    workload::ExecutionGenSpec espec;
    espec.adt = mix.adt;
    espec.adt_instances = mix.instances;
    auto populated = workload::PopulateExecution(cs, espec, rng);
    COMPTX_CHECK(populated.ok()) << populated.ToString();
    row.nodes += cs.NodeCount();
    row.erased_conflicts += CountErased(cs);
    raw.push_back(StripSpec(cs));
    tagged.push_back(std::move(cs));
  }
  std::vector<const CompositeSystem*> tagged_ptrs;
  std::vector<const CompositeSystem*> raw_ptrs;
  for (const CompositeSystem& cs : tagged) tagged_ptrs.push_back(&cs);
  for (const CompositeSystem& cs : raw) raw_ptrs.push_back(&cs);

  analysis::SweepOptions plain;
  plain.reduction.keep_fronts = false;
  analysis::SweepOptions fast = plain;
  fast.static_fast_path = true;

  // Best of 3 interleaved passes to damp scheduling noise.
  std::vector<analysis::SweepVerdict> semantic_verdicts;
  std::vector<analysis::SweepVerdict> raw_verdicts;
  std::vector<analysis::SweepVerdict> fast_verdicts;
  for (int rep = 0; rep < 3; ++rep) {
    Clock::time_point start = Clock::now();
    auto sv = analysis::SweepCompC(tagged_ptrs, plain);
    const double semantic_us = MicrosSince(start);
    start = Clock::now();
    auto rv = analysis::SweepCompC(raw_ptrs, plain);
    const double raw_us = MicrosSince(start);
    start = Clock::now();
    auto fv = analysis::SweepCompC(tagged_ptrs, fast);
    const double fast_us = MicrosSince(start);
    if (rep == 0 || semantic_us < row.semantic_us) row.semantic_us = semantic_us;
    if (rep == 0 || raw_us < row.raw_us) row.raw_us = raw_us;
    if (rep == 0 || fast_us < row.fast_us) row.fast_us = fast_us;
    semantic_verdicts = std::move(sv);
    raw_verdicts = std::move(rv);
    fast_verdicts = std::move(fv);
  }

  for (size_t i = 0; i < tagged.size(); ++i) {
    COMPTX_CHECK(semantic_verdicts[i].ok) << semantic_verdicts[i].status_message;
    COMPTX_CHECK(raw_verdicts[i].ok) << raw_verdicts[i].status_message;
    COMPTX_CHECK(fast_verdicts[i].ok) << fast_verdicts[i].status_message;
    row.comp_c_semantic += semantic_verdicts[i].comp_c ? 1 : 0;
    row.comp_c_raw += raw_verdicts[i].comp_c ? 1 : 0;
    row.agree =
        row.agree && semantic_verdicts[i].comp_c == fast_verdicts[i].comp_c;
    if (fast_verdicts[i].static_fast_path) {
      ++row.static_decided;
      staticcheck::AnalyzerOptions aopts;
      aopts.assume_valid = true;
      aopts.explain = false;
      if (staticcheck::AnalyzeConfiguration(tagged[i], aopts).semantic) {
        ++row.semantic_decided;
      }
    }
    // Mask-only soundness: the spec can only admit, never reject.
    COMPTX_CHECK(semantic_verdicts[i].comp_c || !raw_verdicts[i].comp_c)
        << row.mix << " system " << i
        << ": raw twin Comp-C but spec-attached system is not";
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_semantics.json";
  using workload::AdtMix;
  using workload::TopologyKind;
  const std::vector<Mix> mixes = {
      {"counter_shared_bottom", AdtMix::kCounter, TopologyKind::kSharedBottom,
       150},
      {"set_shared_bottom", AdtMix::kSet, TopologyKind::kSharedBottom, 150},
      {"queue_shared_bottom", AdtMix::kQueue, TopologyKind::kSharedBottom,
       150},
      {"escrow_shared_bottom", AdtMix::kEscrow, TopologyKind::kSharedBottom,
       150},
      {"mixed_shared_bottom", AdtMix::kMixed, TopologyKind::kSharedBottom,
       150},
      // Dense single-instance counters: maximal same-instance pairs, so
      // the erasure volume (and the admission gap) peaks here.
      {"counter_dense", AdtMix::kCounter, TopologyKind::kSharedBottom, 150,
       /*roots=*/3, /*fanout=*/2, /*instances=*/1},
      // General layered DAGs: the semantic rule rarely applies, the
      // admission gap must still be one-sided.
      {"mixed_layered_dag", AdtMix::kMixed, TopologyKind::kLayeredDag, 100,
       /*roots=*/3, /*fanout=*/2, /*instances=*/2},
  };

  std::vector<Row> rows;
  for (const Mix& mix : mixes) {
    rows.push_back(RunMix(mix));
    const Row& r = rows.back();
    std::cout << "mix=" << r.mix << " systems=" << r.systems
              << " erased=" << r.erased_conflicts
              << " comp_c semantic/raw=" << r.comp_c_semantic << "/"
              << r.comp_c_raw << " static_decided=" << r.static_decided
              << " semantic_decided=" << r.semantic_decided
              << " semantic=" << r.semantic_us / 1000.0 << "ms"
              << " raw=" << r.raw_us / 1000.0 << "ms"
              << " fast=" << r.fast_us / 1000.0 << "ms"
              << " speedup=" << r.Speedup()
              << " agree=" << (r.agree ? "yes" : "NO") << "\n";
  }

  bool all_agree = true;
  bool admission_one_sided = true;
  size_t total_semantic_decided = 0;
  size_t total_admits_extra = 0;
  for (const Row& r : rows) {
    all_agree = all_agree && r.agree;
    admission_one_sided =
        admission_one_sided && r.comp_c_semantic >= r.comp_c_raw;
    total_semantic_decided += r.semantic_decided;
    total_admits_extra += r.comp_c_semantic - r.comp_c_raw;
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"E16_semantic_commutativity\",\n"
       << "  \"threads\": " << ThreadPool::Global().ThreadCount() << ",\n"
       << "  \"all_verdicts_agree\": " << (all_agree ? "true" : "false")
       << ",\n"
       << "  \"admission_one_sided\": "
       << (admission_one_sided ? "true" : "false") << ",\n"
       << "  \"semantic_admits_extra\": " << total_admits_extra << ",\n"
       << "  \"semantic_rule_decided\": " << total_semantic_decided << ",\n"
       << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"mix\": \"" << r.mix << "\", \"systems\": " << r.systems
         << ", \"nodes\": " << r.nodes
         << ", \"erased_conflicts\": " << r.erased_conflicts
         << ", \"comp_c_semantic\": " << r.comp_c_semantic
         << ", \"comp_c_raw\": " << r.comp_c_raw
         << ", \"static_decided\": " << r.static_decided
         << ", \"semantic_decided\": " << r.semantic_decided
         << ", \"reduction_semantic_us\": " << r.semantic_us
         << ", \"reduction_raw_us\": " << r.raw_us
         << ", \"sweep_fast_us\": " << r.fast_us
         << ", \"speedup\": " << r.Speedup()
         << ", \"verdicts_agree\": " << (r.agree ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return (all_agree && admission_one_sided && total_semantic_decided > 0) ? 0
                                                                          : 1;
}
