// Experiment E12 (DESIGN.md / EXPERIMENTS.md): the static-analysis fast
// path for batch sweeps.
//
// Generates workload mixes dominated by the theorem shapes (stacks,
// forks, joins — the configurations the static analyzer decides without
// running the reduction) plus a general layered-DAG mix as the contrast
// case, then runs SweepCompC over each mix twice: with the reduction
// alone and with the static fast path.  The headline claim is a >= 2x
// wall-clock speedup on tree-heavy mixes with bit-identical verdicts;
// general mixes show the analyzer standing down (NEEDS_DYNAMIC) instead
// of guessing.
//
// Plain chrono driver (no google-benchmark) so the output is a single
// machine-readable JSON document, committed as BENCH_staticcheck.json.
//
// Usage: bench_staticcheck [output.json]

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT
using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct Mix {
  std::string name;
  std::vector<workload::TopologyKind> kinds;  // cycled over the systems
  uint32_t systems = 0;
  uint32_t depth = 3;
  // Large systems (the defaults) are effectively never Comp-C under this
  // generator — every mix above campaign size is refuted somewhere — so
  // the small_mixed mix shrinks to fuzz-campaign proportions to cover
  // the SAFE verdict as well.
  uint32_t roots = 8;
  uint32_t fanout = 3;
  double conflict_prob = 0.3;
};

struct Row {
  std::string mix;
  uint32_t systems = 0;
  size_t nodes = 0;
  size_t static_decided = 0;
  size_t comp_c = 0;
  bool agree = true;
  double plain_us = 0;
  double fast_us = 0;

  double Speedup() const { return fast_us == 0 ? 0 : plain_us / fast_us; }
};

workload::WorkloadSpec MakeSpec(const Mix& mix, workload::TopologyKind kind,
                                bool disorder) {
  workload::WorkloadSpec spec;
  spec.topology.kind = kind;
  spec.topology.depth = mix.depth;
  spec.topology.branches = 3;
  spec.topology.roots = mix.roots;
  spec.topology.fanout = mix.fanout;
  spec.execution.conflict_prob = mix.conflict_prob;
  // Alternating disorder keeps the refutation path exercised without
  // making every system trivially inconsistent.
  spec.execution.disorder_prob = disorder ? 0.25 : 0.0;
  spec.execution.intra_weak_prob = 0.2;
  spec.execution.intra_strong_prob = 0.1;
  return spec;
}

Row RunMix(const Mix& mix) {
  Row row;
  row.mix = mix.name;
  row.systems = mix.systems;

  std::vector<CompositeSystem> owned;
  owned.reserve(mix.systems);
  for (uint32_t i = 0; i < mix.systems; ++i) {
    const workload::TopologyKind kind = mix.kinds[i % mix.kinds.size()];
    auto cs = workload::GenerateSystem(MakeSpec(mix, kind, i % 2 == 1),
                                       20260806u + i);
    COMPTX_CHECK(cs.ok()) << cs.status().ToString();
    row.nodes += cs->NodeCount();
    owned.push_back(*std::move(cs));
  }
  std::vector<const CompositeSystem*> systems;
  systems.reserve(owned.size());
  for (const CompositeSystem& cs : owned) systems.push_back(&cs);

  analysis::SweepOptions plain;
  plain.reduction.keep_fronts = false;
  analysis::SweepOptions fast = plain;
  fast.static_fast_path = true;

  // Best of 3 passes each, interleaved, to damp scheduling noise.
  std::vector<analysis::SweepVerdict> plain_verdicts;
  std::vector<analysis::SweepVerdict> fast_verdicts;
  for (int rep = 0; rep < 3; ++rep) {
    Clock::time_point start = Clock::now();
    std::vector<analysis::SweepVerdict> p = analysis::SweepCompC(systems, plain);
    const double plain_us = MicrosSince(start);
    start = Clock::now();
    std::vector<analysis::SweepVerdict> f = analysis::SweepCompC(systems, fast);
    const double fast_us = MicrosSince(start);
    if (rep == 0 || plain_us < row.plain_us) row.plain_us = plain_us;
    if (rep == 0 || fast_us < row.fast_us) row.fast_us = fast_us;
    plain_verdicts = std::move(p);
    fast_verdicts = std::move(f);
  }

  for (size_t i = 0; i < systems.size(); ++i) {
    COMPTX_CHECK(plain_verdicts[i].ok) << plain_verdicts[i].status_message;
    COMPTX_CHECK(fast_verdicts[i].ok) << fast_verdicts[i].status_message;
    row.agree =
        row.agree && plain_verdicts[i].comp_c == fast_verdicts[i].comp_c;
    row.static_decided += fast_verdicts[i].static_fast_path ? 1 : 0;
    row.comp_c += plain_verdicts[i].comp_c ? 1 : 0;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_staticcheck.json";
  using workload::TopologyKind;
  const std::vector<Mix> mixes = {
      {"stacks", {TopologyKind::kStack}, 120, 5},
      {"forks", {TopologyKind::kFork}, 120, 4},
      {"joins", {TopologyKind::kJoin}, 120, 4},
      {"tree_heavy",
       {TopologyKind::kStack, TopologyKind::kFork, TopologyKind::kJoin},
       180, 4},
      {"general_dag", {TopologyKind::kLayeredDag}, 60, 4},
      // Campaign-sized systems: both verdicts show up, and general shapes
      // actually reach NEEDS_DYNAMIC instead of being refuted locally.
      {"small_mixed",
       {TopologyKind::kStack, TopologyKind::kFork, TopologyKind::kJoin,
        TopologyKind::kLayeredDag},
       200, 2, /*roots=*/3, /*fanout=*/2, /*conflict_prob=*/0.15},
  };

  std::vector<Row> rows;
  for (const Mix& mix : mixes) {
    rows.push_back(RunMix(mix));
    const Row& r = rows.back();
    std::cout << "mix=" << r.mix << " systems=" << r.systems
              << " static_decided=" << r.static_decided
              << " plain=" << r.plain_us / 1000.0 << "ms"
              << " fast=" << r.fast_us / 1000.0 << "ms"
              << " speedup=" << r.Speedup()
              << " agree=" << (r.agree ? "yes" : "NO") << "\n";
  }

  bool all_agree = true;
  double tree_heavy_speedup = 0;
  for (const Row& r : rows) {
    all_agree = all_agree && r.agree;
    if (r.mix == "tree_heavy") tree_heavy_speedup = r.Speedup();
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"E12_static_fast_path\",\n"
       << "  \"threads\": " << ThreadPool::Global().ThreadCount() << ",\n"
       << "  \"all_verdicts_agree\": " << (all_agree ? "true" : "false")
       << ",\n"
       << "  \"tree_heavy_speedup\": " << tree_heavy_speedup << ",\n"
       << "  \"tree_heavy_speedup_at_least_2x\": "
       << (tree_heavy_speedup >= 2.0 ? "true" : "false") << ",\n"
       << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"mix\": \"" << r.mix << "\", \"systems\": " << r.systems
         << ", \"nodes\": " << r.nodes
         << ", \"static_decided\": " << r.static_decided
         << ", \"comp_c\": " << r.comp_c
         << ", \"sweep_plain_us\": " << r.plain_us
         << ", \"sweep_fast_us\": " << r.fast_us
         << ", \"speedup\": " << r.Speedup()
         << ", \"verdicts_agree\": " << (r.agree ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return all_agree ? 0 : 1;
}
