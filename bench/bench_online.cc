// Experiment E10 (DESIGN.md / EXPERIMENTS.md): online incremental
// certification vs batch re-checking.
//
// For growing executions the driver replays the same event stream two
// ways: once through online::Certifier (one incremental patch per event)
// and once through "batch-per-event" (re-running CheckCompC on the full
// prefix after every event — what a system without the online subsystem
// would have to do for a continuous verdict).  The headline claim is that
// the amortized online cost per event grows strictly slower than the
// batch re-check cost per event as executions get larger.
//
// Plain chrono driver (no google-benchmark) so the output is a single
// machine-readable JSON document, committed as BENCH_online.json.
//
// Usage: bench_online [output.json]

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/correctness.h"
#include "online/certifier.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace {

using namespace comptx;  // NOLINT
using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct Row {
  uint32_t roots = 0;
  size_t events = 0;
  size_t nodes = 0;
  uint32_t order = 0;
  bool verdict = false;
  bool agreement = false;
  double online_total_us = 0;
  double batch_total_us = 0;
  size_t certifiable_prefix = 0;  // longest prefix the engine accepts
  uint64_t pruned_nodes = 0;
  size_t live_nodes_after_commit = 0;

  double OnlinePerEvent() const {
    return events == 0 ? 0 : online_total_us / double(events);
  }
  double BatchPerEvent() const {
    return events == 0 ? 0 : batch_total_us / double(events);
  }
};

std::vector<workload::TraceEvent> MakeEvents(uint32_t roots, uint64_t seed,
                                             size_t& nodes) {
  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = roots;
  spec.topology.fanout = 2;
  spec.execution.conflict_prob = 0.15;
  spec.execution.intra_weak_prob = 0.2;
  auto cs = workload::GenerateSystem(spec, seed);
  COMPTX_CHECK(cs.ok()) << cs.status().ToString();
  nodes = cs->NodeCount();
  auto text = workload::SaveTrace(*cs);
  COMPTX_CHECK(text.ok());
  auto events = workload::ParseTraceEvents(*text);
  COMPTX_CHECK(events.ok());
  return std::move(events).value();
}

Row RunSize(uint32_t roots, uint64_t seed) {
  Row row;
  row.roots = roots;
  std::vector<workload::TraceEvent> events = MakeEvents(roots, seed, row.nodes);
  row.events = events.size();

  // Online: one certifier session ingesting the whole stream (best of 3
  // passes to damp scheduling noise).
  bool online_verdict = false;
  uint32_t online_order = 0;
  for (int rep = 0; rep < 3; ++rep) {
    online::Certifier certifier;
    Clock::time_point start = Clock::now();
    for (const auto& event : events) {
      Status status = certifier.Ingest(event);
      COMPTX_CHECK(status.ok()) << status.ToString();
    }
    bool verdict = certifier.Certifiable();
    double us = MicrosSince(start);
    if (rep == 0 || us < row.online_total_us) row.online_total_us = us;
    online_verdict = verdict;
    online_order = certifier.Verdict().order;
  }
  row.verdict = online_verdict;
  row.order = online_order;

  // Batch-per-event: re-run CheckCompC on the accumulated prefix after
  // every event (validation off: prefixes are legitimately incomplete).
  CompositeSystem mirror;
  bool batch_verdict = true;
  Clock::time_point start = Clock::now();
  for (const auto& event : events) {
    Status status = workload::ApplyTraceEvent(mirror, event);
    COMPTX_CHECK(status.ok()) << status.ToString();
    ReductionOptions options;
    options.validate = false;
    options.keep_fronts = false;
    auto result = CheckCompC(mirror, options);
    COMPTX_CHECK(result.ok()) << result.status().ToString();
    batch_verdict = result->correct;
  }
  row.batch_total_us = MicrosSince(start);
  row.agreement = (batch_verdict == online_verdict);

  // Epoch pruning: measured on the longest *certifiable* prefix — once
  // certification fails the engine keeps everything as failure evidence,
  // so pruning an uncertifiable random stream releases nothing (the
  // pruned_nodes: 0 rows earlier revisions committed).  Pruning is a
  // live-session memory optimization; the certifiable prefix is exactly
  // the regime it exists for.  Sealing goes through one commit_through
  // watermark, the same cumulative event long-lived clients send.
  {
    online::Certifier probe;
    row.certifiable_prefix = events.size();
    for (size_t i = 0; i < events.size(); ++i) {
      (void)probe.Ingest(events[i]);
      if (!probe.Certifiable()) {
        row.certifiable_prefix = i;
        break;
      }
    }
    online::Certifier certifier;
    for (size_t i = 0; i < row.certifiable_prefix; ++i) {
      Status status = certifier.Ingest(events[i]);
      COMPTX_CHECK(status.ok()) << status.ToString();
    }
    workload::TraceEvent mark;
    mark.kind = workload::TraceEventKind::kCommitThrough;
    mark.a = static_cast<uint32_t>(certifier.system().Roots().size());
    Status status = certifier.Ingest(mark);
    COMPTX_CHECK(status.ok()) << status.ToString();
    certifier.Prune();
    online::CertifierStats stats = certifier.Stats();
    row.pruned_nodes = stats.pruned_nodes;
    row.live_nodes_after_commit = stats.live_nodes;
  }
  return row;
}

// Streaming-window scenario: roots arrive forever on one schedule, each
// conflicting (and weak-output-ordered) with its predecessor's leaf, and
// every root is committed as soon as its successor is in.  The execution
// is certifiable throughout; epoch pruning keeps the *live* state a
// bounded window while the total system grows without bound — the memory
// story of the online subsystem.
struct WindowRow {
  uint32_t roots = 0;
  size_t events = 0;
  size_t nodes = 0;
  bool verdict = false;
  double online_total_us = 0;
  double batch_final_check_us = 0;  // one batch run on the full system
  uint64_t pruned_nodes = 0;
  size_t live_nodes = 0;
  uint64_t prune_passes = 0;

  double OnlinePerEvent() const {
    return events == 0 ? 0 : online_total_us / double(events);
  }
};

WindowRow RunWindow(uint32_t roots) {
  using workload::TraceEvent;
  using workload::TraceEventKind;
  WindowRow row;
  row.roots = roots;

  std::vector<TraceEvent> events;
  TraceEvent e;
  e.kind = TraceEventKind::kSchedule;
  e.name = "S";
  events.push_back(e);
  uint32_t prev_leaf = kInvalidIndex;
  uint32_t prev_root = kInvalidIndex;
  uint32_t next_id = 0;
  for (uint32_t i = 0; i < roots; ++i) {
    e = {};
    e.kind = TraceEventKind::kRoot;
    e.schedule = 0;
    e.name = "T" + std::to_string(i);
    events.push_back(e);
    const uint32_t root = next_id++;
    e = {};
    e.kind = TraceEventKind::kLeaf;
    e.parent = root;
    e.name = "x" + std::to_string(i);
    events.push_back(e);
    const uint32_t leaf = next_id++;
    if (prev_leaf != kInvalidIndex) {
      e = {};
      e.kind = TraceEventKind::kConflict;
      e.a = prev_leaf;
      e.b = leaf;
      events.push_back(e);
      e.kind = TraceEventKind::kWeakOutput;
      events.push_back(e);
      // The predecessor is finished and fully ordered: commit it.
      e = {};
      e.kind = TraceEventKind::kCommit;
      e.parent = prev_root;
      events.push_back(e);
    }
    prev_leaf = leaf;
    prev_root = root;
  }
  row.events = events.size();

  online::Certifier certifier;
  Clock::time_point start = Clock::now();
  for (const TraceEvent& event : events) {
    Status status = certifier.Ingest(event);
    COMPTX_CHECK(status.ok()) << status.ToString();
  }
  row.online_total_us = MicrosSince(start);
  row.verdict = certifier.Certifiable();
  row.nodes = certifier.system().NodeCount();

  online::CertifierStats stats = certifier.Stats();
  row.pruned_nodes = stats.pruned_nodes;
  row.live_nodes = stats.live_nodes;
  row.prune_passes = stats.prune_passes;

  // Reference point: ONE batch re-check on the accumulated system (an
  // online consumer would pay this per event without src/online).
  start = Clock::now();
  ReductionOptions options;
  options.validate = false;
  options.keep_fronts = false;
  auto result = CheckCompC(certifier.system(), options);
  COMPTX_CHECK(result.ok());
  COMPTX_CHECK(result->correct == row.verdict);
  row.batch_final_check_us = MicrosSince(start);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_online.json";
  const std::vector<uint32_t> sizes = {4, 8, 16, 32, 64};
  std::vector<Row> rows;
  for (uint32_t roots : sizes) {
    rows.push_back(RunSize(roots, 20260806 + roots));
    const Row& r = rows.back();
    std::cout << "roots=" << r.roots << " events=" << r.events
              << " online/event=" << r.OnlinePerEvent() << "us"
              << " batch/event=" << r.BatchPerEvent() << "us"
              << " speedup=" << r.BatchPerEvent() / r.OnlinePerEvent()
              << " pruned=" << r.pruned_nodes << "@" << r.certifiable_prefix
              << " agreement=" << (r.agreement ? "yes" : "NO") << "\n";
  }

  const std::vector<uint32_t> window_sizes = {256, 1024, 4096};
  std::vector<WindowRow> window_rows;
  for (uint32_t roots : window_sizes) {
    window_rows.push_back(RunWindow(roots));
    const WindowRow& w = window_rows.back();
    std::cout << "window roots=" << w.roots << " events=" << w.events
              << " online/event=" << w.OnlinePerEvent() << "us"
              << " live=" << w.live_nodes << "/" << w.nodes
              << " pruned=" << w.pruned_nodes
              << " one-batch-check=" << w.batch_final_check_us << "us"
              << " certifiable=" << (w.verdict ? "yes" : "NO") << "\n";
  }

  // The claim: the online per-event cost grows strictly slower than the
  // batch per-event cost, i.e. the speedup is strictly increasing in the
  // execution size.
  bool grows_slower = true;
  for (size_t i = 1; i < rows.size(); ++i) {
    double prev = rows[i - 1].BatchPerEvent() / rows[i - 1].OnlinePerEvent();
    double cur = rows[i].BatchPerEvent() / rows[i].OnlinePerEvent();
    if (cur <= prev) grows_slower = false;
  }
  bool all_agree = true;
  for (const Row& r : rows) all_agree = all_agree && r.agreement;
  // Guard against regressing the prune measurement back into a no-op.
  bool pruning_exercised = true;
  for (const Row& r : rows) pruning_exercised &= r.pruned_nodes > 0;
  bool window_ok = true;
  for (const WindowRow& w : window_rows) {
    window_ok = window_ok && w.verdict && w.live_nodes < w.nodes / 4;
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"E10_online_certification\",\n"
       << "  \"topology\": \"layered_dag\",\n"
       << "  \"depth\": 3,\n"
       << "  \"conflict_prob\": 0.15,\n"
       << "  \"threads\": " << ThreadPool::Global().ThreadCount() << ",\n"
       << "  \"per_event_cost_grows_slower_than_batch\": "
       << (grows_slower ? "true" : "false") << ",\n"
       << "  \"all_prefix_verdicts_agree\": " << (all_agree ? "true" : "false")
       << ",\n"
       << "  \"pruning_exercised_on_certifiable_prefix\": "
       << (pruning_exercised ? "true" : "false") << ",\n"
       << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"roots\": " << r.roots << ", \"events\": " << r.events
         << ", \"nodes\": " << r.nodes << ", \"order\": " << r.order
         << ", \"certifiable\": " << (r.verdict ? "true" : "false")
         << ", \"online_total_us\": " << r.online_total_us
         << ", \"online_per_event_us\": " << r.OnlinePerEvent()
         << ", \"batch_total_us\": " << r.batch_total_us
         << ", \"batch_per_event_us\": " << r.BatchPerEvent()
         << ", \"speedup\": " << r.BatchPerEvent() / r.OnlinePerEvent()
         << ", \"certifiable_prefix\": " << r.certifiable_prefix
         << ", \"pruned_nodes\": " << r.pruned_nodes
         << ", \"live_nodes_after_commit\": " << r.live_nodes_after_commit
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"streaming_window_bounded_live_state\": "
       << (window_ok ? "true" : "false") << ",\n"
       << "  \"streaming_window\": [\n";
  for (size_t i = 0; i < window_rows.size(); ++i) {
    const WindowRow& w = window_rows[i];
    json << "    {\"roots\": " << w.roots << ", \"events\": " << w.events
         << ", \"nodes\": " << w.nodes
         << ", \"certifiable\": " << (w.verdict ? "true" : "false")
         << ", \"online_total_us\": " << w.online_total_us
         << ", \"online_per_event_us\": " << w.OnlinePerEvent()
         << ", \"one_batch_check_us\": " << w.batch_final_check_us
         << ", \"pruned_nodes\": " << w.pruned_nodes
         << ", \"live_nodes\": " << w.live_nodes
         << ", \"prune_passes\": " << w.prune_passes << "}"
         << (i + 1 < window_rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return grows_slower && all_agree && window_ok && pruning_exercised ? 0 : 1;
}
