
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/comptx_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_composite_system.cc" "tests/CMakeFiles/comptx_tests.dir/test_composite_system.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_composite_system.cc.o.d"
  "/root/repo/tests/test_criteria.cc" "tests/CMakeFiles/comptx_tests.dir/test_criteria.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_criteria.cc.o.d"
  "/root/repo/tests/test_digraph.cc" "tests/CMakeFiles/comptx_tests.dir/test_digraph.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_digraph.cc.o.d"
  "/root/repo/tests/test_edge_cases.cc" "tests/CMakeFiles/comptx_tests.dir/test_edge_cases.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_edge_cases.cc.o.d"
  "/root/repo/tests/test_failure_injection.cc" "tests/CMakeFiles/comptx_tests.dir/test_failure_injection.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_failure_injection.cc.o.d"
  "/root/repo/tests/test_figures.cc" "tests/CMakeFiles/comptx_tests.dir/test_figures.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_figures.cc.o.d"
  "/root/repo/tests/test_front.cc" "tests/CMakeFiles/comptx_tests.dir/test_front.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_front.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/comptx_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_graph_algorithms.cc" "tests/CMakeFiles/comptx_tests.dir/test_graph_algorithms.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_graph_algorithms.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/comptx_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_history_recorder.cc" "tests/CMakeFiles/comptx_tests.dir/test_history_recorder.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_history_recorder.cc.o.d"
  "/root/repo/tests/test_invocation_graph.cc" "tests/CMakeFiles/comptx_tests.dir/test_invocation_graph.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_invocation_graph.cc.o.d"
  "/root/repo/tests/test_lock_fairness.cc" "tests/CMakeFiles/comptx_tests.dir/test_lock_fairness.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_lock_fairness.cc.o.d"
  "/root/repo/tests/test_models.cc" "tests/CMakeFiles/comptx_tests.dir/test_models.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_models.cc.o.d"
  "/root/repo/tests/test_oracle.cc" "tests/CMakeFiles/comptx_tests.dir/test_oracle.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_oracle.cc.o.d"
  "/root/repo/tests/test_protocol_properties.cc" "tests/CMakeFiles/comptx_tests.dir/test_protocol_properties.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_protocol_properties.cc.o.d"
  "/root/repo/tests/test_reducer.cc" "tests/CMakeFiles/comptx_tests.dir/test_reducer.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_reducer.cc.o.d"
  "/root/repo/tests/test_reduction.cc" "tests/CMakeFiles/comptx_tests.dir/test_reduction.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_reduction.cc.o.d"
  "/root/repo/tests/test_relation.cc" "tests/CMakeFiles/comptx_tests.dir/test_relation.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_relation.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/comptx_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_runtime.cc" "tests/CMakeFiles/comptx_tests.dir/test_runtime.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_runtime.cc.o.d"
  "/root/repo/tests/test_runtime_integration.cc" "tests/CMakeFiles/comptx_tests.dir/test_runtime_integration.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_runtime_integration.cc.o.d"
  "/root/repo/tests/test_serial_front.cc" "tests/CMakeFiles/comptx_tests.dir/test_serial_front.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_serial_front.cc.o.d"
  "/root/repo/tests/test_status.cc" "tests/CMakeFiles/comptx_tests.dir/test_status.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_status.cc.o.d"
  "/root/repo/tests/test_string_util.cc" "tests/CMakeFiles/comptx_tests.dir/test_string_util.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_string_util.cc.o.d"
  "/root/repo/tests/test_theorem1_property.cc" "tests/CMakeFiles/comptx_tests.dir/test_theorem1_property.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_theorem1_property.cc.o.d"
  "/root/repo/tests/test_theorems.cc" "tests/CMakeFiles/comptx_tests.dir/test_theorems.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_theorems.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/comptx_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_validate.cc" "tests/CMakeFiles/comptx_tests.dir/test_validate.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_validate.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/comptx_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/comptx_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/comptx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
