# Empty dependencies file for comptx_tests.
# This may be replaced when dependencies are built.
