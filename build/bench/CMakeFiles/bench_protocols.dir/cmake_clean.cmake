file(REMOVE_RECURSE
  "CMakeFiles/bench_protocols.dir/bench_protocols.cc.o"
  "CMakeFiles/bench_protocols.dir/bench_protocols.cc.o.d"
  "bench_protocols"
  "bench_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
