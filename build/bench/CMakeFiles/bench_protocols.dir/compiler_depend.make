# Empty compiler generated dependencies file for bench_protocols.
# This may be replaced when dependencies are built.
