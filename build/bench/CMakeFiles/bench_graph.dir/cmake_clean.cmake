file(REMOVE_RECURSE
  "CMakeFiles/bench_graph.dir/bench_graph.cc.o"
  "CMakeFiles/bench_graph.dir/bench_graph.cc.o.d"
  "bench_graph"
  "bench_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
