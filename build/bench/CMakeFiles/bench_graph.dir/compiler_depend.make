# Empty compiler generated dependencies file for bench_graph.
# This may be replaced when dependencies are built.
