file(REMOVE_RECURSE
  "CMakeFiles/bench_reduction_scaling.dir/bench_reduction_scaling.cc.o"
  "CMakeFiles/bench_reduction_scaling.dir/bench_reduction_scaling.cc.o.d"
  "bench_reduction_scaling"
  "bench_reduction_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reduction_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
