# Empty compiler generated dependencies file for bench_theorems.
# This may be replaced when dependencies are built.
