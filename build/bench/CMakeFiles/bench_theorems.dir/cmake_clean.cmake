file(REMOVE_RECURSE
  "CMakeFiles/bench_theorems.dir/bench_theorems.cc.o"
  "CMakeFiles/bench_theorems.dir/bench_theorems.cc.o.d"
  "bench_theorems"
  "bench_theorems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
