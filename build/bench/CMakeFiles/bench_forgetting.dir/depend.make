# Empty dependencies file for bench_forgetting.
# This may be replaced when dependencies are built.
