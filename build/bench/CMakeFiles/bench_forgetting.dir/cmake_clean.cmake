file(REMOVE_RECURSE
  "CMakeFiles/bench_forgetting.dir/bench_forgetting.cc.o"
  "CMakeFiles/bench_forgetting.dir/bench_forgetting.cc.o.d"
  "bench_forgetting"
  "bench_forgetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forgetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
