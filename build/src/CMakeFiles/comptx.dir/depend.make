# Empty dependencies file for comptx.
# This may be replaced when dependencies are built.
