
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/builder.cc" "src/CMakeFiles/comptx.dir/analysis/builder.cc.o" "gcc" "src/CMakeFiles/comptx.dir/analysis/builder.cc.o.d"
  "/root/repo/src/analysis/figures.cc" "src/CMakeFiles/comptx.dir/analysis/figures.cc.o" "gcc" "src/CMakeFiles/comptx.dir/analysis/figures.cc.o.d"
  "/root/repo/src/analysis/models.cc" "src/CMakeFiles/comptx.dir/analysis/models.cc.o" "gcc" "src/CMakeFiles/comptx.dir/analysis/models.cc.o.d"
  "/root/repo/src/analysis/printer.cc" "src/CMakeFiles/comptx.dir/analysis/printer.cc.o" "gcc" "src/CMakeFiles/comptx.dir/analysis/printer.cc.o.d"
  "/root/repo/src/analysis/stats.cc" "src/CMakeFiles/comptx.dir/analysis/stats.cc.o" "gcc" "src/CMakeFiles/comptx.dir/analysis/stats.cc.o.d"
  "/root/repo/src/core/calculation.cc" "src/CMakeFiles/comptx.dir/core/calculation.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/calculation.cc.o.d"
  "/root/repo/src/core/composite_system.cc" "src/CMakeFiles/comptx.dir/core/composite_system.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/composite_system.cc.o.d"
  "/root/repo/src/core/correctness.cc" "src/CMakeFiles/comptx.dir/core/correctness.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/correctness.cc.o.d"
  "/root/repo/src/core/front.cc" "src/CMakeFiles/comptx.dir/core/front.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/front.cc.o.d"
  "/root/repo/src/core/invocation_graph.cc" "src/CMakeFiles/comptx.dir/core/invocation_graph.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/invocation_graph.cc.o.d"
  "/root/repo/src/core/node.cc" "src/CMakeFiles/comptx.dir/core/node.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/node.cc.o.d"
  "/root/repo/src/core/observed_order.cc" "src/CMakeFiles/comptx.dir/core/observed_order.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/observed_order.cc.o.d"
  "/root/repo/src/core/reduction.cc" "src/CMakeFiles/comptx.dir/core/reduction.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/reduction.cc.o.d"
  "/root/repo/src/core/relation.cc" "src/CMakeFiles/comptx.dir/core/relation.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/relation.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/CMakeFiles/comptx.dir/core/schedule.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/schedule.cc.o.d"
  "/root/repo/src/core/serial_front.cc" "src/CMakeFiles/comptx.dir/core/serial_front.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/serial_front.cc.o.d"
  "/root/repo/src/core/validate.cc" "src/CMakeFiles/comptx.dir/core/validate.cc.o" "gcc" "src/CMakeFiles/comptx.dir/core/validate.cc.o.d"
  "/root/repo/src/criteria/compare.cc" "src/CMakeFiles/comptx.dir/criteria/compare.cc.o" "gcc" "src/CMakeFiles/comptx.dir/criteria/compare.cc.o.d"
  "/root/repo/src/criteria/conflict_consistency.cc" "src/CMakeFiles/comptx.dir/criteria/conflict_consistency.cc.o" "gcc" "src/CMakeFiles/comptx.dir/criteria/conflict_consistency.cc.o.d"
  "/root/repo/src/criteria/csr.cc" "src/CMakeFiles/comptx.dir/criteria/csr.cc.o" "gcc" "src/CMakeFiles/comptx.dir/criteria/csr.cc.o.d"
  "/root/repo/src/criteria/fcc.cc" "src/CMakeFiles/comptx.dir/criteria/fcc.cc.o" "gcc" "src/CMakeFiles/comptx.dir/criteria/fcc.cc.o.d"
  "/root/repo/src/criteria/jcc.cc" "src/CMakeFiles/comptx.dir/criteria/jcc.cc.o" "gcc" "src/CMakeFiles/comptx.dir/criteria/jcc.cc.o.d"
  "/root/repo/src/criteria/llsr.cc" "src/CMakeFiles/comptx.dir/criteria/llsr.cc.o" "gcc" "src/CMakeFiles/comptx.dir/criteria/llsr.cc.o.d"
  "/root/repo/src/criteria/opsr.cc" "src/CMakeFiles/comptx.dir/criteria/opsr.cc.o" "gcc" "src/CMakeFiles/comptx.dir/criteria/opsr.cc.o.d"
  "/root/repo/src/criteria/oracle.cc" "src/CMakeFiles/comptx.dir/criteria/oracle.cc.o" "gcc" "src/CMakeFiles/comptx.dir/criteria/oracle.cc.o.d"
  "/root/repo/src/criteria/scc.cc" "src/CMakeFiles/comptx.dir/criteria/scc.cc.o" "gcc" "src/CMakeFiles/comptx.dir/criteria/scc.cc.o.d"
  "/root/repo/src/graph/cycle_finder.cc" "src/CMakeFiles/comptx.dir/graph/cycle_finder.cc.o" "gcc" "src/CMakeFiles/comptx.dir/graph/cycle_finder.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/CMakeFiles/comptx.dir/graph/digraph.cc.o" "gcc" "src/CMakeFiles/comptx.dir/graph/digraph.cc.o.d"
  "/root/repo/src/graph/dot.cc" "src/CMakeFiles/comptx.dir/graph/dot.cc.o" "gcc" "src/CMakeFiles/comptx.dir/graph/dot.cc.o.d"
  "/root/repo/src/graph/quotient.cc" "src/CMakeFiles/comptx.dir/graph/quotient.cc.o" "gcc" "src/CMakeFiles/comptx.dir/graph/quotient.cc.o.d"
  "/root/repo/src/graph/tarjan_scc.cc" "src/CMakeFiles/comptx.dir/graph/tarjan_scc.cc.o" "gcc" "src/CMakeFiles/comptx.dir/graph/tarjan_scc.cc.o.d"
  "/root/repo/src/graph/topological_sort.cc" "src/CMakeFiles/comptx.dir/graph/topological_sort.cc.o" "gcc" "src/CMakeFiles/comptx.dir/graph/topological_sort.cc.o.d"
  "/root/repo/src/graph/transitive_closure.cc" "src/CMakeFiles/comptx.dir/graph/transitive_closure.cc.o" "gcc" "src/CMakeFiles/comptx.dir/graph/transitive_closure.cc.o.d"
  "/root/repo/src/runtime/cc_scheduler.cc" "src/CMakeFiles/comptx.dir/runtime/cc_scheduler.cc.o" "gcc" "src/CMakeFiles/comptx.dir/runtime/cc_scheduler.cc.o.d"
  "/root/repo/src/runtime/component.cc" "src/CMakeFiles/comptx.dir/runtime/component.cc.o" "gcc" "src/CMakeFiles/comptx.dir/runtime/component.cc.o.d"
  "/root/repo/src/runtime/data_store.cc" "src/CMakeFiles/comptx.dir/runtime/data_store.cc.o" "gcc" "src/CMakeFiles/comptx.dir/runtime/data_store.cc.o.d"
  "/root/repo/src/runtime/deadlock.cc" "src/CMakeFiles/comptx.dir/runtime/deadlock.cc.o" "gcc" "src/CMakeFiles/comptx.dir/runtime/deadlock.cc.o.d"
  "/root/repo/src/runtime/history_recorder.cc" "src/CMakeFiles/comptx.dir/runtime/history_recorder.cc.o" "gcc" "src/CMakeFiles/comptx.dir/runtime/history_recorder.cc.o.d"
  "/root/repo/src/runtime/lock_manager.cc" "src/CMakeFiles/comptx.dir/runtime/lock_manager.cc.o" "gcc" "src/CMakeFiles/comptx.dir/runtime/lock_manager.cc.o.d"
  "/root/repo/src/runtime/program.cc" "src/CMakeFiles/comptx.dir/runtime/program.cc.o" "gcc" "src/CMakeFiles/comptx.dir/runtime/program.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/CMakeFiles/comptx.dir/runtime/scheduler.cc.o" "gcc" "src/CMakeFiles/comptx.dir/runtime/scheduler.cc.o.d"
  "/root/repo/src/runtime/system_executor.cc" "src/CMakeFiles/comptx.dir/runtime/system_executor.cc.o" "gcc" "src/CMakeFiles/comptx.dir/runtime/system_executor.cc.o.d"
  "/root/repo/src/runtime/two_phase_locking.cc" "src/CMakeFiles/comptx.dir/runtime/two_phase_locking.cc.o" "gcc" "src/CMakeFiles/comptx.dir/runtime/two_phase_locking.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/comptx.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/comptx.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/comptx.dir/util/status.cc.o" "gcc" "src/CMakeFiles/comptx.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/comptx.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/comptx.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/zipf.cc" "src/CMakeFiles/comptx.dir/util/zipf.cc.o" "gcc" "src/CMakeFiles/comptx.dir/util/zipf.cc.o.d"
  "/root/repo/src/workload/program_gen.cc" "src/CMakeFiles/comptx.dir/workload/program_gen.cc.o" "gcc" "src/CMakeFiles/comptx.dir/workload/program_gen.cc.o.d"
  "/root/repo/src/workload/schedule_gen.cc" "src/CMakeFiles/comptx.dir/workload/schedule_gen.cc.o" "gcc" "src/CMakeFiles/comptx.dir/workload/schedule_gen.cc.o.d"
  "/root/repo/src/workload/topology_gen.cc" "src/CMakeFiles/comptx.dir/workload/topology_gen.cc.o" "gcc" "src/CMakeFiles/comptx.dir/workload/topology_gen.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/comptx.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/comptx.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/workload_spec.cc" "src/CMakeFiles/comptx.dir/workload/workload_spec.cc.o" "gcc" "src/CMakeFiles/comptx.dir/workload/workload_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
