file(REMOVE_RECURSE
  "libcomptx.a"
)
