# Empty compiler generated dependencies file for banking_composite.
# This may be replaced when dependencies are built.
