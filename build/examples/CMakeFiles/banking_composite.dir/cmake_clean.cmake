file(REMOVE_RECURSE
  "CMakeFiles/banking_composite.dir/banking_composite.cpp.o"
  "CMakeFiles/banking_composite.dir/banking_composite.cpp.o.d"
  "banking_composite"
  "banking_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
