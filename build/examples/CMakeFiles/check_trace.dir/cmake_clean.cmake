file(REMOVE_RECURSE
  "CMakeFiles/check_trace.dir/check_trace.cpp.o"
  "CMakeFiles/check_trace.dir/check_trace.cpp.o.d"
  "check_trace"
  "check_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
