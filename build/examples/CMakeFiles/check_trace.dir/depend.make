# Empty dependencies file for check_trace.
# This may be replaced when dependencies are built.
