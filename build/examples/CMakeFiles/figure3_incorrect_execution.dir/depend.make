# Empty dependencies file for figure3_incorrect_execution.
# This may be replaced when dependencies are built.
