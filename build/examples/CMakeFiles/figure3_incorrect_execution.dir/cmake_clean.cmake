file(REMOVE_RECURSE
  "CMakeFiles/figure3_incorrect_execution.dir/figure3_incorrect_execution.cpp.o"
  "CMakeFiles/figure3_incorrect_execution.dir/figure3_incorrect_execution.cpp.o.d"
  "figure3_incorrect_execution"
  "figure3_incorrect_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_incorrect_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
