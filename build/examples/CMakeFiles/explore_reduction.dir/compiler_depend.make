# Empty compiler generated dependencies file for explore_reduction.
# This may be replaced when dependencies are built.
