file(REMOVE_RECURSE
  "CMakeFiles/explore_reduction.dir/explore_reduction.cpp.o"
  "CMakeFiles/explore_reduction.dir/explore_reduction.cpp.o.d"
  "explore_reduction"
  "explore_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
