file(REMOVE_RECURSE
  "CMakeFiles/figure4_correct_execution.dir/figure4_correct_execution.cpp.o"
  "CMakeFiles/figure4_correct_execution.dir/figure4_correct_execution.cpp.o.d"
  "figure4_correct_execution"
  "figure4_correct_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_correct_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
