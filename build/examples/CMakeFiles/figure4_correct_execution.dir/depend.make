# Empty dependencies file for figure4_correct_execution.
# This may be replaced when dependencies are built.
