# Empty dependencies file for figure2_observed_order.
# This may be replaced when dependencies are built.
