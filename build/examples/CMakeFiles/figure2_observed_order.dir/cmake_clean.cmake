file(REMOVE_RECURSE
  "CMakeFiles/figure2_observed_order.dir/figure2_observed_order.cpp.o"
  "CMakeFiles/figure2_observed_order.dir/figure2_observed_order.cpp.o.d"
  "figure2_observed_order"
  "figure2_observed_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_observed_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
