# Empty dependencies file for transaction_models.
# This may be replaced when dependencies are built.
