file(REMOVE_RECURSE
  "CMakeFiles/transaction_models.dir/transaction_models.cpp.o"
  "CMakeFiles/transaction_models.dir/transaction_models.cpp.o.d"
  "transaction_models"
  "transaction_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
