file(REMOVE_RECURSE
  "CMakeFiles/figure1_composite_system.dir/figure1_composite_system.cpp.o"
  "CMakeFiles/figure1_composite_system.dir/figure1_composite_system.cpp.o.d"
  "figure1_composite_system"
  "figure1_composite_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_composite_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
