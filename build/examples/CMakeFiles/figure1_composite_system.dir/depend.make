# Empty dependencies file for figure1_composite_system.
# This may be replaced when dependencies are built.
