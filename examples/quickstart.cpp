// Quickstart: build a tiny composite system by hand, check Comp-C, and
// print the reduction trace.
//
// The scenario: an order-processing service (top schedule) runs two
// customer transactions; each places an order through a shared inventory
// component (bottom schedule).  The inventory operations conflict, so the
// inventory's serialization order decides the global serialization.

#include <iostream>

#include "analysis/builder.h"
#include "analysis/printer.h"
#include "core/correctness.h"

int main() {
  using namespace comptx;  // NOLINT

  analysis::CompositeSystemBuilder builder;
  ScheduleId orders = builder.Schedule("order_service");
  ScheduleId inventory = builder.Schedule("inventory");

  // Two customer transactions at the order service.
  NodeId alice = builder.Root(orders, "alice_checkout");
  NodeId bob = builder.Root(orders, "bob_checkout");

  // Each checkout runs one inventory subtransaction...
  NodeId alice_reserve = builder.Sub(alice, inventory, "alice_reserve");
  NodeId bob_reserve = builder.Sub(bob, inventory, "bob_reserve");

  // ...which reads and decrements the same stock item.
  NodeId a_read = builder.Leaf(alice_reserve, "alice_read_stock");
  NodeId a_write = builder.Leaf(alice_reserve, "alice_write_stock");
  NodeId b_read = builder.Leaf(bob_reserve, "bob_read_stock");
  NodeId b_write = builder.Leaf(bob_reserve, "bob_write_stock");

  // Each reservation reads before it writes.
  builder.IntraWeak(alice_reserve, a_read, a_write);
  builder.IntraWeak(bob_reserve, b_read, b_write);
  builder.WeakOut(a_read, a_write);
  builder.WeakOut(b_read, b_write);

  // The inventory serialized Alice's writes before Bob's accesses.
  builder.Conflict(a_write, b_read);
  builder.WeakOut(a_write, b_read);
  builder.Conflict(a_write, b_write);
  builder.WeakOut(a_write, b_write);
  builder.Conflict(a_read, b_write);
  builder.WeakOut(a_read, b_write);

  CompositeSystem cs = std::move(builder.Take());

  std::cout << analysis::DescribeSystem(cs) << "\n";

  auto result = CheckCompC(cs);
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::cout << analysis::DescribeReduction(cs, *result);
  return result->correct ? 0 : 1;
}
