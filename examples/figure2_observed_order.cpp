// Regenerates the paper's Figure 2: conflict and observed order pulled up
// from a shared leaf schedule.  Shows how roots that share no schedule
// (T1 vs T2, T1 vs T3) become related by the observed order and the
// generalized conflict relation (Defs 10-11).

#include <iostream>

#include "analysis/figures.h"
#include "analysis/printer.h"
#include "core/correctness.h"

int main() {
  using namespace comptx;  // NOLINT
  analysis::PaperFigure fig = analysis::MakeFigure2();
  std::cout << fig.title << "\n" << fig.notes << "\n\n";
  std::cout << analysis::DescribeSystem(fig.system) << "\n";
  auto result = CheckCompC(fig.system);
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::cout << analysis::DescribeReduction(fig.system, *result) << "\n";
  const Front& final_front = result->reduction.FinalFront();
  std::cout << "pulled-up relations at the root front:\n";
  final_front.observed.ForEach([&](NodeId a, NodeId b) {
    std::cout << "  " << analysis::NodeName(fig.system, a) << " <_o "
              << analysis::NodeName(fig.system, b) << "\n";
  });
  final_front.conflicts.ForEach([&](NodeId a, NodeId b) {
    std::cout << "  CON(" << analysis::NodeName(fig.system, a) << ", "
              << analysis::NodeName(fig.system, b) << ")\n";
  });
  return result->correct ? 0 : 1;
}
