// Regenerates the paper's Figure 1: a general composite system of order 3
// — five composite transactions over five schedulers, roots at several
// levels, T4 and T5 sharing no schedule.  Prints the system, its
// invocation graph levels, the forest as DOT, and the reduction trace.

#include <iostream>

#include "analysis/figures.h"
#include "analysis/printer.h"
#include "core/correctness.h"

int main() {
  using namespace comptx;  // NOLINT
  analysis::PaperFigure fig = analysis::MakeFigure1();
  std::cout << fig.title << "\n" << fig.notes << "\n\n";
  std::cout << analysis::DescribeSystem(fig.system) << "\n";
  std::cout << "forest (DOT):\n" << analysis::ForestToDot(fig.system) << "\n";
  auto result = CheckCompC(fig.system);
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::cout << analysis::DescribeReduction(fig.system, *result);
  return result->correct ? 0 : 1;
}
