// Regenerates the paper's Figure 4 (§3.7): the same two-branch
// interaction as Figure 3, but the top schedule knows one pair commutes,
// so the pulled-up order is *forgotten* (Def 10.3) and the execution is
// Comp-C.  Also runs the E8 ablation: with forgetting disabled, the same
// execution is rejected — the semantic knowledge is what buys acceptance.

#include <iostream>

#include "analysis/figures.h"
#include "analysis/printer.h"
#include "core/correctness.h"

int main() {
  using namespace comptx;  // NOLINT
  analysis::PaperFigure fig = analysis::MakeFigure4();
  std::cout << fig.title << "\n" << fig.notes << "\n\n";
  std::cout << analysis::DescribeSystem(fig.system) << "\n";

  auto result = CheckCompC(fig.system);
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::cout << analysis::DescribeReduction(fig.system, *result) << "\n";

  ReductionOptions no_forgetting;
  no_forgetting.forgetting = false;
  auto ablation = CheckCompC(fig.system, no_forgetting);
  if (!ablation.ok()) {
    std::cerr << "error: " << ablation.status() << "\n";
    return 1;
  }
  std::cout << "ablation (forgetting disabled):\n"
            << analysis::DescribeReduction(fig.system, *ablation);
  return (result->correct && !ablation->correct) ? 0 : 1;
}
