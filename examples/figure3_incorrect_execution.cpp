// Regenerates the paper's Figure 3 (§3.6): an execution that is NOT
// Comp-C.  Two branches serialize the two roots in opposite directions
// and the top schedule declares both pairs conflicting, so the reduction
// cannot isolate T1 at the last level (Def 14 fails).  Exits 0 when the
// expected rejection is reproduced.

#include <iostream>

#include "analysis/figures.h"
#include "analysis/printer.h"
#include "core/correctness.h"

int main() {
  using namespace comptx;  // NOLINT
  analysis::PaperFigure fig = analysis::MakeFigure3();
  std::cout << fig.title << "\n" << fig.notes << "\n\n";
  std::cout << analysis::DescribeSystem(fig.system) << "\n";
  auto result = CheckCompC(fig.system);
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::cout << analysis::DescribeReduction(fig.system, *result);
  if (result->correct) {
    std::cerr << "unexpected: Figure 3 must be rejected\n";
    return 1;
  }
  return 0;
}
