// The travel-agency scenario from the paper's motivation (TP monitors,
// CORBA-style component stacks): a travel agency books trips through a
// flight component and a hotel component, each with its own scheduler.
//
// Two customers book overlapping trips.  The flight component serialized
// customer A first; the hotel component serialized customer B first.  A
// flat scheduler (classical conflict serializability over the leaves)
// must reject this execution.  The composite theory accepts it *if* the
// agency declares the two bookings commuting (they touch different
// itineraries at the agency level) — the paper's forgetting rule — and
// rejects it when the agency says they conflict.

#include <iostream>

#include "analysis/builder.h"
#include "analysis/printer.h"
#include "core/correctness.h"
#include "criteria/csr.h"
#include "criteria/llsr.h"

namespace {

using namespace comptx;  // NOLINT

CompositeSystem MakeTrip(bool agency_declares_conflict) {
  analysis::CompositeSystemBuilder b;
  ScheduleId agency = b.Schedule("travel_agency");
  ScheduleId flights = b.Schedule("flight_reservation");
  ScheduleId hotels = b.Schedule("hotel_reservation");

  NodeId alice = b.Root(agency, "alice_trip");
  NodeId bob = b.Root(agency, "bob_trip");

  NodeId alice_flight = b.Sub(alice, flights, "alice_flight");
  NodeId alice_hotel = b.Sub(alice, hotels, "alice_hotel");
  NodeId bob_flight = b.Sub(bob, flights, "bob_flight");
  NodeId bob_hotel = b.Sub(bob, hotels, "bob_hotel");

  // Flight component: both bookings decrement the seat counter; Alice got
  // in first.
  NodeId af_seat = b.Leaf(alice_flight, "alice_take_seat");
  NodeId bf_seat = b.Leaf(bob_flight, "bob_take_seat");
  b.Conflict(af_seat, bf_seat);
  b.WeakOut(af_seat, bf_seat);

  // Hotel component: both bookings take a room; Bob got in first.
  NodeId ah_room = b.Leaf(alice_hotel, "alice_take_room");
  NodeId bh_room = b.Leaf(bob_hotel, "bob_take_room");
  b.Conflict(bh_room, ah_room);
  b.WeakOut(bh_room, ah_room);

  if (agency_declares_conflict) {
    // The agency treats the two flight bookings as conflicting bundle
    // operations: the flight order T(alice) < T(bob) must be preserved,
    // and likewise the hotel order the other way — unsatisfiable.
    b.Conflict(alice_flight, bob_flight);
    b.WeakOut(alice_flight, bob_flight);
    b.WeakIn(flights, alice_flight, bob_flight);
    b.Conflict(bob_hotel, alice_hotel);
    b.WeakOut(bob_hotel, alice_hotel);
    b.WeakIn(hotels, bob_hotel, alice_hotel);
  }
  return std::move(b.Take());
}

int Check(const char* label, const CompositeSystem& cs, bool expect_comp_c) {
  auto result = CheckCompC(cs);
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::cout << "=== " << label << "\n";
  std::cout << "flat conflict serializability : "
            << (criteria::IsFlatConflictSerializable(cs) ? "accept"
                                                         : "reject")
            << "\n";
  std::cout << "level-by-level (multilevel)   : "
            << (criteria::IsLevelByLevelSerializable(cs) ? "accept"
                                                         : "reject")
            << "\n";
  std::cout << "Comp-C (this paper)           : "
            << (result->correct ? "accept" : "reject") << "\n";
  if (result->correct) {
    std::cout << "serial witness                :";
    for (NodeId root : result->serial_order) {
      std::cout << " " << analysis::NodeName(cs, root);
    }
    std::cout << "\n";
  } else {
    std::cout << analysis::DescribeReduction(cs, *result);
  }
  std::cout << "\n";
  return result->correct == expect_comp_c ? 0 : 1;
}

}  // namespace

int main() {
  CompositeSystem commuting = MakeTrip(/*agency_declares_conflict=*/false);
  CompositeSystem conflicting = MakeTrip(/*agency_declares_conflict=*/true);
  std::cout << analysis::DescribeSystem(commuting) << "\n";
  int rc = 0;
  rc |= Check("agency: bookings commute (different itineraries)", commuting,
              /*expect_comp_c=*/true);
  rc |= Check("agency: bookings conflict (same itinerary bundle)",
              conflicting, /*expect_comp_c=*/false);
  return rc;
}
