// Interactive-style exploration of the reduction (Def 16): generates a
// random composite execution and prints every front as the Reducer steps
// from the leaves to the roots, showing the observed orders being pulled
// up and forgotten.
//
// Usage: explore_reduction [seed] [conflict_prob]

#include <cstdlib>
#include <iostream>

#include "analysis/printer.h"
#include "core/reduction.h"
#include "workload/workload_spec.h"

int main(int argc, char** argv) {
  using namespace comptx;  // NOLINT
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const double conflict =
      argc > 2 ? std::strtod(argv[2], nullptr) : 0.15;

  workload::WorkloadSpec spec;
  spec.topology.kind = workload::TopologyKind::kLayeredDag;
  spec.topology.depth = 3;
  spec.topology.branches = 2;
  spec.topology.roots = 3;
  spec.execution.conflict_prob = conflict;
  spec.execution.disorder_prob = 0.5;

  auto cs = workload::GenerateSystem(spec, seed);
  if (!cs.ok()) {
    std::cerr << "generation failed: " << cs.status() << "\n";
    return 1;
  }
  std::cout << "random composite execution (seed " << seed
            << ", conflict prob " << conflict << "):\n\n"
            << analysis::DescribeSystem(*cs) << "\n";

  auto reducer = Reducer::Create(*cs);
  if (!reducer.ok()) {
    std::cerr << "error: " << reducer.status() << "\n";
    return 1;
  }
  std::cout << analysis::DescribeFront(*cs, reducer->current());
  while (!reducer->Done()) {
    const uint32_t next_level = reducer->current().level + 1;
    std::cout << "\n-- reducing level " << next_level << " transactions:";
    for (NodeId txn : reducer->TransactionsAtLevel(next_level)) {
      std::cout << " " << analysis::NodeName(*cs, txn);
    }
    std::cout << "\n";
    if (!reducer->Step()) break;
    std::cout << analysis::DescribeFront(*cs, reducer->current());
  }

  if (reducer->Failed()) {
    const auto& failure = *reducer->failure();
    std::cout << "\nverdict: NOT Comp-C — failed at level " << failure.level
              << " (" << ReductionFailureStepToString(failure.step)
              << "): " << failure.witness.description << "\n  cycle:";
    for (NodeId id : failure.witness.nodes) {
      std::cout << " " << analysis::NodeName(*cs, id);
    }
    std::cout << "\n";
    return 0;  // a rejection is a successful demonstration too.
  }
  std::cout << "\nverdict: Comp-C — the level " << reducer->order()
            << " front holds only root transactions.\n";
  return 0;
}
