// Paper §4: "the stack, fork and join can be used to model a variety of
// transaction models like federated transactions, the ticket method,
// sagas and distributed transactions... Comp-C is a framework where all
// these models can be understood and compared."
//
// This example makes that claim concrete: it encodes sagas, federated
// transactions and 2PC-style distributed transactions as composite
// systems and shows what each model's characteristic executions look like
// to the criteria.

#include <iostream>

#include "analysis/models.h"
#include "analysis/printer.h"
#include "core/correctness.h"
#include "criteria/csr.h"

namespace {

using namespace comptx;  // NOLINT

int Show(const analysis::ModelSystem& model, bool expect_comp_c) {
  std::cout << "=== " << model.title << "\n" << model.notes << "\n\n";
  auto result = CheckCompC(model.system);
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::cout << "flat serializability: "
            << (criteria::IsFlatConflictSerializable(model.system)
                    ? "accept"
                    : "reject")
            << "\n";
  std::cout << "Comp-C              : "
            << (result->correct ? "accept" : "reject") << "\n";
  if (result->correct) {
    std::cout << "serial witness      :";
    for (NodeId root : result->serial_order) {
      std::cout << " " << analysis::NodeName(model.system, root);
    }
    std::cout << "\n";
  } else if (result->failure) {
    std::cout << "rejection           : level " << result->failure->level
              << ", " << result->failure->witness.description << "\n";
  }
  std::cout << "\n";
  return result->correct == expect_comp_c ? 0 : 1;
}

}  // namespace

int main() {
  int rc = 0;
  rc |= Show(analysis::MakeSagaModel(2, 3, /*interleaved=*/false), true);
  rc |= Show(analysis::MakeSagaModel(2, 3, /*interleaved=*/true), true);
  rc |= Show(analysis::MakeFederatedModel(3, /*consistent_sites=*/true),
             true);
  rc |= Show(analysis::MakeFederatedModel(3, /*consistent_sites=*/false),
             false);
  rc |= Show(analysis::MakeDistributedTransactionModel(3, 2), true);
  return rc;
}
