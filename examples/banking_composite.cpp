// Runtime demo: a two-layer banking composite system.
//
// A "bank gateway" layer (transfer / audit services) sits on top of two
// branch components holding the accounts.  Concurrent client transactions
// are executed under each of the four protocols; the recorded composite
// schedule is then judged by the paper's Comp-C criterion.  The printout
// shows the trade-off the paper motivates: uncoordinated open nesting is
// fast but can produce executions no serial order explains, while
// validation (the ticket method) keeps open nesting's parallelism and
// stays correct.

#include <iostream>
#include <memory>

#include "analysis/stats.h"
#include "core/correctness.h"
#include "runtime/system_executor.h"
#include "util/logging.h"

namespace {

using namespace comptx;           // NOLINT
using namespace comptx::runtime;  // NOLINT

/// Builds the bank: components 0-1 are gateways, 2-3 are branches with 4
/// accounts each.  Gateway service 0 = transfer (debit one branch, credit
/// the other); service 1 = audit (read both branches).
RuntimeSystem MakeBank() {
  RuntimeSystem bank;

  auto gateway_services = [](uint32_t debit_item, uint32_t credit_item) {
    std::vector<Program> services;
    // transfer: invoke branch 2 debit-ish service, then branch 3 credit.
    Program transfer;
    transfer.steps.push_back(ProgramStep::Invoke(2, debit_item % 2));
    transfer.steps.push_back(ProgramStep::Invoke(3, credit_item % 2));
    services.push_back(transfer);
    // audit: read a summary item on both branches.
    Program audit;
    audit.steps.push_back(ProgramStep::Invoke(2, 2));
    audit.steps.push_back(ProgramStep::Invoke(3, 2));
    services.push_back(audit);
    // Transfers commute with each other (adds); audits conflict with
    // transfers (they read what transfers write).
    std::vector<std::vector<bool>> conflicts = {
        {false, true},
        {true, true},
    };
    return std::make_unique<Component>(
        debit_item, debit_item == 0 ? "gateway_a" : "gateway_b", 1,
        std::move(services), std::move(conflicts));
  };
  bank.components.push_back(gateway_services(0, 1));
  bank.components.push_back(gateway_services(1, 0));

  auto branch = [](uint32_t id, const char* name) {
    std::vector<Program> services;
    // service 0: debit account 0 (commutative add of a negative amount).
    services.push_back(Program{{ProgramStep::Local(OpType::kAdd, 0, -10)}});
    // service 1: credit account 1.
    services.push_back(Program{{ProgramStep::Local(OpType::kAdd, 1, +10)}});
    // service 2: read the whole branch.
    services.push_back(Program{{ProgramStep::Local(OpType::kRead, 0),
                                ProgramStep::Local(OpType::kRead, 1)}});
    // Credits/debits commute with each other but not with reads.
    std::vector<std::vector<bool>> conflicts = {
        {false, false, true},
        {false, false, true},
        {true, true, false},
    };
    return std::make_unique<Component>(id, name, 4, std::move(services),
                                       std::move(conflicts));
  };
  bank.components.push_back(branch(2, "branch_east"));
  bank.components.push_back(branch(3, "branch_west"));

  // Clients: six transfers and two audits through alternating gateways.
  for (uint32_t r = 0; r < 8; ++r) {
    bank.roots.push_back({r % 2, r < 6 ? 0u : 1u});
  }
  return bank;
}

}  // namespace

int main() {
  analysis::TextTable table({"protocol", "rounds", "parallelism", "restarts",
                             "comp_c"});
  bool all_ok = true;
  for (Protocol protocol :
       {Protocol::kGlobalSerial, Protocol::kClosedTwoPhase,
        Protocol::kOpenTwoPhase, Protocol::kOpenValidated}) {
    RuntimeSystem bank = MakeBank();
    ExecutorOptions options;
    options.protocol = protocol;
    options.seed = 2024;
    auto result = ExecuteSystem(bank, options);
    if (!result.ok()) {
      std::cerr << "execution failed: " << result.status() << "\n";
      return 1;
    }
    auto verdict = CheckCompC(result->recorded);
    if (!verdict.ok()) {
      std::cerr << "check failed: " << verdict.status() << "\n";
      return 1;
    }
    table.AddRow({ProtocolToString(protocol),
                  std::to_string(result->stats.rounds),
                  analysis::FormatDouble(result->stats.avg_parallelism, 2),
                  std::to_string(result->stats.deadlock_restarts +
                                 result->stats.validation_restarts),
                  verdict->correct ? "yes" : "NO"});
    if (protocol != Protocol::kOpenTwoPhase && !verdict->correct) {
      all_ok = false;  // only uncoordinated open nesting may be incorrect.
    }
  }
  std::cout << "banking composite system, 8 concurrent clients:\n\n"
            << table.ToString();
  return all_ok ? 0 : 1;
}
