// Command-line checker: reads a composite execution from a comptx-trace
// file (see workload/trace.h), validates it against the model rules
// (Defs 2-4) and decides Comp-C, printing the reduction diagnosis.
//
// Usage: check_trace <trace-file>
//        check_trace --demo      (writes and checks a demo trace)
//
// Exit codes: 0 = Comp-C, 1 = not Comp-C, 2 = unreadable/invalid input.

#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/figures.h"
#include "analysis/printer.h"
#include "core/correctness.h"
#include "workload/trace.h"

namespace {

using namespace comptx;  // NOLINT

int CheckText(const std::string& text) {
  auto cs = workload::LoadTrace(text);
  if (!cs.ok()) {
    std::cerr << "trace parse error: " << cs.status() << "\n";
    return 2;
  }
  if (Status valid = cs->Validate(); !valid.ok()) {
    std::cerr << "model violation (Defs 2-4): " << valid << "\n";
    return 2;
  }
  auto result = CheckCompC(*cs);
  if (!result.ok()) {
    std::cerr << "checker error: " << result.status() << "\n";
    return 2;
  }
  std::cout << analysis::DescribeReduction(*cs, *result);
  return result->correct ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: check_trace <trace-file> | --demo\n";
    return 2;
  }
  std::string arg = argv[1];
  if (arg == "--demo") {
    auto text = workload::SaveTrace(analysis::MakeFigure4().system);
    if (!text.ok()) {
      std::cerr << "demo generation failed: " << text.status() << "\n";
      return 2;
    }
    std::cout << "demo trace (Figure 4):\n" << *text << "\n";
    return CheckText(*text);
  }
  std::ifstream in(arg);
  if (!in) {
    std::cerr << "cannot open " << arg << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return CheckText(buffer.str());
}
